//! Per-block liveness: which values are live at each block boundary.
//!
//! A classic backward may-analysis on the [`dataflow`](super::dataflow)
//! solver. Successor arguments count as uses at the branching block's
//! terminator; block arguments are definitions at the head of their block,
//! so they never appear in their own live-in set.
//!
//! Region-carrying ops (`rgn.val`) are treated as one super-op: every value
//! a nested region captures from the enclosing scope is a use at the
//! carrying op, and values defined inside the region stay internal.

use super::cfg::BlockGraph;
use super::dataflow::{solve, Analysis, Direction, Solution};
use crate::body::Body;
use crate::ids::{BlockId, OpId, ValueId};
use std::collections::HashSet;

/// The liveness fixpoint for one region.
#[derive(Debug, Clone)]
pub struct Liveness {
    solution: Solution<HashSet<ValueId>>,
}

impl Liveness {
    /// Computes liveness for the region covered by `graph`.
    pub fn compute(body: &Body, graph: &BlockGraph) -> Liveness {
        let solution = solve(&LivenessAnalysis, body, graph);
        Liveness { solution }
    }

    /// Values live at the start of `b` (before its block arguments bind);
    /// `None` if `b` is unreachable.
    pub fn live_in(&self, b: BlockId) -> Option<&HashSet<ValueId>> {
        self.solution.entry_of(b)
    }

    /// Values live at the end of `b`; `None` if `b` is unreachable.
    pub fn live_out(&self, b: BlockId) -> Option<&HashSet<ValueId>> {
        self.solution.exit_of(b)
    }
}

struct LivenessAnalysis;

impl Analysis for LivenessAnalysis {
    type Fact = HashSet<ValueId>;

    fn direction(&self) -> Direction {
        Direction::Backward
    }

    fn bottom(&self) -> HashSet<ValueId> {
        HashSet::new()
    }

    fn boundary(&self, _body: &Body) -> HashSet<ValueId> {
        HashSet::new()
    }

    fn transfer(&self, body: &Body, block: BlockId, input: &HashSet<ValueId>) -> HashSet<ValueId> {
        let mut live = input.clone();
        for &op in body.blocks[block.index()].ops.iter().rev() {
            let (uses, defs) = op_uses_defs(body, op);
            for d in defs {
                live.remove(&d);
            }
            live.extend(uses);
        }
        for a in &body.blocks[block.index()].args {
            live.remove(a);
        }
        live
    }

    fn join(&self, into: &mut HashSet<ValueId>, from: &HashSet<ValueId>) -> bool {
        let before = into.len();
        into.extend(from.iter().copied());
        into.len() != before
    }
}

/// The uses and defs of `op`, folding nested regions into the op itself:
/// captures of enclosing values count as uses, internally-defined values as
/// defs (so they cancel out of the enclosing live set).
fn op_uses_defs(body: &Body, op: OpId) -> (HashSet<ValueId>, HashSet<ValueId>) {
    let mut uses: HashSet<ValueId> = HashSet::new();
    let mut defs: HashSet<ValueId> = HashSet::new();
    collect_op(body, op, &mut uses, &mut defs);
    // A value both defined and used inside the super-op is internal traffic.
    let uses = uses.difference(&defs).copied().collect();
    (uses, defs)
}

fn collect_op(body: &Body, op: OpId, uses: &mut HashSet<ValueId>, defs: &mut HashSet<ValueId>) {
    let data = &body.ops[op.index()];
    uses.extend(data.operands.iter().copied());
    for s in &data.successors {
        uses.extend(s.args.iter().copied());
    }
    defs.extend(data.results.iter().copied());
    for &r in &data.regions {
        for &b in &body.regions[r.index()].blocks {
            defs.extend(body.blocks[b.index()].args.iter().copied());
            for &inner in &body.blocks[b.index()].ops {
                collect_op(body, inner, uses, defs);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::ROOT_REGION;
    use crate::builder::Builder;
    use crate::types::Type;

    #[test]
    fn straight_line_liveness() {
        // %p is consumed by the add; nothing is live at the end.
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let s = b.addi(params[0], params[0]);
        b.ret(s);
        let g = BlockGraph::root(&body);
        let l = Liveness::compute(&body, &g);
        assert!(l.live_in(entry).unwrap().is_empty());
        assert!(l.live_out(entry).unwrap().is_empty());
    }

    #[test]
    fn diamond_use_in_one_arm() {
        // %p is used only in arm `a`, so it is live-in there and live-out of
        // the entry, but not live-in of arm `b`.
        let (mut body, params) = Body::new(&[Type::I1, Type::I64]);
        let entry = body.entry_block();
        let a = body.new_block(ROOT_REGION, &[]);
        let bb = body.new_block(ROOT_REGION, &[]);
        let join = body.new_block(ROOT_REGION, &[Type::I64]);
        Builder::at_end(&mut body, entry).cond_br(params[0], (a, vec![]), (bb, vec![]));
        Builder::at_end(&mut body, a).br(join, vec![params[1]]);
        let mut bu = Builder::at_end(&mut body, bb);
        let z = bu.const_i(0, Type::I64);
        bu.br(join, vec![z]);
        let jv = body.blocks[join.index()].args[0];
        Builder::at_end(&mut body, join).ret(jv);
        let g = BlockGraph::root(&body);
        let l = Liveness::compute(&body, &g);
        assert!(l.live_in(a).unwrap().contains(&params[1]));
        assert!(!l.live_in(bb).unwrap().contains(&params[1]));
        assert!(l.live_out(entry).unwrap().contains(&params[1]));
        // The join's own block argument is not live-in to the join.
        assert!(!l.live_in(join).unwrap().contains(&jv));
    }

    #[test]
    fn loop_keeps_invariant_value_live() {
        // %limit flows around the loop: live at the header on every path.
        use crate::attr::CmpPred;
        let (mut body, params) = Body::new(&[Type::I64, Type::I64]);
        let entry = body.entry_block();
        let header = body.new_block(ROOT_REGION, &[Type::I64]);
        let exit = body.new_block(ROOT_REGION, &[]);
        Builder::at_end(&mut body, entry).br(header, vec![params[0]]);
        let iv = body.blocks[header.index()].args[0];
        let mut bh = Builder::at_end(&mut body, header);
        let c = bh.cmpi(CmpPred::Eq, iv, params[1]);
        bh.cond_br(c, (exit, vec![]), (header, vec![iv]));
        let mut be = Builder::at_end(&mut body, exit);
        let r = be.const_i(0, Type::I64);
        be.ret(r);
        let g = BlockGraph::root(&body);
        let l = Liveness::compute(&body, &g);
        // The limit is live into and out of the header (used each trip).
        assert!(l.live_in(header).unwrap().contains(&params[1]));
        assert!(l.live_out(header).unwrap().contains(&params[1]));
        // The induction variable is a header block-arg: not live-in, and —
        // because edge arguments are uses *at the terminator*, dying on the
        // edge — not live-out either (the back edge rebinds it).
        assert!(!l.live_in(header).unwrap().contains(&iv));
        assert!(!l.live_out(header).unwrap().contains(&iv));
    }

    #[test]
    fn nested_region_capture_counts_as_use() {
        // A rgn.val whose region body uses an enclosing value: the capture
        // registers as a use of the super-op, while values defined inside
        // the region stay internal.
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let (rv, inner) = b.rgn_val(&[]);
        let mut ib = Builder::at_end(&mut body, inner);
        let local = ib.lp_int(7);
        let _ = local;
        ib.lp_ret(params[0]);
        let mut b = Builder::at_end(&mut body, entry);
        b.rgn_run(rv, vec![]);
        let rv_op = body.defining_op(rv).unwrap();
        let (uses, defs) = op_uses_defs(&body, rv_op);
        assert!(uses.contains(&params[0]));
        assert!(!uses.contains(&local), "internal value must not escape");
        assert!(defs.contains(&local));
    }
}
