//! End-to-end pass pipelines: λrc → lp → rgn → CFG.
//!
//! This is the "MLIR backend" of the paper (Figure 3's lower path), with the
//! knobs the evaluation turns:
//!
//! - `region_opts` — the §IV-B region optimizations (DRE via DCE, select /
//!   switch folding, run-of-known-region inlining, GRN). Figure 10 compares
//!   pipelines with and without these.
//! - `generic_opts` — MLIR's stock CFG-level passes (canonicalize, CSE, DCE,
//!   CFG simplification, inlining) that Figure 11 credits to the ecosystem.
//! - `guaranteed_tco` — `musttail` semantics (§III-E); the heuristic
//!   alternative models the C backend.

use crate::lp::from_lambda;
use crate::rgn::{self, GrnPass, RgnToCfgPass, TcoPass};
use lssa_ir::module::Module;
use lssa_ir::pass::{Pass, PassManager};
use lssa_ir::passes::{CanonicalizePass, CsePass, DcePass, InlinePass, SimplifyCfgPass};
use lssa_lambda::ast::Program;

/// Pipeline configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Run the rgn-dialect region optimizations (§IV-B).
    pub region_opts: bool,
    /// Run the generic CFG-level optimizations.
    pub generic_opts: bool,
    /// Guarantee all tail calls (vs. self-recursion only).
    pub guaranteed_tco: bool,
    /// Verify the module between phases (slow; meant for tests).
    pub verify: bool,
}

impl Default for PipelineOptions {
    fn default() -> PipelineOptions {
        PipelineOptions::full()
    }
}

impl PipelineOptions {
    /// The full MLIR-style pipeline.
    pub fn full() -> PipelineOptions {
        PipelineOptions {
            region_opts: true,
            generic_opts: true,
            guaranteed_tco: true,
            verify: false,
        }
    }

    /// Lowering only — no optimization at any level (Figure 10's variant c).
    pub fn no_opt() -> PipelineOptions {
        PipelineOptions {
            region_opts: false,
            generic_opts: false,
            guaranteed_tco: true,
            verify: false,
        }
    }

    /// Region optimizations off, generic CFG passes on.
    pub fn without_region_opts() -> PipelineOptions {
        PipelineOptions {
            region_opts: false,
            ..PipelineOptions::full()
        }
    }
}

/// Compiles a λrc program through lp and rgn down to a flat-CFG module.
///
/// # Panics
///
/// Panics if `opts.verify` is set and a phase produces invalid IR (compiler
/// bug), or on malformed input programs.
pub fn compile(program: &Program, opts: PipelineOptions) -> Module {
    // λrc → lp (Figure 3).
    let mut module = from_lambda::lower_program(program);
    maybe_verify(&module, opts, "lp lowering");
    // lp → rgn (Figure 8).
    rgn::from_lp::lower_module(&mut module);
    maybe_verify(&module, opts, "rgn lowering");
    // Region optimizations (§IV-B).
    if opts.region_opts {
        let pm = PassManager::new()
            .verify_each(opts.verify)
            .add(CanonicalizePass::with_extra(rgn::opt::all_patterns))
            .add(GrnPass)
            .add(CanonicalizePass::with_extra(rgn::opt::all_patterns))
            .add(DcePass);
        // GRN can expose new folds and vice versa; iterate briefly.
        for _ in 0..3 {
            if !pm.run(&mut module) {
                break;
            }
        }
    }
    // rgn → CFG (§IV-C).
    RgnToCfgPass.run(&mut module);
    maybe_verify(&module, opts, "CFG lowering");
    // Generic CFG-level cleanups (Figure 11's "MLIR builtin" passes).
    if opts.generic_opts {
        let pm = PassManager::new()
            .verify_each(opts.verify)
            .add(SimplifyCfgPass)
            .add(CanonicalizePass::new())
            .add(CsePass)
            .add(DcePass)
            .add(InlinePass::default())
            .add(CanonicalizePass::new())
            .add(DcePass);
        pm.run(&mut module);
    }
    // Tail calls (§III-E).
    TcoPass {
        only_self: !opts.guaranteed_tco,
    }
    .run(&mut module);
    if opts.generic_opts {
        SimplifyCfgPass.run(&mut module);
    }
    maybe_verify(&module, opts, "final");
    module
}

fn maybe_verify(module: &Module, opts: PipelineOptions, phase: &str) {
    if !opts.verify {
        return;
    }
    if let Err(errs) = lssa_ir::verifier::verify_module(module) {
        let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
        panic!(
            "verification failed after {phase}:\n{}\n{}",
            msgs.join("\n"),
            lssa_ir::printer::print_module(module)
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lssa_ir::opcode::Opcode;
    use lssa_lambda::{insert_rc, parse_program};

    fn compile_src(src: &str, opts: PipelineOptions) -> Module {
        let p = parse_program(src).unwrap();
        lssa_lambda::check_program(&p).unwrap();
        let rc = insert_rc(&p);
        compile(
            &rc,
            PipelineOptions {
                verify: true,
                ..opts
            },
        )
    }

    const LIST_SUM: &str = r#"
inductive List := Nil | Cons(h, t)
def build(n) := if n == 0 then Nil else Cons(n, build(n - 1))
def sum(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => h + sum(t)
  end
def main() := sum(build(20))
"#;

    #[test]
    fn full_pipeline_verifies() {
        let m = compile_src(LIST_SUM, PipelineOptions::full());
        assert!(m.func_by_name("main").is_some());
    }

    #[test]
    fn no_opt_pipeline_verifies() {
        compile_src(LIST_SUM, PipelineOptions::no_opt());
    }

    #[test]
    fn without_region_opts_verifies() {
        compile_src(LIST_SUM, PipelineOptions::without_region_opts());
    }

    #[test]
    fn optimized_is_no_larger_than_unoptimized() {
        let count = |m: &Module| -> usize {
            m.funcs
                .iter()
                .filter_map(|f| f.body.as_ref())
                .map(|b| b.live_op_count())
                .sum()
        };
        let opt = compile_src(LIST_SUM, PipelineOptions::full());
        let raw = compile_src(LIST_SUM, PipelineOptions::no_opt());
        assert!(
            count(&opt) <= count(&raw),
            "optimization must not grow code: {} vs {}",
            count(&opt),
            count(&raw)
        );
    }

    #[test]
    fn constant_program_folds_completely() {
        // With folding + region opts, a constant case collapses.
        let m = compile_src(
            "def main() := if true then 40 + 2 else 0",
            PipelineOptions::full(),
        );
        let body = m.func_by_name("main").unwrap().body.as_ref().unwrap();
        // No branches survive.
        let has_branch = body.walk_ops().iter().any(|&op| {
            matches!(
                body.ops[op.index()].opcode,
                Opcode::CondBr | Opcode::SwitchBr
            )
        });
        assert!(!has_branch);
    }

    #[test]
    fn closures_compile_through_pipeline() {
        compile_src(
            r#"
def k(x, y) := x
def ap42(f) := f(42)
def main() := ap42(k(10))
"#,
            PipelineOptions::full(),
        );
    }
}
