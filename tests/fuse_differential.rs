//! Dispatch-matrix differential suite: every VM execution strategy must be
//! a pure dispatch optimization. For every workload (under every compiler
//! configuration) and every conformance case, the full matrix of
//! {match, threaded} dispatch × {fused, unfused} decode × {inline caches
//! on, off} must produce byte-identical results and identical
//! heap/allocation counters — only the executed-cell counts may differ
//! across decode modes (fused runs fewer), and only the cache counters may
//! differ across cache modes.
//!
//! Runtime errors count too: a program that traps must trap with the same
//! message under every strategy.

use lambda_ssa::core::pipeline::PipelineOptions;
use lambda_ssa::driver::conformance::handwritten;
use lambda_ssa::driver::pipelines::{compile, Backend, CompilerConfig};
use lambda_ssa::driver::workloads::{all, Scale};
use lambda_ssa::driver::{diff, par};
use lambda_ssa::vm::{run_program_opts, DecodeOptions, DispatchMode, ExecOptions, OpClass};

const MAX_STEPS: u64 = 500_000_000;

/// The execution strategies under test: every combination of dispatch
/// mode, decode mode, and inline caching. The first entry (threaded,
/// fused, cached) is the default and serves as the reference.
fn matrix() -> Vec<(String, DecodeOptions, ExecOptions)> {
    let mut combos = Vec::new();
    for dispatch in [DispatchMode::Threaded, DispatchMode::Match] {
        for (dl, decode) in [
            ("fused", DecodeOptions::fused()),
            ("no-fuse", DecodeOptions::no_fuse()),
        ] {
            for cache in [true, false] {
                combos.push((
                    format!(
                        "{}/{dl}/{}",
                        dispatch.name(),
                        if cache { "cache" } else { "no-cache" }
                    ),
                    decode,
                    ExecOptions::default()
                        .with_dispatch(dispatch)
                        .with_inline_cache(cache),
                ));
            }
        }
    }
    combos
}

/// Runs one compiled program under the whole matrix and checks that every
/// strategy agrees with the first (the default). Returns the default's
/// rendering (for checksum asserts), or `None` if the program traps.
fn assert_matrix_agrees(label: &str, program: &lambda_ssa::vm::CompiledProgram) -> Option<String> {
    let combos = matrix();
    let reference = run_program_opts(program, "main", MAX_STEPS, combos[0].1, combos[0].2);
    for (name, decode, exec) in &combos[1..] {
        let got = run_program_opts(program, "main", MAX_STEPS, *decode, *exec);
        match (&reference, &got) {
            (Ok(r), Ok(g)) => {
                assert_eq!(
                    r.rendered, g.rendered,
                    "{label} [{name}]: checksum diverged"
                );
                assert_eq!(
                    r.vm_stats.heap, g.vm_stats.heap,
                    "{label} [{name}]: heap counters diverged"
                );
                assert_eq!(
                    r.vm_stats.max_depth, g.vm_stats.max_depth,
                    "{label} [{name}]: frame depth diverged"
                );
                assert_eq!(
                    r.vm_stats.frame_allocs, g.vm_stats.frame_allocs,
                    "{label} [{name}]: frame allocation diverged"
                );
                assert!(
                    r.stats.instructions <= g.stats.instructions,
                    "{label} [{name}]: fused dispatch must never execute more cells"
                );
                // Same decode mode ⇒ byte-identical cell counts; dispatch
                // and caching may not change what executes at all.
                if *decode == combos[0].1 {
                    assert_eq!(
                        r.stats.instructions, g.stats.instructions,
                        "{label} [{name}]: dispatch/caching changed the cell count"
                    );
                }
            }
            (Err(re), Err(ge)) => {
                assert_eq!(
                    re.message, ge.message,
                    "{label} [{name}]: error message diverged"
                );
            }
            (r, g) => panic!(
                "{label} [{name}]: one strategy failed, the other did not \
                 (reference: {:?}, {name}: {:?})",
                r.as_ref().map(|o| &o.rendered),
                g.as_ref().map(|o| &o.rendered)
            ),
        }
    }
    reference.ok().map(|o| o.rendered)
}

#[test]
fn workloads_agree_across_dispatch_matrix_and_all_pipelines() {
    let workloads = all(Scale::Test);
    par::par_map(&workloads, |w| {
        for config in diff::configs() {
            let label = format!("{} [{}]", w.name, config.label());
            let program = compile(&w.src, config).unwrap_or_else(|e| panic!("{label}: {e}"));
            let rendered = assert_matrix_agrees(&label, &program)
                .unwrap_or_else(|| panic!("{label}: workload must not trap"));
            assert_eq!(rendered, w.expected_test, "{label}");
        }
    });
}

/// The full pipeline with the §III reference-count optimization switched
/// off — the `--no-rc-opt` ablation knob.
fn norc_config() -> CompilerConfig {
    CompilerConfig {
        backend: Backend::Mlir(PipelineOptions {
            rc_opt: false,
            ..PipelineOptions::full()
        }),
        ..CompilerConfig::mlir()
    }
}

/// Compares an rc-opt compile against a no-rc-opt compile of the same
/// source: identical checksum, identical allocation profile (same
/// `allocs`/`frees`), and an empty heap at exit on both sides. The
/// inc/dec totals may differ — shrinking that traffic is the point of
/// the pass — and `peak_live` may shift because dec sinking moves
/// releases earlier or later. Returns `(rendered, (executed rc cells
/// with, without))` for successful runs: borrow folding retires `Inc`
/// *cells* by folding the retain into the builtin call's mask, so the
/// cell counts are where the win shows even when the runtime inc/dec
/// op counts break even.
fn assert_rc_knob_agrees(
    label: &str,
    with: &lambda_ssa::vm::CompiledProgram,
    without: &lambda_ssa::vm::CompiledProgram,
) -> Option<(String, (u64, u64))> {
    let run = |p: &lambda_ssa::vm::CompiledProgram| {
        run_program_opts(
            p,
            "main",
            MAX_STEPS,
            DecodeOptions::fused(),
            ExecOptions::default(),
        )
    };
    match (run(with), run(without)) {
        (Ok(a), Ok(b)) => {
            assert_eq!(
                a.rendered, b.rendered,
                "{label}: rc-opt changed the checksum"
            );
            assert_eq!(
                a.vm_stats.heap.allocs, b.vm_stats.heap.allocs,
                "{label}: rc-opt changed the allocation count"
            );
            assert_eq!(
                a.vm_stats.heap.frees, b.vm_stats.heap.frees,
                "{label}: rc-opt changed the free count"
            );
            assert_eq!(a.vm_stats.heap.live, 0, "{label}: rc-opt compile leaked");
            assert_eq!(b.vm_stats.heap.live, 0, "{label}: no-rc-opt compile leaked");
            let heap_traffic = |h: &lambda_ssa::rt::HeapStats| h.incs + h.decs;
            assert!(
                heap_traffic(&a.vm_stats.heap) <= heap_traffic(&b.vm_stats.heap),
                "{label}: rc-opt increased inc/dec traffic ({} > {})",
                heap_traffic(&a.vm_stats.heap),
                heap_traffic(&b.vm_stats.heap)
            );
            // No per-case `<=` on cells: on tiny programs a sunk dec can
            // break a `Dec2` fusion and cost a cell; only the suite-wide
            // aggregate (checked by the workload test) must improve.
            let rc_cells = |s: &lambda_ssa::vm::VmStatistics| {
                s.executed_of(OpClass::Rc)
                    + s.executed_of(OpClass::FusedDec2)
                    + s.executed_of(OpClass::FusedDec4)
            };
            Some((a.rendered, (rc_cells(&a.vm_stats), rc_cells(&b.vm_stats))))
        }
        (Err(a), Err(b)) => {
            assert_eq!(
                a.message, b.message,
                "{label}: rc-opt changed the error message"
            );
            None
        }
        (a, b) => panic!(
            "{label}: rc-opt changed whether the program fails \
             (with: {:?}, without: {:?})",
            a.map(|o| o.rendered),
            b.map(|o| o.rendered)
        ),
    }
}

#[test]
fn rc_opt_knob_preserves_behaviour_on_workloads() {
    let workloads = all(Scale::Test);
    let traffic = par::par_map(&workloads, |w| {
        let with =
            compile(&w.src, CompilerConfig::mlir()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let without = compile(&w.src, norc_config()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        // The no-rc-opt compile must itself agree across the whole
        // dispatch matrix (the rc-opt compile is covered by
        // `workloads_agree_across_dispatch_matrix_and_all_pipelines`)…
        let label = format!("{} [no-rc-opt]", w.name);
        let rendered = assert_matrix_agrees(&label, &without)
            .unwrap_or_else(|| panic!("{label}: workload must not trap"));
        assert_eq!(rendered, w.expected_test, "{label}");
        // …and with the optimized compile head-to-head.
        assert_rc_knob_agrees(w.name, &with, &without).unwrap()
    });
    // Across the whole suite the pass must actually retire rc cells, not
    // just break even.
    let (with, without) = traffic
        .iter()
        .fold((0, 0), |(a, b), (_, (ta, tb))| (a + ta, b + tb));
    assert!(
        with < without,
        "rc-opt retired no executed rc cells anywhere ({with} vs {without})"
    );
}

#[test]
fn rc_opt_knob_preserves_behaviour_on_corpus() {
    let cases = handwritten();
    par::par_map(&cases, |case| {
        let with = compile(&case.src, CompilerConfig::mlir());
        let without = compile(&case.src, norc_config());
        match (with, without) {
            (Ok(with), Ok(without)) => {
                assert_rc_knob_agrees(&case.name, &with, &without);
            }
            // Compile-time failures (type errors and friends) happen
            // before the pass pipeline; both knobs must agree on them.
            (Err(_), Err(_)) => {}
            (a, b) => panic!(
                "{}: rc-opt changed compilability (with: {}, without: {})",
                case.name,
                a.is_ok(),
                b.is_ok()
            ),
        }
    });
}

#[test]
fn conformance_cases_agree_across_dispatch_matrix() {
    // The hand-written corpus covers every language construct and the
    // runtime-error edges (div-by-zero and friends) — exactly the places a
    // dispatch or fusion bug would hide.
    let cases = handwritten();
    par::par_map(&cases, |case| {
        let program = match compile(&case.src, CompilerConfig::mlir()) {
            Ok(p) => p,
            // Compile-time failures never reach the decoder.
            Err(_) => return,
        };
        assert_matrix_agrees(&case.name, &program);
    });
}

#[test]
fn step_budget_exhaustion_is_identical_across_dispatch_matrix() {
    // Resource governance must be dispatch-invariant: capping the step
    // budget below a workload's total must abort every strategy at the
    // *identical* step count with the *identical* structured error. A
    // checkpoint scheme that consumed steps, or polled differently per
    // dispatch mode, would diverge here.
    let workloads = all(Scale::Test);
    par::par_map(&workloads, |w| {
        let program =
            compile(&w.src, CompilerConfig::mlir()).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        // Learn the fused total; cap at half of it. Fused decode executes
        // the fewest cells, so the cap undershoots every decode mode.
        let full = run_program_opts(
            &program,
            "main",
            MAX_STEPS,
            DecodeOptions::fused(),
            ExecOptions::default(),
        )
        .unwrap_or_else(|e| panic!("{}: uncapped run failed: {e}", w.name));
        let budget = full.stats.instructions / 2;
        if budget == 0 {
            return;
        }
        for (name, decode, exec) in matrix() {
            let decoded = program.decoded(decode);
            let mut vm = lambda_ssa::vm::Vm::with_options(&decoded, budget, exec);
            let err = vm
                .run("main")
                .expect_err(&format!("{} [{name}]: capped run must exhaust", w.name));
            assert_eq!(
                err.kind,
                lambda_ssa::vm::VmErrorKind::StepBudget,
                "{} [{name}]: wrong error kind",
                w.name
            );
            assert_eq!(
                err.message,
                lambda_ssa::rt::STEP_BUDGET_MSG,
                "{} [{name}]: wrong error message",
                w.name
            );
            assert_eq!(
                vm.stats().instructions,
                budget,
                "{} [{name}]: aborted at a different step count",
                w.name
            );
        }
    });
}
