//! Quickstart: compile and run a functional program end-to-end, printing
//! the IR after each stage of the paper's pipeline (Figure 3):
//!
//! ```text
//! surface ──▶ λpure ──▶ λrc ──▶ lp ──▶ rgn ──▶ (region opts) ──▶ CFG ──▶ VM
//! ```
//!
//! Run with: `cargo run --example quickstart`

use lambda_ssa::core::pipeline::PipelineOptions;
use lambda_ssa::ir::pass::Pass;

const PROGRAM: &str = r#"
inductive List := Nil | Cons(head, tail)

def length(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => 1 + length(t)
  end

def build(n) := if n == 0 then Nil else Cons(n, build(n - 1))

def main() := length(build(10))
"#;

fn main() {
    println!("=== surface program ===\n{PROGRAM}");

    // Front end: parse + lower to λpure.
    let program = lambda_ssa::lambda::parse_program(PROGRAM).expect("parse");
    lambda_ssa::lambda::check_program(&program).expect("wellformed");
    println!("=== λpure (A-normal form) ===");
    for f in &program.fns {
        println!("{f}");
    }

    // Reference counting: λpure → λrc.
    let rc = lambda_ssa::lambda::insert_rc(&program);
    println!("=== λrc (explicit inc/dec) ===");
    for f in &rc.fns {
        println!("{f}");
    }

    // λrc → lp (the SSA embedding, Figure 2).
    let mut module = lambda_ssa::core::lp::from_lambda::lower_program(&rc);
    println!("=== lp dialect ===");
    print!("{}", lambda_ssa::ir::printer::print_module(&module));

    // lp → rgn (regions as SSA values, Figure 8).
    lambda_ssa::core::rgn::from_lp::lower_module(&mut module);
    println!("=== rgn dialect ===");
    print!("{}", lambda_ssa::ir::printer::print_module(&module));

    // Region optimizations (Figure 1 / §IV-B).
    lambda_ssa::ir::passes::CanonicalizePass::with_extra(lambda_ssa::core::rgn::opt::all_patterns)
        .run(&mut module);
    lambda_ssa::core::rgn::GrnPass.run(&mut module);
    lambda_ssa::ir::passes::DcePass.run(&mut module);
    println!("=== rgn after region optimizations ===");
    print!("{}", lambda_ssa::ir::printer::print_module(&module));

    // Full pipeline to a flat CFG (fresh compile so every pass interacts
    // in the intended order).
    let cfg = lambda_ssa::core::pipeline::compile(&rc, PipelineOptions::full());
    println!("=== flat CFG (std-level) ===");
    print!("{}", lambda_ssa::ir::printer::print_module(&cfg));

    // Execute on the VM.
    let bytecode = lambda_ssa::vm::compile_module(&cfg).expect("bytecode");
    let out = lambda_ssa::vm::run_program(&bytecode, "main", 10_000_000).expect("run");
    println!("=== result ===");
    println!("main() = {}", out.rendered);
    println!(
        "({} instructions, {} calls, {} peak live objects, all {} freed)",
        out.stats.instructions, out.stats.calls, out.stats.heap.peak_live, out.stats.heap.frees
    );
    assert_eq!(out.rendered, "10");
    assert_eq!(out.stats.heap.live, 0);
}
