//! # lssa-rt: the lambda-ssa runtime
//!
//! Stand-in for LEAN4's C runtime (`libleanrt`). Provides:
//!
//! - [`bignum`] — arbitrary-precision [`bignum::Nat`] / [`bignum::Int`]
//!   arithmetic (replaces GMP),
//! - [`object`] — the uniform tagged value representation
//!   ([`object::ObjRef`]): small scalars stored in the reference bits, heap
//!   objects for constructors, closures, arrays, strings and big integers,
//! - [`heap`] — the reference-counted slot heap with `inc`/`dec` and
//!   allocation statistics,
//! - [`closure`] — partial-application (`pap`/`papextend`) saturation
//!   semantics shared by the interpreter and the VM,
//! - [`builtins`] — the `lean_*` runtime-call surface (natural/integer
//!   arithmetic, decidable comparisons, arrays, strings).
//!
//! Everything downstream (the reference interpreter in `lssa-lambda`, the
//! bytecode VM in `lssa-vm`) executes against this one runtime, so the
//! differential test harness compares pipelines over identical semantics.
//!
//! ```
//! use lssa_rt::{heap::Heap, object::ObjRef, builtins::Builtin};
//! let mut heap = Heap::new();
//! let sum = Builtin::NatAdd.call(&mut heap, &[ObjRef::scalar(40), ObjRef::scalar(2)]);
//! assert_eq!(sum.as_scalar(), Some(42));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bignum;
pub mod builtins;
pub mod closure;
pub mod heap;
pub mod object;

pub use bignum::{Int, Nat};
pub use builtins::Builtin;
pub use closure::{pap_extend, pap_new, ApplyOutcome};
pub use heap::{Heap, HeapStats};
pub use object::{FuncId, ObjData, ObjRef};

/// The shared non-termination diagnostic: the reference interpreter's fuel
/// counter and the VM's step budget both fail with this exact message, so
/// differential harnesses can compare the two engines' errors verbatim.
pub const STEP_BUDGET_MSG: &str = "step budget exhausted (likely non-termination)";
