//! Figure 5: complex pattern matching, join points, and deduplication.
//!
//! The paper's `eval` matches on three integers; a naive lowering
//! duplicates the default right-hand side into every failing branch.
//! LEAN (and this reproduction) lowers value-position matches with *join
//! points*, so the default arm is emitted once and jumped to — and after
//! the rgn lowering those jumps are `rgn.run`s of one shared region value.
//!
//! Run with: `cargo run --example pattern_matching`

use lambda_ssa::ir::attr::AttrKey;
use lambda_ssa::ir::opcode::Opcode;
use lambda_ssa::ir::prelude::*;

const PROGRAM: &str = r#"
def eval(x, y, z) :=
  case x of
  | 0 =>
    case y of
    | 2 => 40
    | _ =>
      case z of
      | 2 => 50
      | _ => 60
      end
    end
  | _ => 60
  end

def main() := eval(0, 2, 7) + eval(0, 7, 2) + eval(1, 0, 0) + eval(0, 0, 0)
"#;

fn count_constant(module: &Module, func: &str, value: i64) -> usize {
    let body = module.func_by_name(func).unwrap().body.as_ref().unwrap();
    body.walk_ops()
        .iter()
        .filter(|&&op| {
            body.ops[op.index()].opcode == Opcode::LpInt
                && body.ops[op.index()]
                    .attr(AttrKey::Value)
                    .and_then(|a| a.as_int())
                    == Some(value)
        })
        .count()
}

fn main() {
    let program = lambda_ssa::lambda::parse_program(PROGRAM).expect("parse");
    let rc = lambda_ssa::lambda::insert_rc(&program);

    // λrc → lp: the match compiler stages integer matching through
    // lean_nat_dec_eq and keeps control flow structured.
    let mut module = lambda_ssa::core::lp::from_lambda::lower_program(&rc);
    println!("=== lp-level eval (structured switches) ===");
    let mut text = String::new();
    lambda_ssa::ir::printer::print_function(
        &module,
        module.func_by_name("eval").unwrap(),
        &mut text,
        0,
    );
    println!("{text}");

    // The literal 60 (the shared default) appears exactly as many times as
    // the *source* spells it — the match compiler adds no copies.
    let sixties_lp = count_constant(&module, "eval", 60);
    println!("copies of the default constant 60 at the lp level: {sixties_lp}");
    assert!(sixties_lp <= 2);

    // lp → rgn: the join point becomes one region value, each failing
    // branch runs it.
    lambda_ssa::core::rgn::from_lp::lower_module(&mut module);
    let body = module.func_by_name("eval").unwrap().body.as_ref().unwrap();
    let runs = body
        .walk_ops()
        .iter()
        .filter(|&&op| body.ops[op.index()].opcode == Opcode::RgnRun)
        .count();
    println!("rgn.run sites in eval after lowering: {runs}");

    // End to end: the program still computes the right answer.
    let out = lambda_ssa::driver::compile_and_run(
        PROGRAM,
        lambda_ssa::driver::CompilerConfig::mlir(),
        10_000_000,
    )
    .expect("run");
    println!("main() = {} (expected 210)", out.rendered);
    assert_eq!(out.rendered, "210");
}
