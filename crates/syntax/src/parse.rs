//! Lowering `.lssa` S-expressions to the [`lssa_lambda`] AST, with inline
//! wellformedness checking.
//!
//! The grammar (see the repository README for the full EBNF):
//!
//! ```text
//! program := def*
//! def     := "(" "def" name "(" var* ")" expr ")"
//! expr    := "(" "let"  var value expr ")"
//!          | "(" "join" join "(" var* ")" expr expr ")"
//!          | "(" "case" var arm+ ")"        arm := "(" (tag | "else") expr ")"
//!          | "(" "jump" join var* ")"
//!          | "(" "ret"  var ")"
//!          | "(" "inc"  var nat expr ")"
//!          | "(" "dec"  var expr ")"
//! value   := var | int | string
//!          | "(" "big"  digits | string ")"
//!          | "(" "ctor" tag var* ")"
//!          | "(" "proj" nat var ")"
//!          | "(" "call" name var* ")"
//!          | "(" "pap"  name var* ")"
//!          | "(" "app"  var var* ")"
//! var     := "x" digits          join := "j" digits
//! ```
//!
//! Lowering checks the same wellformedness rules as
//! [`lssa_lambda::wellformed::check_program`], but reports them as
//! [`Diagnostic`]s with precise source spans (the AST checker works on
//! location-free terms). The two checkers share their `E01xx` codes, so
//! `lssa check` and `lssa run` agree on what a defect is called.
//!
//! `next_var`/`next_join` of each [`FnDef`] are reconstructed as one past the
//! highest id mentioned anywhere in the function — exactly what the
//! programmatic lowering produces, which is what makes
//! `parse(print(p)) == p` hold structurally *and* on the id bounds.

use crate::diag::{Diagnostic, E_BAD_FORM, E_BAD_TOKEN};
use crate::sexp::{read, Sexp, SexpKind};
use crate::span::Span;
use lssa_lambda::ast::{Alt, Expr, FnDef, JoinId, Program, Value, VarId};
use lssa_lambda::wellformed::codes;
use lssa_rt::Builtin;
use std::collections::{HashMap, HashSet};

/// Result of parsing a `.lssa` source: the program (when structurally
/// recoverable) plus every diagnostic found.
///
/// `program` is `Some` whenever the text was *syntactically* complete, even
/// if wellformedness diagnostics were reported — the formatter needs exactly
/// that (reformatting an ill-scoped program is fine; reformatting half a
/// parse tree is not).
#[derive(Debug, Clone)]
pub struct ParseOutcome {
    /// The lowered program, absent when syntax errors made lowering lossy.
    pub program: Option<Program>,
    /// All diagnostics, in source order per phase (lexical, structural,
    /// wellformedness).
    pub diagnostics: Vec<Diagnostic>,
}

impl ParseOutcome {
    /// Whether no diagnostics at all were reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }
}

/// Parses strictly: a program is returned only when there are no
/// diagnostics of any kind.
///
/// # Errors
///
/// Returns every diagnostic found (never an empty list).
pub fn parse_program(src: &str) -> Result<Program, Vec<Diagnostic>> {
    let outcome = parse_source(src);
    match outcome.program {
        Some(p) if outcome.diagnostics.is_empty() => Ok(p),
        _ => Err(outcome.diagnostics),
    }
}

/// Checks `src`, returning all diagnostics (empty = wellformed program).
pub fn check_source(src: &str) -> Vec<Diagnostic> {
    parse_source(src).diagnostics
}

/// Parses leniently; see [`ParseOutcome`].
pub fn parse_source(src: &str) -> ParseOutcome {
    let (forest, mut diagnostics) = read(src);
    let structurally_clean = diagnostics.is_empty();
    let mut lowerer = Lowerer {
        diags: &mut diagnostics,
        structural_ok: structurally_clean,
        sigs: HashMap::new(),
        func: String::new(),
        bound_once: HashSet::new(),
        max_var: None,
        max_join: None,
    };
    let program = lowerer.lower_program(&forest);
    let structural_ok = lowerer.structural_ok;
    ParseOutcome {
        program: structural_ok.then_some(program),
        diagnostics,
    }
}

struct Lowerer<'a> {
    diags: &'a mut Vec<Diagnostic>,
    /// False once any lexical/structural error was reported.
    structural_ok: bool,
    /// Top-level function name → arity (pass 1).
    sigs: HashMap<String, usize>,
    /// Name of the function currently being lowered (for notes).
    func: String,
    /// Binders seen in the current function (uniqueness check).
    bound_once: HashSet<VarId>,
    max_var: Option<VarId>,
    max_join: Option<JoinId>,
}

impl Lowerer<'_> {
    // ---- diagnostics ------------------------------------------------------

    fn form_error(&mut self, span: Span, message: impl Into<String>) {
        self.structural_ok = false;
        self.diags.push(Diagnostic::new(E_BAD_FORM, message, span));
    }

    fn token_error(&mut self, span: Span, message: impl Into<String>) {
        self.structural_ok = false;
        self.diags.push(Diagnostic::new(E_BAD_TOKEN, message, span));
    }

    /// A wellformedness diagnostic, annotated with the enclosing function.
    fn wf(&mut self, code: &'static str, message: impl Into<String>, span: Span) {
        let note = format!("in function @{}", self.func);
        self.diags
            .push(Diagnostic::new(code, message, span).with_note(note));
    }

    // ---- token helpers ----------------------------------------------------

    fn parse_id(&mut self, sexp: &Sexp, prefix: char, what: &str) -> Option<u32> {
        let text = match sexp.as_atom() {
            Some(t) => t,
            None => {
                self.token_error(
                    sexp.span,
                    format!(
                        "expected {what} like `{prefix}0`, found {}",
                        sexp.describe()
                    ),
                );
                return None;
            }
        };
        let digits = text
            .strip_prefix(prefix)
            .filter(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()));
        let Some(digits) = digits else {
            self.token_error(
                sexp.span,
                format!("expected {what} like `{prefix}0`, found `{text}`"),
            );
            return None;
        };
        match digits.parse::<u32>() {
            Ok(id) => Some(id),
            Err(_) => {
                self.token_error(sexp.span, format!("{what} `{text}` is out of range"));
                None
            }
        }
    }

    fn parse_var(&mut self, sexp: &Sexp) -> Option<VarId> {
        let id = self.parse_id(sexp, 'x', "a variable")?;
        self.max_var = Some(self.max_var.map_or(id, |m| m.max(id)));
        Some(id)
    }

    fn parse_join(&mut self, sexp: &Sexp) -> Option<JoinId> {
        let id = self.parse_id(sexp, 'j', "a join label")?;
        self.max_join = Some(self.max_join.map_or(id, |m| m.max(id)));
        Some(id)
    }

    fn parse_u32(&mut self, sexp: &Sexp, what: &str) -> Option<u32> {
        let ok = sexp
            .as_atom()
            .filter(|t| !t.is_empty() && t.bytes().all(|b| b.is_ascii_digit()))
            .and_then(|t| t.parse::<u32>().ok());
        if ok.is_none() {
            self.token_error(
                sexp.span,
                format!(
                    "expected {what} (a small decimal number), found {}",
                    sexp.describe()
                ),
            );
        }
        ok
    }

    fn parse_name(&mut self, sexp: &Sexp) -> Option<String> {
        match &sexp.kind {
            SexpKind::Atom(s) => Some(s.clone()),
            SexpKind::Str(s) => Some(s.clone()),
            SexpKind::List(_) => {
                self.token_error(sexp.span, "expected a function name".to_string());
                None
            }
        }
    }

    // ---- program / defs ---------------------------------------------------

    fn lower_program(&mut self, forest: &[Sexp]) -> Program {
        // Pass 1: signatures (arity of every def, for call checking).
        // A def awaiting pass 2: its body form, name, and lowered params.
        type PendingDef<'a> = (&'a Sexp, String, Vec<(VarId, Span)>);
        let mut order: Vec<PendingDef> = Vec::new();
        let mut seen_names: HashSet<String> = HashSet::new();
        for top in forest {
            let Some(items) = top.as_list() else {
                self.form_error(
                    top.span,
                    format!("expected a `(def ...)` form, found {}", top.describe()),
                );
                continue;
            };
            if items.first().and_then(Sexp::as_atom) != Some("def") {
                self.form_error(
                    top.span,
                    "expected a `(def name (params) body)` form".to_string(),
                );
                continue;
            }
            if items.len() != 4 {
                self.form_error(
                    top.span,
                    format!(
                        "`def` takes a name, a parameter list, and one body ({} items found)",
                        items.len() - 1
                    ),
                );
                continue;
            }
            let Some(name) = self.parse_name(&items[1]) else {
                continue;
            };
            let Some(param_items) = items[2].as_list() else {
                self.form_error(
                    items[2].span,
                    format!(
                        "expected a parameter list `(x0 x1 ...)`, found {}",
                        items[2].describe()
                    ),
                );
                continue;
            };
            let mut params = Vec::new();
            let mut params_ok = true;
            for p in param_items {
                // Ids are recorded during pass 2 (per-function max); here we
                // only need the shape.
                match p.as_atom().and_then(|t| {
                    t.strip_prefix('x')
                        .filter(|d| !d.is_empty() && d.bytes().all(|b| b.is_ascii_digit()))
                        .and_then(|d| d.parse::<u32>().ok())
                }) {
                    Some(id) => params.push((id, p.span)),
                    None => {
                        self.token_error(
                            p.span,
                            format!("expected a parameter like `x0`, found {}", p.describe()),
                        );
                        params_ok = false;
                    }
                }
            }
            if !params_ok {
                continue;
            }
            if !seen_names.insert(name.clone()) {
                self.func = name.clone();
                self.wf(
                    codes::DUPLICATE_FUNCTION,
                    "duplicate function name".to_string(),
                    items[1].span,
                );
            }
            self.sigs.insert(name.clone(), params.len());
            order.push((top, name, params));
        }
        // Pass 2: lower bodies.
        let mut program = Program::default();
        for (top, name, params) in order {
            let items = top.as_list().expect("validated in pass 1");
            self.func = name.clone();
            self.bound_once = HashSet::new();
            self.max_var = None;
            self.max_join = None;
            let mut scope: HashSet<VarId> = HashSet::new();
            let mut param_ids = Vec::new();
            for (id, span) in &params {
                self.max_var = Some(self.max_var.map_or(*id, |m| m.max(*id)));
                if !self.bound_once.insert(*id) {
                    self.wf(
                        codes::REBOUND,
                        format!("parameter x{id} bound twice"),
                        *span,
                    );
                }
                scope.insert(*id);
                param_ids.push(*id);
            }
            let body = self.lower_expr(&items[3], &scope, &HashMap::new(), None);
            program.fns.push(FnDef {
                name,
                params: param_ids,
                body: body.unwrap_or(Expr::Ret(0)),
                next_var: self.max_var.map_or(0, |m| m + 1),
                next_join: self.max_join.map_or(0, |m| m + 1),
            });
        }
        program
    }

    // ---- expressions ------------------------------------------------------

    /// Lowers one expression. `jp` is `Some((label, outer_scope))` while
    /// inside a join-point body: `outer_scope` is what was visible at the
    /// join's declaration, used to tell a *capture* (E0105) from a plain
    /// out-of-scope use (E0101).
    fn lower_expr(
        &mut self,
        sexp: &Sexp,
        scope: &HashSet<VarId>,
        joins: &HashMap<JoinId, usize>,
        jp: Option<(JoinId, &HashSet<VarId>)>,
    ) -> Option<Expr> {
        let Some(items) = sexp.as_list() else {
            self.form_error(
                sexp.span,
                format!("expected an expression form, found {}", sexp.describe()),
            );
            return None;
        };
        let head = items.first().and_then(Sexp::as_atom).map(str::to_owned);
        let Some(head) = head else {
            self.form_error(
                sexp.span,
                "expected an expression form like `(ret x0)`".to_string(),
            );
            return None;
        };
        match head.as_str() {
            "let" => {
                if items.len() != 4 {
                    self.form_error(sexp.span, "`let` takes a variable, a value, and a body");
                    return None;
                }
                let var = self.parse_var(&items[1]);
                let val = self.lower_value(&items[2], scope, jp);
                let mut inner = scope.clone();
                if let Some(v) = var {
                    self.bind(v, items[1].span, &mut inner);
                }
                let body = self.lower_expr(&items[3], &inner, joins, jp);
                Some(Expr::Let {
                    var: var?,
                    val: val?,
                    body: Box::new(body?),
                })
            }
            "join" => {
                if items.len() != 5 {
                    self.form_error(
                        sexp.span,
                        "`join` takes a label, a parameter list, the join body, and the scope body",
                    );
                    return None;
                }
                let label = self.parse_join(&items[1]);
                let Some(param_items) = items[2].as_list() else {
                    self.form_error(
                        items[2].span,
                        format!(
                            "expected a parameter list `(x0 ...)`, found {}",
                            items[2].describe()
                        ),
                    );
                    return None;
                };
                let mut params = Vec::new();
                let mut jp_scope = HashSet::new();
                let mut params_ok = true;
                for p in param_items {
                    match self.parse_var(p) {
                        Some(v) => {
                            self.bind(v, p.span, &mut jp_scope);
                            params.push(v);
                        }
                        None => params_ok = false,
                    }
                }
                // The join point's body sees only its parameters; the current
                // scope is carried for capture classification. Enclosing join
                // points stay jumpable (mirroring the AST checker).
                let jp_body =
                    self.lower_expr(&items[3], &jp_scope, joins, label.map(|l| (l, scope)));
                let mut body_joins = joins.clone();
                if let Some(l) = label {
                    body_joins.insert(l, params.len());
                }
                let body = self.lower_expr(&items[4], scope, &body_joins, jp);
                if !params_ok {
                    return None;
                }
                Some(Expr::LetJoin {
                    label: label?,
                    params,
                    jp_body: Box::new(jp_body?),
                    body: Box::new(body?),
                })
            }
            "case" => {
                if items.len() < 3 {
                    self.form_error(sexp.span, "`case` takes a scrutinee and at least one arm");
                    return None;
                }
                let scrutinee = self.parse_var(&items[1]);
                if let Some(v) = scrutinee {
                    self.check_use(v, items[1].span, scope, jp);
                }
                let mut alts: Vec<Alt> = Vec::new();
                let mut default: Option<Box<Expr>> = None;
                let mut seen_tags: HashSet<u32> = HashSet::new();
                let mut ok = true;
                for arm in &items[2..] {
                    let Some(arm_items) = arm.as_list() else {
                        self.form_error(
                            arm.span,
                            format!(
                                "expected an arm `(tag body)` or `(else body)`, found {}",
                                arm.describe()
                            ),
                        );
                        ok = false;
                        continue;
                    };
                    if arm_items.len() != 2 {
                        self.form_error(arm.span, "an arm takes a tag (or `else`) and one body");
                        ok = false;
                        continue;
                    }
                    if arm_items[0].as_atom() == Some("else") {
                        if default.is_some() {
                            self.form_error(arm_items[0].span, "duplicate `else` arm");
                            ok = false;
                        }
                        let body = self.lower_expr(&arm_items[1], scope, joins, jp);
                        match body {
                            Some(b) if default.is_none() => default = Some(Box::new(b)),
                            _ => ok = false,
                        }
                        continue;
                    }
                    let tag = self.parse_u32(&arm_items[0], "a constructor tag");
                    if let Some(t) = tag {
                        if !seen_tags.insert(t) {
                            self.wf(
                                codes::DUPLICATE_TAG,
                                format!("duplicate case tag {t}"),
                                arm_items[0].span,
                            );
                        }
                    }
                    let body = self.lower_expr(&arm_items[1], scope, joins, jp);
                    match (tag, body) {
                        (Some(tag), Some(body)) => alts.push(Alt { tag, body }),
                        _ => ok = false,
                    }
                }
                if alts.is_empty() && default.is_none() && ok {
                    self.wf(
                        codes::EMPTY_CASE,
                        "case with no arms".to_string(),
                        sexp.span,
                    );
                }
                if !ok {
                    return None;
                }
                Some(Expr::Case {
                    scrutinee: scrutinee?,
                    alts,
                    default,
                })
            }
            "jump" => {
                if items.len() < 2 {
                    self.form_error(sexp.span, "`jump` takes a join label and arguments");
                    return None;
                }
                let label = self.parse_join(&items[1]);
                let mut args = Vec::new();
                let mut ok = true;
                for a in &items[2..] {
                    match self.parse_var(a) {
                        Some(v) => {
                            self.check_use(v, a.span, scope, jp);
                            args.push(v);
                        }
                        None => ok = false,
                    }
                }
                if let Some(l) = label {
                    match joins.get(&l) {
                        Some(&arity) if arity == args.len() => {}
                        Some(&arity) => self.wf(
                            codes::JUMP_ARITY,
                            format!("jump to j{l} with {} args (expects {arity})", args.len()),
                            sexp.span,
                        ),
                        None => self.wf(
                            codes::UNKNOWN_JOIN,
                            format!("jump to unknown join point j{l}"),
                            items[1].span,
                        ),
                    }
                }
                if !ok {
                    return None;
                }
                Some(Expr::Jump {
                    label: label?,
                    args,
                })
            }
            "ret" => {
                if items.len() != 2 {
                    self.form_error(sexp.span, "`ret` takes exactly one variable");
                    return None;
                }
                let v = self.parse_var(&items[1])?;
                self.check_use(v, items[1].span, scope, jp);
                Some(Expr::Ret(v))
            }
            "inc" => {
                if items.len() != 4 {
                    self.form_error(sexp.span, "`inc` takes a variable, a count, and a body");
                    return None;
                }
                let var = self.parse_var(&items[1]);
                if let Some(v) = var {
                    self.check_use(v, items[1].span, scope, jp);
                }
                let n = self.parse_u32(&items[2], "a retain count");
                let body = self.lower_expr(&items[3], scope, joins, jp);
                Some(Expr::Inc {
                    var: var?,
                    n: n?,
                    body: Box::new(body?),
                })
            }
            "dec" => {
                if items.len() != 3 {
                    self.form_error(sexp.span, "`dec` takes a variable and a body");
                    return None;
                }
                let var = self.parse_var(&items[1]);
                if let Some(v) = var {
                    self.check_use(v, items[1].span, scope, jp);
                }
                let body = self.lower_expr(&items[2], scope, joins, jp);
                Some(Expr::Dec {
                    var: var?,
                    body: Box::new(body?),
                })
            }
            other => {
                self.form_error(
                    sexp.span,
                    format!(
                        "unknown expression form `{other}` (expected let, join, case, jump, ret, inc, or dec)"
                    ),
                );
                None
            }
        }
    }

    // ---- values -----------------------------------------------------------

    fn lower_value(
        &mut self,
        sexp: &Sexp,
        scope: &HashSet<VarId>,
        jp: Option<(JoinId, &HashSet<VarId>)>,
    ) -> Option<Value> {
        match &sexp.kind {
            SexpKind::Str(s) => Some(Value::LitStr(s.clone())),
            SexpKind::Atom(text) => {
                if text.starts_with('x')
                    && text.len() > 1
                    && text.as_bytes()[1..].iter().all(u8::is_ascii_digit)
                {
                    let v = self.parse_var(sexp)?;
                    self.check_use(v, sexp.span, scope, jp);
                    return Some(Value::Var(v));
                }
                match text.parse::<i64>() {
                    Ok(n) => Some(Value::LitInt(n)),
                    Err(_) if text.bytes().all(|b| b.is_ascii_digit()) && !text.is_empty() => {
                        self.token_error(
                            sexp.span,
                            format!("integer literal `{text}` out of range; write `(big {text})`"),
                        );
                        None
                    }
                    Err(_) => {
                        self.token_error(
                            sexp.span,
                            format!("expected a value, found atom `{text}`"),
                        );
                        None
                    }
                }
            }
            SexpKind::List(items) => {
                let head = items.first().and_then(Sexp::as_atom).map(str::to_owned);
                let Some(head) = head else {
                    self.form_error(
                        sexp.span,
                        "expected a value form like `(call f x0)`".to_string(),
                    );
                    return None;
                };
                match head.as_str() {
                    "big" => {
                        if items.len() != 2 {
                            self.form_error(sexp.span, "`big` takes one digit sequence");
                            return None;
                        }
                        let digits = match &items[1].kind {
                            SexpKind::Atom(s) => s.clone(),
                            SexpKind::Str(s) => s.clone(),
                            SexpKind::List(_) => {
                                self.token_error(items[1].span, "expected digits");
                                return None;
                            }
                        };
                        if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
                            self.wf(
                                codes::BAD_BIGINT,
                                format!("malformed bigint literal {digits:?}"),
                                items[1].span,
                            );
                        }
                        Some(Value::LitBig(digits))
                    }
                    "ctor" => {
                        if items.len() < 2 {
                            self.form_error(sexp.span, "`ctor` takes a tag and field variables");
                            return None;
                        }
                        let tag = self.parse_u32(&items[1], "a constructor tag");
                        let args = self.lower_var_list(&items[2..], scope, jp);
                        Some(Value::Ctor {
                            tag: tag?,
                            args: args?,
                        })
                    }
                    "proj" => {
                        if items.len() != 3 {
                            self.form_error(sexp.span, "`proj` takes a field index and a variable");
                            return None;
                        }
                        let idx = self.parse_u32(&items[1], "a field index");
                        let var = self.parse_var(&items[2]);
                        if let Some(v) = var {
                            self.check_use(v, items[2].span, scope, jp);
                        }
                        Some(Value::Proj {
                            var: var?,
                            idx: idx?,
                        })
                    }
                    "call" | "pap" => {
                        if items.len() < 2 {
                            self.form_error(
                                sexp.span,
                                format!("`{head}` takes a function name and argument variables"),
                            );
                            return None;
                        }
                        let func = self.parse_name(&items[1]);
                        let args = self.lower_var_list(&items[2..], scope, jp);
                        let (func, args) = (func?, args?);
                        if head == "call" {
                            self.check_call(&func, args.len(), items[1].span);
                            Some(Value::Call { func, args })
                        } else {
                            self.check_pap(&func, args.len(), items[1].span);
                            Some(Value::Pap { func, args })
                        }
                    }
                    "app" => {
                        if items.len() < 2 {
                            self.form_error(
                                sexp.span,
                                "`app` takes a closure variable and argument variables",
                            );
                            return None;
                        }
                        let closure = self.parse_var(&items[1]);
                        if let Some(v) = closure {
                            self.check_use(v, items[1].span, scope, jp);
                        }
                        let args = self.lower_var_list(&items[2..], scope, jp);
                        let args = args?;
                        if args.is_empty() {
                            self.wf(
                                codes::EMPTY_APP,
                                "closure application with no arguments".to_string(),
                                sexp.span,
                            );
                        }
                        Some(Value::App {
                            closure: closure?,
                            args,
                        })
                    }
                    other => {
                        self.form_error(
                            sexp.span,
                            format!(
                                "unknown value form `{other}` (expected big, ctor, proj, call, pap, or app)"
                            ),
                        );
                        None
                    }
                }
            }
        }
    }

    fn lower_var_list(
        &mut self,
        items: &[Sexp],
        scope: &HashSet<VarId>,
        jp: Option<(JoinId, &HashSet<VarId>)>,
    ) -> Option<Vec<VarId>> {
        let mut out = Vec::with_capacity(items.len());
        let mut ok = true;
        for item in items {
            match self.parse_var(item) {
                Some(v) => {
                    self.check_use(v, item.span, scope, jp);
                    out.push(v);
                }
                None => ok = false,
            }
        }
        ok.then_some(out)
    }

    // ---- wellformedness ---------------------------------------------------

    fn bind(&mut self, v: VarId, span: Span, scope: &mut HashSet<VarId>) {
        if !self.bound_once.insert(v) {
            self.wf(codes::REBOUND, format!("x{v} bound more than once"), span);
        }
        scope.insert(v);
    }

    fn check_use(
        &mut self,
        v: VarId,
        span: Span,
        scope: &HashSet<VarId>,
        jp: Option<(JoinId, &HashSet<VarId>)>,
    ) {
        if scope.contains(&v) {
            return;
        }
        match jp {
            Some((label, outer)) if outer.contains(&v) => self.wf(
                codes::JOIN_CAPTURE,
                format!("join point j{label} body references x{v}, which is not a parameter"),
                span,
            ),
            _ => self.wf(
                codes::OUT_OF_SCOPE,
                format!("use of x{v} out of scope"),
                span,
            ),
        }
    }

    fn check_call(&mut self, func: &str, nargs: usize, span: Span) {
        if func.starts_with("lean_") {
            match func.parse::<Builtin>() {
                Ok(b) => {
                    if b.arity() != nargs {
                        self.wf(
                            codes::BUILTIN_ARITY,
                            format!("builtin {func} expects {} args, got {nargs}", b.arity()),
                            span,
                        );
                    }
                }
                Err(_) => self.wf(
                    codes::UNKNOWN_BUILTIN,
                    format!("unknown builtin {func}"),
                    span,
                ),
            }
            return;
        }
        match self.sigs.get(func).copied() {
            Some(a) if a == nargs => {}
            Some(a) => self.wf(
                codes::CALL_ARITY,
                format!("call to @{func} with {nargs} args (arity {a})"),
                span,
            ),
            None => self.wf(
                codes::UNKNOWN_FUNCTION,
                format!("call to unknown function @{func}"),
                span,
            ),
        }
    }

    fn check_pap(&mut self, func: &str, nargs: usize, span: Span) {
        match self.sigs.get(func).copied() {
            Some(a) if nargs < a => {}
            Some(a) => self.wf(
                codes::BAD_PAP,
                format!("pap of @{func} with {nargs} args must under-apply (arity {a})"),
                span,
            ),
            None => self.wf(
                codes::BAD_PAP,
                format!("pap of unknown function @{func}"),
                span,
            ),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn codes_of(src: &str) -> Vec<&'static str> {
        check_source(src).into_iter().map(|d| d.code).collect()
    }

    #[test]
    fn minimal_program_parses() {
        let p = parse_program("(def main () (let x0 42 (ret x0)))").unwrap();
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "main");
        assert_eq!(f.params, Vec::<VarId>::new());
        assert_eq!(f.next_var, 1);
        assert_eq!(f.next_join, 0);
        assert_eq!(
            f.body,
            Expr::Let {
                var: 0,
                val: Value::LitInt(42),
                body: Box::new(Expr::Ret(0)),
            }
        );
    }

    #[test]
    fn all_value_forms_parse() {
        let src = r#"
(def helper (x0 x1) (ret x0))
(def main (x0)
  (let x1 17
  (let x2 (big 123456789012345678901234567890)
  (let x3 "hi\n"
  (let x4 (ctor 2 x0 x1)
  (let x5 (proj 0 x4)
  (let x6 (call helper x1 x2)
  (let x7 (pap helper x1)
  (let x8 (app x7 x2)
  (let x9 x8
  (ret x9)))))))))))
"#;
        let p = parse_program(src).unwrap_or_else(|d| panic!("{d:?}"));
        assert_eq!(p.fns[1].next_var, 10);
        let text = p.fns[1].body.to_string();
        assert!(
            text.contains("big(123456789012345678901234567890)"),
            "{text}"
        );
        assert!(text.contains("ctor_2(x0, x1)"), "{text}");
        assert!(text.contains("pap @helper(x1)"), "{text}");
    }

    #[test]
    fn join_case_inc_dec_parse() {
        let src = r#"
(def f (x0)
  (join j0 (x1)
    (inc x1 2
    (dec x1
    (ret x1)))
  (case x0
    (0 (jump j0 x0))
    (else (jump j0 x0)))))
"#;
        let p = parse_program(src).unwrap_or_else(|d| panic!("{d:?}"));
        let f = &p.fns[0];
        assert_eq!(f.next_join, 1);
        assert_eq!(f.next_var, 2);
        assert!(f.body.has_rc_ops());
    }

    #[test]
    fn out_of_scope_has_span_and_code() {
        let diags = check_source("(def main () (ret x7))");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, codes::OUT_OF_SCOPE);
        let span = diags[0].span.unwrap();
        assert_eq!(span, Span::new(18, 20));
        assert_eq!(diags[0].notes, vec!["in function @main".to_string()]);
    }

    #[test]
    fn join_capture_classified_separately() {
        // x0 is in the enclosing scope but not a join parameter: E0105.
        let src = "(def f (x0) (join j0 (x1) (ret x0) (jump j0 x0)))";
        assert_eq!(codes_of(src), vec![codes::JOIN_CAPTURE]);
        // x9 is nowhere: plain out-of-scope.
        let src = "(def f (x0) (join j0 (x1) (ret x9) (jump j0 x0)))";
        assert_eq!(codes_of(src), vec![codes::OUT_OF_SCOPE]);
    }

    #[test]
    fn call_checks_mirror_ast_checker() {
        assert_eq!(
            codes_of("(def main () (let x0 (call nosuch) (ret x0)))"),
            vec![codes::UNKNOWN_FUNCTION]
        );
        assert_eq!(
            codes_of("(def f (x0) (ret x0)) (def main () (let x0 (call f) (ret x0)))"),
            vec![codes::CALL_ARITY]
        );
        assert_eq!(
            codes_of("(def main () (let x0 (call lean_nosuch) (ret x0)))"),
            vec![codes::UNKNOWN_BUILTIN]
        );
        assert_eq!(
            codes_of("(def main () (let x0 (call lean_nat_add x0) (ret x0)))"),
            // x0 used before bound + arity: two diagnostics.
            vec![codes::OUT_OF_SCOPE, codes::BUILTIN_ARITY]
        );
        assert_eq!(
            codes_of("(def f (x0) (ret x0)) (def main () (let x0 (pap f x0) (ret x0)))"),
            vec![codes::OUT_OF_SCOPE, codes::BAD_PAP]
        );
    }

    #[test]
    fn rebinding_and_duplicate_tags_reported() {
        assert_eq!(
            codes_of("(def main () (let x0 1 (let x0 2 (ret x0))))"),
            vec![codes::REBOUND]
        );
        assert_eq!(
            codes_of("(def main (x0) (case x0 (0 (ret x0)) (0 (ret x0))))"),
            vec![codes::DUPLICATE_TAG]
        );
    }

    #[test]
    fn duplicate_function_name_reported() {
        assert_eq!(
            codes_of("(def f () (let x0 1 (ret x0))) (def f () (let x0 2 (ret x0)))"),
            vec![codes::DUPLICATE_FUNCTION]
        );
    }

    #[test]
    fn jump_checks() {
        assert_eq!(
            codes_of("(def f (x0) (jump j3 x0))"),
            vec![codes::UNKNOWN_JOIN]
        );
        assert_eq!(
            codes_of("(def f (x0) (join j0 (x1) (ret x1) (jump j0)))"),
            vec![codes::JUMP_ARITY]
        );
    }

    #[test]
    fn structural_errors_block_the_program_but_not_other_diags() {
        let out = parse_source("(def main () (ret x0");
        assert!(out.program.is_none());
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.code == crate::diag::E_UNBALANCED));
        // The out-of-scope use inside the broken tree still surfaces.
        assert!(out
            .diagnostics
            .iter()
            .any(|d| d.code == codes::OUT_OF_SCOPE));
    }

    #[test]
    fn wellformedness_errors_keep_the_program() {
        let out = parse_source("(def main () (ret x7))");
        assert!(out.program.is_some(), "formatter needs the tree");
        assert_eq!(out.diagnostics.len(), 1);
        assert!(parse_program("(def main () (ret x7))").is_err());
    }

    #[test]
    fn huge_int_literal_guides_to_big() {
        let diags = check_source("(def main () (let x0 99999999999999999999 (ret x0)))");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, E_BAD_TOKEN);
        assert!(diags[0].message.contains("(big"), "{}", diags[0].message);
    }

    #[test]
    fn malformed_big_flagged_with_shared_code() {
        assert_eq!(
            codes_of("(def main () (let x0 (big \"12a\") (ret x0)))"),
            vec![codes::BAD_BIGINT]
        );
    }

    #[test]
    fn unknown_forms_rejected() {
        let out = parse_source("(def main () (frob x0))");
        assert!(out.program.is_none());
        assert_eq!(out.diagnostics[0].code, E_BAD_FORM);
        let out = parse_source("(module (def main () (ret x0)))");
        assert!(out.program.is_none());
    }

    #[test]
    fn quoted_function_names_roundtrip_oddities() {
        let p = parse_program(
            "(def \"weird name\" () (let x0 1 (ret x0))) (def main () (let x0 (call \"weird name\") (ret x0)))",
        )
        .unwrap_or_else(|d| panic!("{d:?}"));
        assert_eq!(p.fns[0].name, "weird name");
    }
}
