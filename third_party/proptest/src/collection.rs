//! Collection strategies, mirroring `proptest::collection`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::Range;

/// Strategy for `Vec<S::Value>` with a length drawn from `size`.
pub struct VecStrategy<S> {
    element: S,
    size: Range<usize>,
}

/// Generates vectors whose elements come from `element` and whose length is
/// drawn uniformly from the half-open range `size`.
pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
    assert!(size.start < size.end, "empty size range in collection::vec");
    VecStrategy { element, size }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.end - self.size.start) as u64;
        let len = self.size.start + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
