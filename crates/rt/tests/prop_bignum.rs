//! Property-based tests for the bignum substrate against machine-integer
//! oracles (`u128`/`i128`) and algebraic laws.

use lssa_rt::bignum::{Int, Nat};
use proptest::prelude::*;

fn nat_strategy() -> impl Strategy<Value = Nat> {
    prop::collection::vec(any::<u64>(), 0..5).prop_map(Nat::from_limbs)
}

proptest! {
    #[test]
    fn add_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let r = Nat::from_u64(a).add(&Nat::from_u64(b));
        prop_assert_eq!(r.to_u128().unwrap(), a as u128 + b as u128);
    }

    #[test]
    fn mul_matches_u128(a in any::<u64>(), b in any::<u64>()) {
        let r = Nat::from_u64(a).mul(&Nat::from_u64(b));
        prop_assert_eq!(r.to_u128().unwrap(), a as u128 * b as u128);
    }

    #[test]
    fn sub_matches_u128(a in any::<u128>(), b in any::<u128>()) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        let r = Nat::from_u128(hi).checked_sub(&Nat::from_u128(lo)).unwrap();
        prop_assert_eq!(r.to_u128().unwrap(), hi - lo);
        prop_assert!(Nat::from_u128(lo).checked_sub(&Nat::from_u128(hi)).is_none() || hi == lo);
    }

    #[test]
    fn div_rem_matches_u128(a in any::<u128>(), b in 1u128..) {
        let (q, r) = Nat::from_u128(a).div_rem(&Nat::from_u128(b));
        prop_assert_eq!(q.to_u128().unwrap(), a / b);
        prop_assert_eq!(r.to_u128().unwrap(), a % b);
    }

    #[test]
    fn div_rem_reconstructs(a in nat_strategy(), b in nat_strategy()) {
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(q.mul(&b).add(&r), a);
        prop_assert!(r < b);
    }

    #[test]
    fn add_commutative_associative(a in nat_strategy(), b in nat_strategy(), c in nat_strategy()) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert_eq!(a.add(&b).add(&c), a.add(&b.add(&c)));
    }

    #[test]
    fn mul_distributes_over_add(a in nat_strategy(), b in nat_strategy(), c in nat_strategy()) {
        prop_assert_eq!(a.mul(&b.add(&c)), a.mul(&b).add(&a.mul(&c)));
    }

    #[test]
    fn display_parse_round_trip(a in nat_strategy()) {
        let s = a.to_string();
        prop_assert_eq!(Nat::from_str_decimal(&s).unwrap(), a);
    }

    #[test]
    fn shifts_are_mul_div_by_powers(a in nat_strategy(), sh in 0u64..130) {
        let two_sh = Nat::from_u64(2).pow(sh);
        prop_assert_eq!(a.shl(sh), a.mul(&two_sh));
        prop_assert_eq!(a.shr(sh), a.div(&two_sh));
    }

    #[test]
    fn cmp_agrees_with_sub(a in nat_strategy(), b in nat_strategy()) {
        use std::cmp::Ordering;
        match a.cmp_nat(&b) {
            Ordering::Less => prop_assert!(a.checked_sub(&b).is_none()),
            _ => prop_assert!(a.checked_sub(&b).is_some()),
        }
    }

    #[test]
    fn int_arith_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        let (x, y) = (Int::from_i64(a), Int::from_i64(b));
        let sum = x.add(&y);
        prop_assert_eq!(sum.to_string(), (a as i128 + b as i128).to_string());
        let prod = x.mul(&y);
        prop_assert_eq!(prod.to_string(), (a as i128 * b as i128).to_string());
        let diff = x.sub(&y);
        prop_assert_eq!(diff.to_string(), (a as i128 - b as i128).to_string());
    }

    #[test]
    fn int_div_rem_truncated(a in any::<i64>(), b in any::<i64>()) {
        prop_assume!(b != 0);
        let (x, y) = (Int::from_i64(a), Int::from_i64(b));
        prop_assert_eq!(x.div(&y).to_string(), (a as i128 / b as i128).to_string());
        prop_assert_eq!(x.rem(&y).to_string(), (a as i128 % b as i128).to_string());
    }

    #[test]
    fn gcd_divides_both(a in any::<u64>(), b in any::<u64>()) {
        let g = Nat::from_u64(a).gcd(&Nat::from_u64(b));
        prop_assume!(!g.is_zero());
        prop_assert!(Nat::from_u64(a).rem(&g).is_zero());
        prop_assert!(Nat::from_u64(b).rem(&g).is_zero());
    }

    #[test]
    fn pow_adds_exponents(a in 0u64..50, e1 in 0u64..8, e2 in 0u64..8) {
        let base = Nat::from_u64(a);
        prop_assert_eq!(base.pow(e1).mul(&base.pow(e2)), base.pow(e1 + e2));
    }
}
