//! Textual IR output.
//!
//! The format mirrors MLIR's generic syntax closely enough to be familiar:
//!
//! ```text
//! module {
//!   extern func @lean_nat_add(!lp.t, !lp.t) -> !lp.t
//!   global @kslot : !lp.t
//!   func @length(%0: !lp.t) -> !lp.t {
//!   ^bb0(%0: !lp.t):
//!     %1 = lp.getlabel(%0) : i8
//!     lp.switch(%1) {cases = [0, 1]} ({
//!       ...
//!     }, {
//!       ...
//!     })
//!   }
//! }
//! ```
//!
//! Values and blocks are renumbered densely in definition order, so printing
//! is canonical: `print(parse(print(m))) == print(m)`.

use crate::attr::Attr;
use crate::body::{Body, ValueDef};
use crate::ids::{BlockId, OpId, RegionId, ValueId};
use crate::module::{Function, Module};
use std::collections::HashMap;
use std::fmt::Write;

/// Prints a whole module.
pub fn print_module(m: &Module) -> String {
    let mut out = String::new();
    out.push_str("module {\n");
    for g in &m.globals {
        let _ = writeln!(out, "  global @{} : {}", m.name_of(g.name), g.ty);
    }
    for f in &m.funcs {
        if f.is_extern() {
            let mut params = String::new();
            for (i, p) in f.sig.params.iter().enumerate() {
                if i > 0 {
                    params.push_str(", ");
                }
                let _ = write!(params, "{p}");
            }
            let _ = writeln!(
                out,
                "  extern func @{}({}) -> {}",
                m.name_of(f.name),
                params,
                f.sig.ret
            );
        } else {
            print_function(m, f, &mut out, 1);
        }
    }
    out.push_str("}\n");
    out
}

/// Prints one function (with bodies indented `indent` levels).
pub fn print_function(m: &Module, f: &Function, out: &mut String, indent: usize) {
    let body = f.body.as_ref().expect("print_function on extern");
    let mut p = FuncPrinter::new(m, body);
    p.number_region(crate::body::ROOT_REGION);
    let pad = "  ".repeat(indent);
    let _ = write!(out, "{pad}func @{}(", m.name_of(f.name));
    for (i, &param) in body.params().iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "{}: {}", p.value_name(param), body.value_type(param));
    }
    let _ = writeln!(out, ") -> {} {{", f.sig.ret);
    p.print_region_blocks(crate::body::ROOT_REGION, out, indent + 1, true);
    let _ = writeln!(out, "{pad}}}");
}

/// Prints one op (with nested regions) for diagnostics.
pub fn op_to_string(m: &Module, body: &Body, op: OpId) -> String {
    let mut p = FuncPrinter::new(m, body);
    p.number_region(crate::body::ROOT_REGION);
    let mut out = String::new();
    p.print_op(op, &mut out, 0);
    out
}

/// Prints a function to a standalone string (testing convenience).
pub fn function_to_string(m: &Module, f: &Function) -> String {
    let mut out = String::new();
    print_function(m, f, &mut out, 0);
    out
}

struct FuncPrinter<'a> {
    module: &'a Module,
    body: &'a Body,
    value_names: HashMap<ValueId, u32>,
    block_names: HashMap<BlockId, u32>,
    next_value: u32,
    next_block: u32,
}

impl<'a> FuncPrinter<'a> {
    fn new(module: &'a Module, body: &'a Body) -> FuncPrinter<'a> {
        FuncPrinter {
            module,
            body,
            value_names: HashMap::new(),
            block_names: HashMap::new(),
            next_value: 0,
            next_block: 0,
        }
    }

    fn number_region(&mut self, region: RegionId) {
        for &b in &self.body.regions[region.index()].blocks {
            let n = self.next_block;
            self.next_block += 1;
            self.block_names.insert(b, n);
            for &a in &self.body.blocks[b.index()].args {
                let n = self.next_value;
                self.next_value += 1;
                self.value_names.insert(a, n);
            }
            for &op in &self.body.blocks[b.index()].ops {
                for &r in &self.body.ops[op.index()].results {
                    let n = self.next_value;
                    self.next_value += 1;
                    self.value_names.insert(r, n);
                }
                for &nested in &self.body.ops[op.index()].regions {
                    self.number_region(nested);
                }
            }
        }
    }

    fn value_name(&self, v: ValueId) -> String {
        match self.value_names.get(&v) {
            Some(n) => format!("%{n}"),
            None => format!("%<invalid:{}>", v.0),
        }
    }

    fn block_name(&self, b: BlockId) -> String {
        match self.block_names.get(&b) {
            Some(n) => format!("^bb{n}"),
            None => format!("^bb<invalid:{}>", b.0),
        }
    }

    fn print_region_blocks(
        &self,
        region: RegionId,
        out: &mut String,
        indent: usize,
        is_root: bool,
    ) {
        let blocks = &self.body.regions[region.index()].blocks;
        let pad = "  ".repeat(indent);
        for (i, &b) in blocks.iter().enumerate() {
            let data = &self.body.blocks[b.index()];
            // The root entry's args are the function parameters (already
            // printed in the signature), so its header is omitted.
            let needs_header = i > 0 || (!is_root && !data.args.is_empty());
            if needs_header {
                let _ = write!(out, "{pad}{}", self.block_name(b));
                if !data.args.is_empty() {
                    out.push('(');
                    for (j, &a) in data.args.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        let _ = write!(out, "{}: {}", self.value_name(a), self.body.value_type(a));
                    }
                    out.push(')');
                }
                out.push_str(":\n");
            }
            for &op in &data.ops {
                self.print_op(op, out, indent + 1);
            }
        }
    }

    fn print_op(&self, op: OpId, out: &mut String, indent: usize) {
        let data = &self.body.ops[op.index()];
        let pad = "  ".repeat(indent);
        out.push_str(&pad);
        // Results.
        if !data.results.is_empty() {
            for (i, &r) in data.results.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&self.value_name(r));
            }
            out.push_str(" = ");
        }
        out.push_str(data.opcode.name());
        // Operands.
        if !data.operands.is_empty() {
            out.push('(');
            for (i, &o) in data.operands.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&self.value_name(o));
            }
            out.push(')');
        }
        // Attributes.
        if !data.attrs.is_empty() {
            out.push_str(" {");
            for (i, (k, a)) in data.attrs.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{k} = ");
                self.print_attr(a, out);
            }
            out.push('}');
        }
        // Successors.
        if !data.successors.is_empty() {
            out.push_str(" [");
            for (i, s) in data.successors.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&self.block_name(s.block));
                if !s.args.is_empty() {
                    out.push('(');
                    for (j, &a) in s.args.iter().enumerate() {
                        if j > 0 {
                            out.push_str(", ");
                        }
                        out.push_str(&self.value_name(a));
                    }
                    out.push(')');
                }
            }
            out.push(']');
        }
        // Regions.
        if !data.regions.is_empty() {
            out.push_str(" (");
            for (i, &r) in data.regions.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str("{\n");
                self.print_region_blocks(r, out, indent + 1, false);
                let _ = write!(out, "{pad}}}");
            }
            out.push(')');
        }
        // Result type.
        if let Some(r) = data.results.first() {
            let _ = write!(out, " : {}", self.body.value_type(*r));
        }
        out.push('\n');
    }

    fn print_attr(&self, a: &Attr, out: &mut String) {
        match a {
            Attr::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Attr::Str(s) => {
                let _ = write!(out, "{s:?}");
            }
            Attr::Sym(s) => {
                let _ = write!(out, "@{}", self.module.name_of(*s));
            }
            Attr::IntList(vs) => {
                out.push('[');
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        out.push_str(", ");
                    }
                    let _ = write!(out, "{v}");
                }
                out.push(']');
            }
            Attr::Pred(p) => {
                let _ = write!(out, "{p}");
            }
        }
    }
}

/// Checks that every value referenced is also numbered (printer diagnostic).
pub fn has_invalid_refs(m: &Module) -> bool {
    print_module(m).contains("<invalid:")
}

// The use of ValueDef here keeps the import exercised even though numbering
// is definition-order based.
#[allow(dead_code)]
fn _def_order(v: &ValueDef) -> u32 {
    match v {
        ValueDef::OpResult(op, i) => op.0.wrapping_add(*i),
        ValueDef::BlockArg(b, i) => b.0.wrapping_add(*i),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::{Signature, Type};

    #[test]
    fn print_simple_function() {
        let mut m = Module::new();
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(1, Type::I64);
        let sum = b.addi(params[0], c);
        b.ret(sum);
        m.add_function("inc", Signature::new(vec![Type::I64], Type::I64), body);
        let text = print_module(&m);
        assert!(text.contains("func @inc(%0: i64) -> i64 {"), "{text}");
        assert!(
            text.contains("%1 = arith.constant {value = 1} : i64"),
            "{text}"
        );
        assert!(text.contains("%2 = arith.addi(%0, %1) : i64"), "{text}");
        assert!(text.contains("func.return(%2)"), "{text}");
    }

    #[test]
    fn print_switch_with_regions() {
        let mut m = Module::new();
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let tag = b.lp_getlabel(params[0]);
        let (_op, blocks) = b.lp_switch(tag, vec![0]);
        {
            let mut b0 = Builder::at_end(&mut body, blocks[0]);
            let v = b0.lp_int(0);
            b0.lp_ret(v);
        }
        {
            let mut b1 = Builder::at_end(&mut body, blocks[1]);
            let v = b1.lp_int(1);
            b1.lp_ret(v);
        }
        m.add_function("f", Signature::obj(1), body);
        let text = print_module(&m);
        assert!(text.contains("lp.switch(%1) {cases = [0]} ({"), "{text}");
        assert!(text.contains("lp.ret("), "{text}");
    }

    #[test]
    fn print_successors() {
        let mut m = Module::new();
        let (mut body, params) = Body::new(&[Type::I1]);
        let entry = body.entry_block();
        let then_b = body.new_block(crate::body::ROOT_REGION, &[]);
        let else_b = body.new_block(crate::body::ROOT_REGION, &[Type::I64]);
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(9, Type::I64);
        b.cond_br(params[0], (then_b, vec![]), (else_b, vec![c]));
        let mut bt = Builder::at_end(&mut body, then_b);
        let z = bt.const_i(0, Type::I64);
        bt.ret(z);
        let else_arg = body.blocks[else_b.index()].args[0];
        let mut be = Builder::at_end(&mut body, else_b);
        be.ret(else_arg);
        m.add_function("g", Signature::new(vec![Type::I1], Type::I64), body);
        let text = print_module(&m);
        assert!(text.contains("cf.cond_br(%0) [^bb1, ^bb2(%1)]"), "{text}");
        assert!(text.contains("^bb2(%3: i64):"), "{text}");
    }

    #[test]
    fn extern_and_global_printed() {
        let mut m = Module::new();
        m.declare_extern("lean_nat_add", Signature::obj(2));
        m.add_global("kslot", Type::Obj);
        let text = print_module(&m);
        assert!(text.contains("extern func @lean_nat_add(!lp.t, !lp.t) -> !lp.t"));
        assert!(text.contains("global @kslot : !lp.t"));
    }
}
