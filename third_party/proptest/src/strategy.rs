//! The [`Strategy`] trait and the combinators lambda-ssa's tests use.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom};

/// A recipe for generating random values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; `generate`
/// produces the final value directly.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy so heterogeneous strategies with a common
    /// `Value` can share a container (see [`prop_oneof!`](crate::prop_oneof)).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Uniform choice between strategies; see [`prop_oneof!`](crate::prop_oneof).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Builds a union over `options` (must be non-empty).
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one option");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let ix = rng.below(self.options.len() as u64) as usize;
        self.options[ix].generate(rng)
    }
}

/// Types with a canonical "any value" strategy, mirroring
/// `proptest::arbitrary::Arbitrary`.
pub trait Arbitrary: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for all values of `T`.
pub struct Any<T>(PhantomData<T>);

/// Returns the canonical strategy for `T`, mirroring `proptest::prelude::any`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128()
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u128() as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_range_strategy_unsigned {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u128;
                self.start + (rng.next_u128() % span) as $t
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX - self.start) as u128 + 1;
                self.start + (rng.next_u128() % span) as $t
            }
        }
    )*};
}

macro_rules! impl_range_strategy_signed {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                self.start.wrapping_add((rng.next_u128() % span) as $t)
            }
        }

        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (<$t>::MAX as i128).wrapping_sub(self.start as i128) as u128 + 1;
                self.start.wrapping_add((rng.next_u128() % span) as $t)
            }
        }
    )*};
}

impl_range_strategy_unsigned!(u8, u16, u32, u64, usize);
impl_range_strategy_signed!(i8, i16, i32, i64, isize);

impl Strategy for Range<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        assert!(self.start < self.end, "empty range strategy");
        let span = self.end - self.start;
        self.start + rng.next_u128() % span
    }
}

impl Strategy for RangeFrom<u128> {
    type Value = u128;
    fn generate(&self, rng: &mut TestRng) -> u128 {
        match (u128::MAX - self.start).checked_add(1) {
            Some(span) => self.start + rng.next_u128() % span,
            None => rng.next_u128(),
        }
    }
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
