//! # lssa-lambda: λpure and λrc
//!
//! Stand-in for the LEAN4 frontend of the paper: the functional intermediate
//! representations the SSA backend consumes.
//!
//! - [`ast`] — λpure/λrc terms (A-normal form, join points, constructors,
//!   pattern matching, closures; λrc adds explicit `inc`/`dec`),
//! - [`parse`] — a small surface language and its ANF lowering (how the
//!   benchmark programs and the conformance corpus are written),
//! - [`wellformed`] — scoping/arity/join-point discipline checks,
//! - [`simplify`] — LEAN's λpure simplifier (the baseline optimizer of
//!   Figure 10, with `simpcase` separately toggleable),
//! - [`rc`] — reference-count insertion (λpure → λrc), balanced by
//!   construction and validated dynamically,
//! - [`interp`] — the reference interpreter over the `lssa-rt` heap (the
//!   semantic oracle for differential testing).
//!
//! ```
//! use lssa_lambda::{parse::parse_program, rc::insert_rc, interp::run_program};
//! let program = parse_program("def main() := 2 + 3 * 4").unwrap();
//! let rc = insert_rc(&program);
//! let out = run_program(&rc, "main", true, 1_000_000).unwrap();
//! assert_eq!(out.rendered, "14");
//! assert_eq!(out.stats.live, 0); // reference counting balanced
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod ast;
pub mod interp;
pub mod parse;
pub mod rc;
pub mod simplify;
pub mod wellformed;

pub use ast::{Expr, FnDef, Program, Value};
pub use interp::{run_program, Outcome};
pub use parse::parse_program;
pub use rc::insert_rc;
pub use simplify::{simplify_program, SimplifyOptions};
pub use wellformed::check_program;
