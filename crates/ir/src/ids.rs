//! Typed arena indices for IR entities.

use std::fmt;

macro_rules! define_id {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        // `Default` (index 0) exists so id lists can live in
        // [`crate::inline_vec::InlineVec`] buffers, whose unused inline
        // slots hold placeholder values; it carries no semantic meaning.
        #[derive(Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// Index form for arena access.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

define_id!(
    /// An operation within a function body.
    OpId,
    "op"
);
define_id!(
    /// An SSA value (operation result or block argument).
    ValueId,
    "%"
);
define_id!(
    /// A basic block within a function body.
    BlockId,
    "^bb"
);
define_id!(
    /// A region (nested, single-entry sub-CFG) within a function body.
    RegionId,
    "rgn"
);
define_id!(
    /// An interned string (function names, labels, global names).
    Symbol,
    "@sym"
);

/// Interner for [`Symbol`]s.
#[derive(Debug, Default, Clone)]
pub struct Interner {
    strings: Vec<String>,
    map: std::collections::HashMap<String, Symbol>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Interner {
        Interner::default()
    }

    /// Interns a string, returning its symbol.
    pub fn intern(&mut self, s: &str) -> Symbol {
        if let Some(&sym) = self.map.get(s) {
            return sym;
        }
        let sym = Symbol(self.strings.len() as u32);
        self.strings.push(s.to_string());
        self.map.insert(s.to_string(), sym);
        sym
    }

    /// Looks up a symbol's string.
    pub fn resolve(&self, sym: Symbol) -> &str {
        &self.strings[sym.index()]
    }

    /// Looks up an already-interned string.
    pub fn get(&self, s: &str) -> Option<Symbol> {
        self.map.get(s).copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_round_trip() {
        let mut i = Interner::new();
        let a = i.intern("foo");
        let b = i.intern("bar");
        let a2 = i.intern("foo");
        assert_eq!(a, a2);
        assert_ne!(a, b);
        assert_eq!(i.resolve(a), "foo");
        assert_eq!(i.get("bar"), Some(b));
        assert_eq!(i.get("baz"), None);
    }

    #[test]
    fn id_display() {
        assert_eq!(ValueId(3).to_string(), "%3");
        assert_eq!(BlockId(1).to_string(), "^bb1");
        assert_eq!(format!("{:?}", OpId(9)), "op9");
    }
}
