//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the strategy combinators and macros lambda-ssa's property
//! tests use: [`prelude::any`], integer-range strategies, tuple strategies,
//! [`collection::vec`], [`Strategy::prop_map`], [`prop_oneof!`], and the
//! [`proptest!`] / [`prop_assert!`] / [`prop_assert_eq!`] / [`prop_assume!`]
//! macros.
//!
//! Differences from real proptest, deliberately accepted:
//!
//! - **no shrinking** — a failing case reports its case number and the
//!   deterministic per-test seed instead of a minimized input;
//! - **deterministic by default** — each test derives its seed from the
//!   test name (override with `PROPTEST_SEED`), so CI runs are reproducible.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// `prop::` namespace as re-exported by the real crate's prelude.
pub mod prop {
    pub use crate::collection;
}

pub use strategy::{BoxedStrategy, Strategy};
pub use test_runner::{ProptestConfig, TestCaseError, TestRng};

/// Everything a property-test file needs, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{any, BoxedStrategy, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests.
///
/// Accepts an optional `#![proptest_config(expr)]` header followed by test
/// functions whose arguments are drawn from strategies:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn addition_commutes(a in any::<u64>(), b in any::<u64>()) {
///         prop_assert_eq!(a.wrapping_add(b), b.wrapping_add(a));
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let seed = $crate::test_runner::resolve_seed(stringify!($name));
                let mut rng = $crate::TestRng::new(seed);
                let mut accepted: u32 = 0;
                let mut rejected: u32 = 0;
                while accepted < config.cases {
                    let case_seed = rng.fork_seed();
                    let mut case_rng = $crate::TestRng::new(case_seed);
                    let outcome = (|| -> ::std::result::Result<(), $crate::TestCaseError> {
                        $(let $arg = $crate::Strategy::generate(&($strat), &mut case_rng);)*
                        $body
                        ::std::result::Result::Ok(())
                    })();
                    match outcome {
                        ::std::result::Result::Ok(()) => accepted += 1,
                        ::std::result::Result::Err($crate::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest {}: too many rejected cases ({} rejects, {} accepted)",
                                    stringify!($name), rejected, accepted
                                );
                            }
                        }
                        ::std::result::Result::Err($crate::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest {} failed at case {} (seed {:#x}, case seed {:#x}):\n{}",
                                stringify!($name), accepted, seed, case_seed, msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Strategy-level `assert!`: fails the current case without aborting the
/// whole test binary, reporting the formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}", stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}\n{}", stringify!($cond), format!($($fmt)+)
            )));
        }
    };
}

/// Strategy-level `assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (left, right) = (&$lhs, &$rhs);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($lhs), stringify!($rhs), left, right
            )));
        }
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$lhs, &$rhs);
        if !(*left == *right) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}\n{}",
                stringify!($lhs), stringify!($rhs), left, right, format!($($fmt)+)
            )));
        }
    }};
}

/// Strategy-level `assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (left, right) = (&$lhs, &$rhs);
        if *left == *right {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($lhs),
                stringify!($rhs),
                left
            )));
        }
    }};
}

/// Discards the current case when the assumption does not hold; the runner
/// draws a fresh one instead of counting it as a pass or failure.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Picks one of several strategies (all producing the same `Value`)
/// uniformly at random for each case.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::Strategy::boxed($strategy)),+
        ])
    };
}
