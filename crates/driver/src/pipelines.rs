//! End-to-end compiler configurations: the exact pipelines the paper's
//! evaluation compares.
//!
//! ```text
//! source ──parse──▶ λpure ──[simplifier]──▶ λpure ──insert_rc──▶ λrc
//!     λrc ──baseline──▶ CFG   (leanc model: direct lowering, heuristic TCO)
//!     λrc ──lp──▶ rgn ──[region opts]──▶ CFG   (the paper's backend)
//!                                 └──▶ bytecode ──▶ VM
//! ```

use lssa_core::pipeline::{PipelineOptions, PipelineReport};
use lssa_lambda::ast::Program;
use lssa_lambda::simplify::SimplifyOptions;
use lssa_vm::{CompiledProgram, DecodeOptions, ExecOptions, RunOutcome};
use std::borrow::Cow;
use std::fmt;

/// Which backend lowers λrc to the flat CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Direct lowering modelling the C backend (`lssa_driver::baseline`).
    Baseline,
    /// The lp+rgn MLIR-style backend with the given options.
    Mlir(PipelineOptions),
}

/// A full compiler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompilerConfig {
    /// λpure simplifier to run before RC insertion (`None` = unoptimized
    /// λrc, the input of Figure 10's variants b/c).
    pub simplify: Option<SimplifyOptions>,
    /// The backend.
    pub backend: Backend,
}

impl CompilerConfig {
    /// The `leanc` model: λrc simplifier + direct C-style backend.
    pub fn leanc() -> CompilerConfig {
        CompilerConfig {
            simplify: Some(SimplifyOptions::all()),
            backend: Backend::Baseline,
        }
    }

    /// The paper's backend fed simplified λrc (Figure 10 variant a).
    pub fn mlir() -> CompilerConfig {
        CompilerConfig {
            simplify: Some(SimplifyOptions::all()),
            backend: Backend::Mlir(PipelineOptions::full()),
        }
    }

    /// Unoptimized λrc, rgn optimizations on (Figure 10 variant b: "we
    /// disable LEAN's simpcase pass which performs rgn style switch
    /// simplification" — here the λ simplifier is skipped entirely, so the
    /// rgn passes see raw λrc).
    pub fn rgn_only() -> CompilerConfig {
        CompilerConfig {
            simplify: None,
            backend: Backend::Mlir(PipelineOptions::full()),
        }
    }

    /// Unsimplified λrc, no optimization anywhere (Figure 10 variant c).
    pub fn none() -> CompilerConfig {
        CompilerConfig {
            simplify: None,
            backend: Backend::Mlir(PipelineOptions::no_opt()),
        }
    }

    /// Short label for reports. The four fixed configurations used all over
    /// the harness resolve to static strings without allocating; only
    /// unusual combinations format a fresh one.
    pub fn label(&self) -> Cow<'static, str> {
        let front = match self.simplify {
            Some(s) if s == SimplifyOptions::all() => "simplified",
            Some(_) => "partial-simplify",
            None => "raw",
        };
        let back = match self.backend {
            Backend::Baseline => "leanc",
            Backend::Mlir(o) if o == PipelineOptions::full() => "mlir+rgn+generic",
            Backend::Mlir(o) if o == PipelineOptions::no_opt() => "mlir",
            Backend::Mlir(o) => {
                return Cow::Owned(format!(
                    "{front}/mlir{}{}{}",
                    if o.region_opts { "+rgn" } else { "" },
                    if o.generic_opts { "+generic" } else { "" },
                    if o.rc_opt { "" } else { "-rc" }
                ))
            }
        };
        match (front, back) {
            ("simplified", "leanc") => Cow::Borrowed("simplified/leanc"),
            ("simplified", "mlir+rgn+generic") => Cow::Borrowed("simplified/mlir+rgn+generic"),
            ("simplified", "mlir") => Cow::Borrowed("simplified/mlir"),
            ("raw", "leanc") => Cow::Borrowed("raw/leanc"),
            ("raw", "mlir+rgn+generic") => Cow::Borrowed("raw/mlir+rgn+generic"),
            ("raw", "mlir") => Cow::Borrowed("raw/mlir"),
            _ => Cow::Owned(format!("{front}/{back}")),
        }
    }
}

/// A compilation failure anywhere along the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineError {
    /// Which stage failed.
    pub stage: &'static str,
    /// Description.
    pub message: String,
    /// The underlying VM error when the failing stage was execution —
    /// carries the structured [`lssa_vm::VmErrorKind`] so callers (the CLI's
    /// exit-code mapping, the [`crate::jobs`] taxonomy) can distinguish
    /// resource-governance aborts from program faults.
    pub vm: Option<lssa_vm::VmError>,
}

impl PipelineError {
    /// The structured kind of the underlying VM error, when execution
    /// failed ([`lssa_vm::VmErrorKind::Trap`] stands in for compile-stage
    /// failures, which are never resource aborts).
    pub fn vm_kind(&self) -> Option<lssa_vm::VmErrorKind> {
        self.vm.as_ref().map(|e| e.kind)
    }
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.stage, self.message)
    }
}

impl std::error::Error for PipelineError {}

/// Parses and front-lowers source into λrc under a config.
///
/// # Errors
///
/// Returns the first front-end failure.
pub fn frontend(src: &str, config: CompilerConfig) -> Result<Program, PipelineError> {
    let program = lssa_lambda::parse_program(src).map_err(|e| PipelineError {
        stage: "parse",
        message: e.to_string(),
        vm: None,
    })?;
    frontend_ast(&program, config)
}

/// Front-lowers an already-parsed λpure program into λrc under a config:
/// wellformedness check, optional simplifier, RC insertion.
///
/// This is where `.lssa` files enter the pipeline — the text frontend
/// (`lssa-syntax`) parses to the same [`Program`] the built-in surface
/// language lowers to, and both funnel through here.
///
/// # Errors
///
/// Returns wellformedness failures.
pub fn frontend_ast(program: &Program, config: CompilerConfig) -> Result<Program, PipelineError> {
    lssa_lambda::check_program(program).map_err(|errs| PipelineError {
        stage: "wellformedness",
        message: errs
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("; "),
        vm: None,
    })?;
    let program = match config.simplify {
        Some(opts) => lssa_lambda::simplify_program(program, opts),
        None => program.clone(),
    };
    Ok(lssa_lambda::insert_rc(&program))
}

/// Compiles λrc to bytecode under a config's backend.
///
/// # Errors
///
/// Returns backend failures.
pub fn backend(rc: &Program, config: CompilerConfig) -> Result<CompiledProgram, PipelineError> {
    backend_with_report(rc, config).map(|(p, _)| p)
}

/// [`backend`], also returning the backend's per-pass statistics.
///
/// The report is `None` for the baseline backend, which lowers directly
/// without a pass pipeline.
///
/// # Errors
///
/// Returns backend failures.
pub fn backend_with_report(
    rc: &Program,
    config: CompilerConfig,
) -> Result<(CompiledProgram, Option<PipelineReport>), PipelineError> {
    let (module, report) = match config.backend {
        Backend::Baseline => (crate::baseline::lower_program(rc), None),
        Backend::Mlir(opts) => {
            let (m, r) = lssa_core::pipeline::compile_with_report(rc, opts);
            (m, Some(r))
        }
    };
    if let Err(errs) = lssa_ir::verifier::verify_module(&module) {
        return Err(PipelineError {
            stage: "verify",
            vm: None,
            message: errs
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        });
    }
    let program = lssa_vm::compile_module(&module).map_err(|e| PipelineError {
        stage: "bytecode",
        message: e.to_string(),
        vm: None,
    })?;
    Ok((program, report))
}

/// Compiles source end-to-end.
///
/// # Errors
///
/// Returns the first failure along the pipeline.
pub fn compile(src: &str, config: CompilerConfig) -> Result<CompiledProgram, PipelineError> {
    compile_with_report(src, config).map(|(p, _)| p)
}

/// [`compile`], also returning the backend's per-pass statistics (see
/// [`backend_with_report`]).
///
/// # Errors
///
/// Returns the first failure along the pipeline.
pub fn compile_with_report(
    src: &str,
    config: CompilerConfig,
) -> Result<(CompiledProgram, Option<PipelineReport>), PipelineError> {
    let rc = frontend(src, config)?;
    backend_with_report(&rc, config)
}

/// Compiles many sources with one call, sharded across `jobs` worker
/// threads by the [`crate::par`] executor (`jobs == 0` means one per core).
///
/// Per-source outcomes come back in input order regardless of thread count;
/// the backends' per-pass statistics are merged (phase by phase, see
/// [`PipelineReport::merge`]) into one aggregate report covering every
/// compilation that reached the backend.
pub fn compile_batch(
    sources: &[impl AsRef<str> + Sync],
    config: CompilerConfig,
    jobs: usize,
) -> (Vec<Result<CompiledProgram, PipelineError>>, PipelineReport) {
    let outcomes = crate::par::BatchRunner::new()
        .with_jobs(jobs)
        .map(sources, |src| compile_with_report(src.as_ref(), config));
    let mut merged = PipelineReport::default();
    let results = outcomes
        .into_iter()
        .map(|outcome| {
            outcome.map(|(program, report)| {
                if let Some(report) = report {
                    merged.merge(&report);
                }
                program
            })
        })
        .collect();
    (results, merged)
}

/// Compiles an already-parsed program end-to-end, returning the backend's
/// per-pass statistics alongside the bytecode.
///
/// # Errors
///
/// Returns the first failure along the pipeline.
pub fn compile_ast_with_report(
    program: &Program,
    config: CompilerConfig,
) -> Result<(CompiledProgram, Option<PipelineReport>), PipelineError> {
    let rc = frontend_ast(program, config)?;
    backend_with_report(&rc, config)
}

/// [`compile_batch`] over already-parsed programs: shards compilation across
/// `jobs` worker threads, returning per-program outcomes in input order and
/// the merged backend statistics.
pub fn compile_batch_asts(
    programs: &[Program],
    config: CompilerConfig,
    jobs: usize,
) -> (Vec<Result<CompiledProgram, PipelineError>>, PipelineReport) {
    let outcomes = crate::par::BatchRunner::new()
        .with_jobs(jobs)
        .map(programs, |p| compile_ast_with_report(p, config));
    let mut merged = PipelineReport::default();
    let results = outcomes
        .into_iter()
        .map(|outcome| {
            outcome.map(|(program, report)| {
                if let Some(report) = report {
                    merged.merge(&report);
                }
                program
            })
        })
        .collect();
    (results, merged)
}

/// Compiles an already-parsed program and runs `main` with explicit decode
/// options.
///
/// # Errors
///
/// Returns compilation or execution failures.
pub fn compile_and_run_ast_opts(
    program: &Program,
    config: CompilerConfig,
    max_steps: u64,
    decode: DecodeOptions,
) -> Result<RunOutcome, PipelineError> {
    compile_and_run_ast_vm(program, config, max_steps, decode, ExecOptions::default())
}

/// [`compile_and_run_ast_opts`] with explicit execution options too — the
/// fully-parameterized AST entry point behind the dispatch/cache knobs.
///
/// # Errors
///
/// Returns compilation or execution failures.
pub fn compile_and_run_ast_vm(
    program: &Program,
    config: CompilerConfig,
    max_steps: u64,
    decode: DecodeOptions,
    exec: ExecOptions,
) -> Result<RunOutcome, PipelineError> {
    let (compiled, _) = compile_ast_with_report(program, config)?;
    lssa_vm::run_program_opts(&compiled, "main", max_steps, decode, exec).map_err(|e| {
        PipelineError {
            stage: "execution",
            message: e.to_string(),
            vm: Some(e),
        }
    })
}

/// Compiles and runs `main`.
///
/// # Errors
///
/// Returns compilation or execution failures.
pub fn compile_and_run(
    src: &str,
    config: CompilerConfig,
    max_steps: u64,
) -> Result<RunOutcome, PipelineError> {
    compile_and_run_with_report(src, config, max_steps).map(|(o, _)| o)
}

/// [`compile_and_run`] with explicit decode options (`--no-fuse` plumbs
/// through here).
///
/// # Errors
///
/// Returns compilation or execution failures.
pub fn compile_and_run_opts(
    src: &str,
    config: CompilerConfig,
    max_steps: u64,
    decode: DecodeOptions,
) -> Result<RunOutcome, PipelineError> {
    compile_and_run_with_report_opts(src, config, max_steps, decode).map(|(o, _)| o)
}

/// [`compile_and_run_opts`] with explicit execution options too — the
/// fully-parameterized source entry point (`--dispatch`,
/// `--no-inline-cache`, `--no-renumber`, `--no-fuse`).
///
/// # Errors
///
/// Returns compilation or execution failures.
pub fn compile_and_run_vm(
    src: &str,
    config: CompilerConfig,
    max_steps: u64,
    decode: DecodeOptions,
    exec: ExecOptions,
) -> Result<RunOutcome, PipelineError> {
    compile_and_run_with_report_vm(src, config, max_steps, decode, exec).map(|(o, _)| o)
}

/// [`compile_and_run`], also returning the backend's per-pass statistics.
///
/// # Errors
///
/// Returns compilation or execution failures.
pub fn compile_and_run_with_report(
    src: &str,
    config: CompilerConfig,
    max_steps: u64,
) -> Result<(RunOutcome, Option<PipelineReport>), PipelineError> {
    compile_and_run_with_report_opts(src, config, max_steps, DecodeOptions::default())
}

/// [`compile_and_run_with_report`] with explicit decode options.
///
/// # Errors
///
/// Returns compilation or execution failures.
pub fn compile_and_run_with_report_opts(
    src: &str,
    config: CompilerConfig,
    max_steps: u64,
    decode: DecodeOptions,
) -> Result<(RunOutcome, Option<PipelineReport>), PipelineError> {
    compile_and_run_with_report_vm(src, config, max_steps, decode, ExecOptions::default())
}

/// [`compile_and_run_with_report_opts`] with explicit execution options.
///
/// # Errors
///
/// Returns compilation or execution failures.
pub fn compile_and_run_with_report_vm(
    src: &str,
    config: CompilerConfig,
    max_steps: u64,
    decode: DecodeOptions,
    exec: ExecOptions,
) -> Result<(RunOutcome, Option<PipelineReport>), PipelineError> {
    let (program, report) = compile_with_report(src, config)?;
    let outcome =
        lssa_vm::run_program_opts(&program, "main", max_steps, decode, exec).map_err(|e| {
            PipelineError {
                stage: "execution",
                message: e.to_string(),
                vm: Some(e),
            }
        })?;
    Ok((outcome, report))
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
inductive List := Nil | Cons(h, t)
def build(n) := if n == 0 then Nil else Cons(n, build(n - 1))
def sum(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => h + sum(t)
  end
def main() := sum(build(50))
"#;

    #[test]
    fn all_configs_agree() {
        let configs = [
            CompilerConfig::leanc(),
            CompilerConfig::mlir(),
            CompilerConfig::rgn_only(),
            CompilerConfig::none(),
        ];
        for c in configs {
            let out = compile_and_run(SRC, c, 10_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", c.label()));
            assert_eq!(out.rendered, "1275", "{}", c.label());
            assert_eq!(out.stats.heap.live, 0, "{}: leak", c.label());
        }
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(CompilerConfig::leanc().label(), "simplified/leanc");
        assert_eq!(
            CompilerConfig::mlir().label(),
            "simplified/mlir+rgn+generic"
        );
        assert_eq!(CompilerConfig::none().label(), "raw/mlir");
    }

    #[test]
    fn parse_errors_reported() {
        let e = compile("def !", CompilerConfig::mlir()).unwrap_err();
        assert_eq!(e.stage, "parse");
    }

    #[test]
    fn wellformedness_errors_reported() {
        // Over/under application of known functions is handled (pap), so a
        // mis-arity call compiles; a reference to an unknown builtin is the
        // genuinely ill-formed case.
        let e = compile("def f() := @nosuch(1)", CompilerConfig::mlir()).unwrap_err();
        assert_eq!(e.stage, "wellformedness");
    }

    #[test]
    fn fixed_config_labels_do_not_allocate() {
        for config in [
            CompilerConfig::leanc(),
            CompilerConfig::mlir(),
            CompilerConfig::rgn_only(),
            CompilerConfig::none(),
        ] {
            assert!(
                matches!(config.label(), Cow::Borrowed(_)),
                "{}: label should be static",
                config.label()
            );
        }
    }

    #[test]
    fn compile_batch_preserves_order_and_merges_reports() {
        let sources = [SRC, "def !", "def main() := 6 * 7", SRC];
        for jobs in [1, 4] {
            let (results, report) = compile_batch(&sources, CompilerConfig::mlir(), jobs);
            assert_eq!(results.len(), 4, "jobs={jobs}");
            assert!(results[0].is_ok() && results[2].is_ok() && results[3].is_ok());
            assert_eq!(results[1].as_ref().unwrap_err().stage, "parse");
            // The merged report folds every successful compilation's phases.
            let rgn_opt = report
                .phases
                .iter()
                .find(|p| p.pipeline == "rgn-opt")
                .expect("merged report keeps backend phases");
            assert!(rgn_opt.passes.iter().all(|s| s.runs >= 1));
        }
    }

    #[test]
    fn compile_batch_of_nothing_is_empty() {
        let (results, report) = compile_batch(&[] as &[&str], CompilerConfig::mlir(), 2);
        assert!(results.is_empty());
        assert!(report.phases.is_empty());
    }

    #[test]
    fn reports_flow_through_the_mlir_backend_only() {
        let (_, report) = compile_with_report(SRC, CompilerConfig::mlir()).unwrap();
        let report = report.expect("mlir backend must report statistics");
        assert!(report.phases.iter().any(|p| p.pipeline == "rgn-opt"));
        let (_, report) = compile_with_report(SRC, CompilerConfig::leanc()).unwrap();
        assert!(report.is_none(), "baseline has no pass pipeline");
    }
}
