//! The `lssa` command-line compiler driver.
//!
//! ```text
//! lssa run <file> [--backend leanc|mlir|rgn-only|none] [--pass-stats] [--vm-stats]
//!                 [--no-fuse] [--no-renumber] [--no-inline-cache] [--no-rc-opt]
//!                 [--dispatch match|threaded] [--print-ir-after-all]
//!                 [--step-budget N] [--heap-budget BYTES] [--deadline-ms MS]
//! lssa check <file>... [--format human|json]
//! lssa lint <file>... [--format human|json]
//! lssa fmt <file>... [--write | --check]
//! lssa dump <file> [--stage lp|rgn|opt|cfg]
//! lssa diff <file>
//! lssa bench <name>|all|<file.lssa> [--scale quick|test|bench|stress] [--no-fuse] [--json]
//!                 [--check] [--tolerance PCT] [--out FILE]
//! lssa bench --diff <old.json> <new.json>
//! ```
//!
//! Files ending in `.lssa` are parsed by the S-expression text frontend
//! (`lssa-syntax`); anything else uses the built-in surface language. The
//! text frontend reports problems as structured diagnostics with stable
//! codes and source spans — `check` prints them (human-readable by default,
//! one JSON object per line with `--format json`) and exits non-zero when
//! any are found; `run`/`dump`/`diff`/`bench` on a `.lssa` file report the
//! *same* codes on the same defects, because the `E01xx` wellformedness
//! codes are shared with the AST-level checker.
//!
//! `lint` accepts what `check` accepts and reports `E02xx` hygiene
//! findings in the same renderings: source-level lints (dead join points,
//! unused parameters, unreachable case arms, shadowed join labels) and the
//! RC-linearity verdicts of the IR analysis framework (`error[E0201]` for
//! a proven inc/dec imbalance, `warning[E0202]` for an unprovable one).
//! It exits non-zero only when an *error*-severity finding is present —
//! warnings alone leave the exit code at zero, so `lint` can gate CI
//! without legislating style.
//!
//! `fmt` reprints a `.lssa` file in canonical form to stdout; `--write`
//! rewrites the file in place, `--check` exits non-zero when the file is not
//! already canonical (CI drift detection). Formatting is idempotent and
//! round-trips the AST exactly.
//!
//! `--pass-stats` prints the backend's per-pass statistics table (runs,
//! changed flag, live-op counts before/after, wall time, per named
//! pipeline) after the program's result; `--vm-stats` prints the run-side
//! mirror — the VM's per-opcode-class table (executed counts, heap
//! allocations, frame-pool behaviour, max frame depth, wall time),
//! including the fused-superinstruction rows. `--no-fuse` disables the
//! decode-time superinstruction fusion pass, `--no-renumber` the
//! decode-time register compaction, `--no-inline-cache` the per-call-site
//! target caches, `--no-rc-opt` the compile-time reference-count
//! optimization pass, and `--dispatch match` falls back from the threaded
//! function-pointer dispatch loop to the classic match loop — one flag per
//! knob, for ablation measurements. `--print-ir-after-all` dumps the
//! module to stderr after every pass, MLIR-style.
//!
//! `run` executes under resource governance (see `lssa_driver::jobs`):
//! `--step-budget N` caps executed instructions, `--heap-budget BYTES`
//! caps live heap bytes, `--deadline-ms MS` sets a wall-clock deadline.
//! A run that exhausts any budget exits with code **3** (success is 0,
//! all other errors 1), so callers can tell "the program is wrong" from
//! "the program was stopped".
//!
//! `bench --json` measures the selected workloads under every knob
//! configuration (see `lssa_driver::benchjson`) and writes
//! machine-readable records to `BENCH_<scale>.json` (or `--out FILE`) —
//! the committed perf-trajectory baseline. `bench --check` re-measures
//! and compares against that committed file instead of overwriting it:
//! instruction counts must match exactly, wall time may regress by at
//! most `--tolerance PCT` (default 20), and any regression exits
//! non-zero. `bench --diff <old.json> <new.json>` measures nothing: it
//! prints the per-workload, per-config delta table between two baseline
//! files, annotating wall-time changes inside a ±5% noise floor as
//! `~noise` (the counter columns are deterministic, so any delta there
//! is a real change).

use lssa_driver::pipelines::{
    compile_and_run_ast_vm, compile_and_run_with_report_vm, compile_ast_with_report, frontend,
    frontend_ast, Backend, CompilerConfig,
};
use lssa_driver::workloads::{all, by_name, Scale, Workload};
use lssa_lambda::ast::Program;
use lssa_vm::{DecodeOptions, DispatchMode, ExecOptions, JobLimits};
use std::process::ExitCode;
use std::time::Duration;

const MAX_STEPS: u64 = 2_000_000_000;

/// Exit code for a run that exhausted a resource budget (step, heap,
/// depth, deadline, cancellation) rather than failing on its own merits.
/// 0 = success, 1 = any other error, 3 = resource exhaustion.
const EXIT_RESOURCE: u8 = 3;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!(
                "  lssa run <file> [--backend leanc|mlir|rgn-only|none] [--pass-stats] [--vm-stats] [--no-fuse] [--no-renumber] [--no-inline-cache] [--no-rc-opt] [--dispatch match|threaded] [--print-ir-after-all] [--step-budget N] [--heap-budget BYTES] [--deadline-ms MS]"
            );
            eprintln!("  lssa check <file>... [--format human|json]");
            eprintln!("  lssa lint <file>... [--format human|json]");
            eprintln!("  lssa fmt <file>... [--write | --check]");
            eprintln!("  lssa dump <file> [--stage lambda|lp|rgn|opt|cfg]");
            eprintln!("  lssa diff <file>");
            eprintln!(
                "  lssa bench <name>|all|<file.lssa> [--scale quick|test|bench|stress] [--no-fuse] [--json] [--check] [--tolerance PCT] [--runs N] [--out FILE]"
            );
            eprintln!("  lssa bench --diff <old.json> <new.json>");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn decode_options(args: &[String]) -> DecodeOptions {
    // The two decode knobs are orthogonal: `--no-fuse` leaves renumbering
    // on, and vice versa.
    DecodeOptions::fused()
        .with_fuse(!has_flag(args, "--no-fuse"))
        .with_renumber(!has_flag(args, "--no-renumber"))
}

fn exec_options(args: &[String]) -> Result<ExecOptions, String> {
    let dispatch = match flag_value(args, "--dispatch") {
        None => DispatchMode::default(),
        Some(s) => DispatchMode::parse(s).ok_or_else(|| format!("unknown dispatch mode `{s}`"))?,
    };
    let mut limits = JobLimits::default();
    if let Some(v) = flag_value(args, "--step-budget") {
        let steps = v
            .parse::<u64>()
            .map_err(|_| format!("invalid --step-budget `{v}`"))?;
        limits = limits.with_steps(steps);
    }
    if let Some(v) = flag_value(args, "--heap-budget") {
        let bytes = v
            .parse::<u64>()
            .map_err(|_| format!("invalid --heap-budget `{v}`"))?;
        limits = limits.with_heap_bytes(bytes);
    }
    if let Some(v) = flag_value(args, "--deadline-ms") {
        let ms = v
            .parse::<u64>()
            .map_err(|_| format!("invalid --deadline-ms `{v}`"))?;
        limits = limits.with_deadline(Some(Duration::from_millis(ms)));
    }
    Ok(ExecOptions::default()
        .with_dispatch(dispatch)
        .with_inline_cache(!has_flag(args, "--no-inline-cache"))
        .with_limits(limits))
}

fn config_of(name: &str) -> Result<CompilerConfig, String> {
    match name {
        "leanc" => Ok(CompilerConfig::leanc()),
        "mlir" => Ok(CompilerConfig::mlir()),
        "rgn-only" => Ok(CompilerConfig::rgn_only()),
        "none" => Ok(CompilerConfig::none()),
        other => Err(format!("unknown backend `{other}`")),
    }
}

/// Whether `file` should go through the `.lssa` text frontend.
fn is_lssa(file: &str) -> bool {
    file.ends_with(".lssa")
}

/// Parses a `.lssa` source strictly. On any diagnostic (syntax *or*
/// wellformedness — same `E01xx` codes as `lssa check`), renders them
/// human-readably to stderr and yields the failure exit code.
fn load_lssa(file: &str, src: &str) -> Result<Program, ExitCode> {
    match lssa_syntax::parse_program(src) {
        Ok(p) => Ok(p),
        Err(diags) => {
            eprint!(
                "{}",
                lssa_syntax::render_all(&diags, file, src, lssa_syntax::RenderFormat::Human)
            );
            Err(ExitCode::FAILURE)
        }
    }
}

/// The non-flag file arguments after the verb, skipping flag values.
fn file_args(args: &[String]) -> Vec<&str> {
    let mut files = Vec::new();
    let mut i = 1;
    while i < args.len() {
        let a = args[i].as_str();
        if a == "--format" || a == "--out" {
            i += 2;
            continue;
        }
        if !a.starts_with("--") {
            files.push(a);
        }
        i += 1;
    }
    files
}

#[allow(clippy::too_many_lines)]
fn run(args: &[String]) -> Result<ExitCode, String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "run" => {
            let file = args.get(1).ok_or("missing file")?;
            let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let mut config = config_of(flag_value(args, "--backend").unwrap_or("mlir"))?;
            let want_stats = has_flag(args, "--pass-stats");
            let want_vm_stats = has_flag(args, "--vm-stats");
            let decode = decode_options(args);
            let exec = exec_options(args)?;
            if has_flag(args, "--print-ir-after-all") {
                match config.backend {
                    Backend::Mlir(mut opts) => {
                        opts.print_ir_after_all = true;
                        config.backend = Backend::Mlir(opts);
                    }
                    Backend::Baseline => {
                        return Err(
                            "--print-ir-after-all requires an MLIR-style backend (not leanc)"
                                .to_string(),
                        )
                    }
                }
            }
            if has_flag(args, "--no-rc-opt") {
                match config.backend {
                    Backend::Mlir(mut opts) => {
                        opts.rc_opt = false;
                        config.backend = Backend::Mlir(opts);
                    }
                    Backend::Baseline => {
                        return Err(
                            "--no-rc-opt requires an MLIR-style backend (not leanc)".to_string()
                        )
                    }
                }
            }
            // `--pass-stats` doubles as the verification mode: the
            // RC-linearity checker runs after rc-opt and every later pass,
            // and its cost shows up as a `verify-rc-us` counter.
            if want_stats {
                if let Backend::Mlir(mut opts) = config.backend {
                    opts.verify_rc = true;
                    config.backend = Backend::Mlir(opts);
                }
            }
            let (out, report) = if is_lssa(file) {
                let program = match load_lssa(file, &src) {
                    Ok(p) => p,
                    Err(code) => return Ok(code),
                };
                let (compiled, report) =
                    compile_ast_with_report(&program, config).map_err(|e| e.to_string())?;
                let out =
                    match lssa_vm::run_program_opts(&compiled, "main", MAX_STEPS, decode, exec) {
                        Ok(out) => out,
                        // A budget/deadline/cancellation abort is a governed
                        // outcome, not a usage error: report it plainly and exit
                        // with the documented resource code.
                        Err(e) if e.kind.is_resource() => {
                            eprintln!("execution error: {e}");
                            return Ok(ExitCode::from(EXIT_RESOURCE));
                        }
                        Err(e) => return Err(format!("execution error: {e}")),
                    };
                (out, report)
            } else {
                match compile_and_run_with_report_vm(&src, config, MAX_STEPS, decode, exec) {
                    Ok(pair) => pair,
                    Err(e) if e.vm_kind().is_some_and(|k| k.is_resource()) => {
                        eprintln!("{e}");
                        return Ok(ExitCode::from(EXIT_RESOURCE));
                    }
                    Err(e) => return Err(e.to_string()),
                }
            };
            println!("{}", out.rendered);
            eprintln!(
                "-- {} instructions, {} calls, peak {} live objects",
                out.stats.instructions, out.stats.calls, out.stats.heap.peak_live
            );
            if want_stats {
                match report {
                    Some(report) => {
                        print!("{}", report.render_table());
                        println!(
                            "total: {:.3}ms across {} pipelines",
                            report.total_duration().as_secs_f64() * 1e3,
                            report.phases.len()
                        );
                    }
                    None => eprintln!("-- no pass statistics: the leanc backend has no pipeline"),
                }
            }
            if want_vm_stats {
                print!("{}", out.vm_stats.render_table());
            }
            Ok(ExitCode::SUCCESS)
        }
        "check" => {
            let files = file_args(args);
            if files.is_empty() {
                return Err("missing file".to_string());
            }
            let format = match flag_value(args, "--format") {
                None | Some("human") => lssa_syntax::RenderFormat::Human,
                Some("json") => lssa_syntax::RenderFormat::Json,
                Some(other) => return Err(format!("unknown format `{other}`")),
            };
            let mut failed = false;
            for file in files {
                let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
                let diags = lssa_syntax::check_source(&src);
                if !diags.is_empty() {
                    failed = true;
                    print!("{}", lssa_syntax::render_all(&diags, file, &src, format));
                }
            }
            Ok(if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "lint" => {
            let files = file_args(args);
            if files.is_empty() {
                return Err("missing file".to_string());
            }
            let format = match flag_value(args, "--format") {
                None | Some("human") => lssa_syntax::RenderFormat::Human,
                Some("json") => lssa_syntax::RenderFormat::Json,
                Some(other) => return Err(format!("unknown format `{other}`")),
            };
            let mut failed = false;
            for file in files {
                let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
                let diags = lssa_driver::lint::lint_source(&src);
                failed |= lssa_driver::lint::has_errors(&diags);
                if !diags.is_empty() {
                    print!("{}", lssa_syntax::render_all(&diags, file, &src, format));
                }
            }
            Ok(if failed {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "fmt" => {
            let files = file_args(args);
            if files.is_empty() {
                return Err("missing file".to_string());
            }
            let write = has_flag(args, "--write");
            let check = has_flag(args, "--check");
            if write && check {
                return Err("--write and --check are mutually exclusive".to_string());
            }
            let mut drifted = false;
            for file in files {
                let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
                let formatted = match lssa_syntax::format_source(&src) {
                    Ok(f) => f,
                    Err(diags) => {
                        eprint!(
                            "{}",
                            lssa_syntax::render_all(
                                &diags,
                                file,
                                &src,
                                lssa_syntax::RenderFormat::Human
                            )
                        );
                        return Ok(ExitCode::FAILURE);
                    }
                };
                if write {
                    if formatted != src {
                        std::fs::write(file, &formatted).map_err(|e| format!("{file}: {e}"))?;
                        eprintln!("-- rewrote {file}");
                    }
                } else if check {
                    if formatted != src {
                        eprintln!("-- {file}: not canonically formatted (run `lssa fmt --write`)");
                        drifted = true;
                    }
                } else {
                    print!("{formatted}");
                }
            }
            Ok(if drifted {
                ExitCode::FAILURE
            } else {
                ExitCode::SUCCESS
            })
        }
        "dump" => {
            let file = args.get(1).ok_or("missing file")?;
            let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let stage = flag_value(args, "--stage").unwrap_or("cfg");
            let rc = if is_lssa(file) {
                let program = match load_lssa(file, &src) {
                    Ok(p) => p,
                    Err(code) => return Ok(code),
                };
                frontend_ast(&program, CompilerConfig::mlir()).map_err(|e| e.to_string())?
            } else {
                frontend(&src, CompilerConfig::mlir()).map_err(|e| e.to_string())?
            };
            match stage {
                "lambda" => {
                    for f in &rc.fns {
                        println!("{f}");
                    }
                }
                "lp" => {
                    let m = lssa_core::lp::from_lambda::lower_program(&rc);
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                "rgn" => {
                    let mut m = lssa_core::lp::from_lambda::lower_program(&rc);
                    lssa_core::rgn::from_lp::lower_module(&mut m);
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                "opt" => {
                    let mut m = lssa_core::lp::from_lambda::lower_program(&rc);
                    lssa_core::rgn::from_lp::lower_module(&mut m);
                    // The exact pipeline `compile` runs, so the dump shows
                    // the IR the CFG lowering actually receives.
                    lssa_core::pipeline::rgn_opt_pipeline(lssa_core::PipelineOptions::full())
                        .run(&mut m);
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                "cfg" => {
                    let m = lssa_core::pipeline::compile(&rc, lssa_core::PipelineOptions::full());
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                other => return Err(format!("unknown stage `{other}`")),
            }
            Ok(ExitCode::SUCCESS)
        }
        "diff" => {
            let file = args.get(1).ok_or("missing file")?;
            let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let r = if is_lssa(file) {
                let program = match load_lssa(file, &src) {
                    Ok(p) => p,
                    Err(code) => return Ok(code),
                };
                lssa_driver::diff::run_differential_ast(file, &program, MAX_STEPS)
            } else {
                lssa_driver::diff::run_differential(file, &src, MAX_STEPS)
            };
            match r.failure {
                None => {
                    println!("PASS: all pipelines agree on {:?}", r.rendered.unwrap());
                    Ok(ExitCode::SUCCESS)
                }
                Some(f) => Err(format!("differential mismatch: {f}")),
            }
        }
        "bench" => {
            if let Some(i) = args.iter().position(|a| a == "--diff") {
                // `bench --diff old.json new.json`: no measuring, just the
                // delta table between two committed baseline files.
                let old_path = args
                    .get(i + 1)
                    .ok_or("--diff needs <old.json> <new.json>")?;
                let new_path = args
                    .get(i + 2)
                    .ok_or("--diff needs <old.json> <new.json>")?;
                let mut rows = Vec::new();
                for path in [old_path, new_path] {
                    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
                    rows.push(
                        lssa_driver::benchjson::parse_baseline(&text)
                            .map_err(|e| format!("{path}: {e}"))?,
                    );
                }
                print!(
                    "{}",
                    lssa_driver::benchjson::render_diff(&rows[0], &rows[1])
                );
                return Ok(ExitCode::SUCCESS);
            }
            let name = args.get(1).ok_or("missing benchmark name")?;
            if is_lssa(name) {
                // A `.lssa` file: time it across all configurations, like a
                // named workload (but ineligible for the committed JSON
                // baseline, which is keyed by workload name and scale).
                if has_flag(args, "--json") {
                    return Err("--json measures the built-in workloads only".to_string());
                }
                let src = std::fs::read_to_string(name).map_err(|e| format!("{name}: {e}"))?;
                let program = match load_lssa(name, &src) {
                    Ok(p) => p,
                    Err(code) => return Ok(code),
                };
                let decode = decode_options(args);
                let exec = exec_options(args)?;
                for config in lssa_driver::diff::configs() {
                    let start = std::time::Instant::now();
                    let out = compile_and_run_ast_vm(&program, config, MAX_STEPS, decode, exec)
                        .map_err(|e| e.to_string())?;
                    let elapsed = start.elapsed();
                    println!(
                        "{:20} {:28} {:>12?} {:>14} instrs  result={}",
                        name,
                        config.label(),
                        elapsed,
                        out.stats.instructions,
                        out.rendered
                    );
                }
                return Ok(ExitCode::SUCCESS);
            }
            let (scale, scale_label) = match flag_value(args, "--scale").unwrap_or("test") {
                // `quick` is the CI alias for the smallest inputs.
                "test" | "quick" => (Scale::Test, "test"),
                "bench" => (Scale::Bench, "bench"),
                "stress" => (Scale::Stress, "stress"),
                other => return Err(format!("unknown scale `{other}`")),
            };
            let selected: Vec<Workload> = if name == "all" {
                all(scale)
            } else {
                vec![by_name(name, scale).ok_or_else(|| format!("unknown benchmark `{name}`"))?]
            };
            let want_json = has_flag(args, "--json");
            let want_check = has_flag(args, "--check");
            if want_json && want_check {
                return Err("--json (regenerate) and --check (compare) are exclusive".to_string());
            }
            if want_json || want_check {
                if has_flag(args, "--no-fuse") {
                    return Err(format!(
                        "--{} always measures every knob configuration; drop --no-fuse",
                        if want_json { "json" } else { "check" }
                    ));
                }
                // The default path is the committed full-suite baseline;
                // never let a single-workload run clobber it silently (and
                // fail before spending minutes measuring).
                let path = match flag_value(args, "--out") {
                    Some(out) => out.to_string(),
                    None if name == "all" || want_check => {
                        lssa_driver::benchjson::default_path(scale_label)
                    }
                    None => {
                        return Err(format!(
                            "bench {name} --json would overwrite the full-suite \
                             {}; pass --out FILE (or bench all)",
                            lssa_driver::benchjson::default_path(scale_label)
                        ))
                    }
                };
                // Read the baseline up front: fail before spending minutes
                // measuring if it is missing or malformed.
                let baseline = if want_check {
                    let text =
                        std::fs::read_to_string(&path).map_err(|e| format!("{path}: {e}"))?;
                    let mut rows = lssa_driver::benchjson::parse_baseline(&text)
                        .map_err(|e| format!("{path}: {e}"))?;
                    // A partial run only checks the selected workloads.
                    rows.retain(|b| selected.iter().any(|w| w.name == b.name));
                    Some(rows)
                } else {
                    None
                };
                // Interleaved rounds per workload; raise on a noisy
                // machine so every config's best time catches a quiet
                // window (the row keeps the minimum, see `benchjson`).
                let bench_runs = match flag_value(args, "--runs") {
                    None => 5,
                    Some(r) => match r.parse::<usize>() {
                        Ok(n) if n >= 1 => n,
                        _ => return Err(format!("bad --runs `{r}`")),
                    },
                };
                let records = lssa_driver::benchjson::run_suite(&selected, bench_runs, MAX_STEPS);
                for r in &records {
                    let full = r.row("full").expect("full row");
                    let base = r.row("base").expect("base row");
                    println!(
                        "{:20} base {:>9.3}ms   full {:>9.3}ms   speedup {:.3}x   \
                         ({:>4.1}% fused, {:.1}% cache hits)",
                        r.name,
                        base.wall_ms,
                        full.wall_ms,
                        r.speedup(),
                        full.fused_share * 100.0,
                        100.0 * full.cache_hits as f64
                            / (full.cache_hits + full.cache_misses).max(1) as f64,
                    );
                }
                println!(
                    "{:20} geomean speedup {:.3}x",
                    "aggregate",
                    lssa_driver::benchjson::geomean_speedup(&records)
                );
                if let Some(baseline) = baseline {
                    let tolerance = match flag_value(args, "--tolerance") {
                        None => 20.0,
                        Some(t) => t
                            .parse::<f64>()
                            .map_err(|_| format!("bad --tolerance `{t}`"))?,
                    };
                    let outcome =
                        lssa_driver::benchjson::check_against(&baseline, &records, tolerance);
                    for f in &outcome.failures {
                        eprintln!("REGRESSION: {f}");
                    }
                    eprintln!(
                        "-- checked {} rows against {path} (tolerance {tolerance}%): {}",
                        outcome.compared,
                        if outcome.failures.is_empty() {
                            "ok".to_string()
                        } else {
                            format!("{} regression(s)", outcome.failures.len())
                        }
                    );
                    return Ok(if outcome.failures.is_empty() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::FAILURE
                    });
                }
                let json = lssa_driver::benchjson::render_json(scale_label, bench_runs, &records);
                std::fs::write(&path, json).map_err(|e| format!("{path}: {e}"))?;
                eprintln!("-- wrote {path}");
                return Ok(ExitCode::SUCCESS);
            }
            let decode = decode_options(args);
            let exec = exec_options(args)?;
            for w in &selected {
                for config in lssa_driver::diff::configs() {
                    let start = std::time::Instant::now();
                    let out = lssa_driver::pipelines::compile_and_run_vm(
                        &w.src, config, MAX_STEPS, decode, exec,
                    )
                    .map_err(|e| e.to_string())?;
                    let elapsed = start.elapsed();
                    println!(
                        "{:20} {:28} {:>12?} {:>14} instrs  result={}",
                        w.name,
                        config.label(),
                        elapsed,
                        out.stats.instructions,
                        out.rendered
                    );
                }
            }
            Ok(ExitCode::SUCCESS)
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
