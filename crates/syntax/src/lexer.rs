//! The `.lssa` lexer: S-expression tokens, every one carrying its byte span.
//!
//! Token classes are deliberately small — parentheses, atoms, and string
//! literals. `;` starts a comment running to end of line. Atoms are maximal
//! runs of characters that are not whitespace, parentheses, quotes, or `;`;
//! the parser decides whether an atom is a variable (`x12`), a join label
//! (`j3`), an integer, a keyword (`def`, `let`, …), or a function name.

use crate::diag::{Diagnostic, E_LEX_CHAR, E_LEX_STRING};
use crate::span::Span;

/// What kind of token this is.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// A bare atom (identifier, number, keyword).
    Atom(String),
    /// A string literal, with escapes already decoded.
    Str(String),
}

/// One token with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token's class and payload.
    pub kind: TokenKind,
    /// Byte range in the source.
    pub span: Span,
}

/// Splits `src` into tokens. Lexical errors are collected (and the offending
/// bytes skipped) so one bad character does not hide later diagnostics.
pub fn lex(src: &str) -> (Vec<Token>, Vec<Diagnostic>) {
    let bytes = src.as_bytes();
    let mut tokens = Vec::new();
    let mut diags = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let b = bytes[i];
        match b {
            b' ' | b'\t' | b'\r' | b'\n' => i += 1,
            b';' => {
                while i < bytes.len() && bytes[i] != b'\n' {
                    i += 1;
                }
            }
            b'(' => {
                tokens.push(Token {
                    kind: TokenKind::LParen,
                    span: Span::new(i as u32, i as u32 + 1),
                });
                i += 1;
            }
            b')' => {
                tokens.push(Token {
                    kind: TokenKind::RParen,
                    span: Span::new(i as u32, i as u32 + 1),
                });
                i += 1;
            }
            b'"' => {
                let (len, result) = lex_string(&src[i..], i as u32);
                match result {
                    Ok(token) => tokens.push(token),
                    Err(d) => diags.push(d),
                }
                i += len;
            }
            _ if is_atom_byte(b) => {
                let start = i;
                while i < bytes.len() && is_atom_byte(bytes[i]) {
                    i += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Atom(src[start..i].to_string()),
                    span: Span::new(start as u32, i as u32),
                });
            }
            _ => {
                // A control byte or other character no token can start with.
                // Skip the whole (possibly multi-byte) character.
                let c = src[i..].chars().next().expect("in-bounds char");
                diags.push(Diagnostic::new(
                    E_LEX_CHAR,
                    format!("unexpected character {:?}", c),
                    Span::new(i as u32, (i + c.len_utf8()) as u32),
                ));
                i += c.len_utf8();
            }
        }
    }
    (tokens, diags)
}

/// Whether `b` can appear inside a bare atom.
fn is_atom_byte(b: u8) -> bool {
    !matches!(b, b' ' | b'\t' | b'\r' | b'\n' | b'(' | b')' | b'"' | b';')
        && (0x21..0x7f).contains(&b)
}

/// Lexes one string literal starting at `src[0] == '"'`. Returns the number
/// of bytes consumed and the token or a diagnostic.
///
/// On a bad escape the first error is recorded but scanning continues to the
/// closing quote, so the rest of the input still lexes token-aligned.
fn lex_string(src: &str, base: u32) -> (usize, Result<Token, Diagnostic>) {
    let bytes = src.as_bytes();
    debug_assert_eq!(bytes[0], b'"');
    let mut out = String::new();
    let mut err: Option<Diagnostic> = None;
    let mut i = 1usize;
    loop {
        let Some(&b) = bytes.get(i) else {
            let unterminated = Diagnostic::new(
                E_LEX_STRING,
                "unterminated string literal".to_string(),
                Span::new(base, base + i as u32),
            );
            return (i, Err(err.unwrap_or(unterminated)));
        };
        match b {
            b'"' => {
                i += 1;
                return (
                    i,
                    match err {
                        Some(e) => Err(e),
                        None => Ok(Token {
                            kind: TokenKind::Str(out),
                            span: Span::new(base, base + i as u32),
                        }),
                    },
                );
            }
            b'\\' => {
                let escape_start = i;
                i += 1;
                match bytes.get(i).copied() {
                    Some(b'"') => {
                        out.push('"');
                        i += 1;
                    }
                    Some(b'\\') => {
                        out.push('\\');
                        i += 1;
                    }
                    Some(b'n') => {
                        out.push('\n');
                        i += 1;
                    }
                    Some(b't') => {
                        out.push('\t');
                        i += 1;
                    }
                    Some(b'r') => {
                        out.push('\r');
                        i += 1;
                    }
                    Some(b'u') => {
                        // \u{HEX}
                        i += 1;
                        let ok = bytes.get(i) == Some(&b'{');
                        let close = src[i..].find('}').map(|off| i + off);
                        match (ok, close) {
                            (true, Some(close)) => {
                                let hex = &src[i + 1..close];
                                match u32::from_str_radix(hex, 16).ok().and_then(char::from_u32) {
                                    Some(c) => {
                                        out.push(c);
                                        i = close + 1;
                                    }
                                    None => {
                                        err.get_or_insert_with(|| {
                                            Diagnostic::new(
                                                E_LEX_STRING,
                                                format!("invalid unicode escape \\u{{{hex}}}"),
                                                Span::new(
                                                    base + escape_start as u32,
                                                    base + close as u32 + 1,
                                                ),
                                            )
                                        });
                                        i = close + 1;
                                    }
                                }
                            }
                            _ => {
                                err.get_or_insert_with(|| {
                                    Diagnostic::new(
                                        E_LEX_STRING,
                                        "malformed \\u{...} escape".to_string(),
                                        Span::new(base + escape_start as u32, base + i as u32),
                                    )
                                });
                            }
                        }
                    }
                    other => {
                        let len = other.map(|_| 2).unwrap_or(1);
                        err.get_or_insert_with(|| {
                            Diagnostic::new(
                                E_LEX_STRING,
                                "invalid escape sequence".to_string(),
                                Span::new(
                                    base + escape_start as u32,
                                    base + (escape_start + len) as u32,
                                ),
                            )
                        });
                        if other.is_some() {
                            i += 1;
                        }
                    }
                }
            }
            _ => {
                let c = src[i..].chars().next().expect("in-bounds char");
                out.push(c);
                i += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        let (tokens, diags) = lex(src);
        assert!(diags.is_empty(), "{diags:?}");
        tokens.into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn tokens_and_spans() {
        let (tokens, diags) = lex("(ret x0) ; trailing comment\n42");
        assert!(diags.is_empty());
        assert_eq!(tokens.len(), 5);
        assert_eq!(tokens[0].kind, TokenKind::LParen);
        assert_eq!(tokens[1].kind, TokenKind::Atom("ret".into()));
        assert_eq!(tokens[1].span, Span::new(1, 4));
        assert_eq!(tokens[2].kind, TokenKind::Atom("x0".into()));
        assert_eq!(tokens[3].kind, TokenKind::RParen);
        assert_eq!(tokens[4].kind, TokenKind::Atom("42".into()));
        assert_eq!(tokens[4].span, Span::new(28, 30));
    }

    #[test]
    fn strings_decode_escapes() {
        assert_eq!(
            kinds(r#""a\nb\t\"\\\u{3b1}""#),
            vec![TokenKind::Str("a\nb\t\"\\α".into())]
        );
    }

    #[test]
    fn unterminated_string_reported() {
        let (_, diags) = lex("\"abc");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, E_LEX_STRING);
        assert_eq!(diags[0].span, Some(Span::new(0, 4)));
    }

    #[test]
    fn bad_escape_reported() {
        let (_, diags) = lex(r#""a\q""#);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, E_LEX_STRING);
    }

    #[test]
    fn stray_control_character_reported_and_skipped() {
        let (tokens, diags) = lex("(ret \u{1} x0)");
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, E_LEX_CHAR);
        assert_eq!(tokens.len(), 4, "lexing continues after the bad byte");
    }

    #[test]
    fn negative_numbers_and_rich_atoms() {
        assert_eq!(
            kinds("-42 lean_nat_add else"),
            vec![
                TokenKind::Atom("-42".into()),
                TokenKind::Atom("lean_nat_add".into()),
                TokenKind::Atom("else".into()),
            ]
        );
    }
}
