//! Tests for alpha-equivalence and capture-avoiding renaming — the
//! machinery behind `simpcase` (common-branch fusion) and join-point
//! lambda lifting.

use lssa_lambda::ast::{build, Expr, Value};
use std::collections::HashMap;

fn lit(var: u32, v: i64, body: Expr) -> Expr {
    build::let_(var, Value::LitInt(v), body)
}

#[test]
fn alpha_eq_ignores_binder_names() {
    let a = lit(1, 7, build::ret(1));
    let b = lit(9, 7, build::ret(9));
    assert!(a.alpha_eq(&b));
}

#[test]
fn alpha_eq_distinguishes_values() {
    let a = lit(1, 7, build::ret(1));
    let b = lit(1, 8, build::ret(1));
    assert!(!a.alpha_eq(&b));
}

#[test]
fn alpha_eq_free_variables_must_match_exactly() {
    // ret x0 vs ret x1 with both free: different.
    assert!(!build::ret(0).alpha_eq(&build::ret(1)));
    assert!(build::ret(0).alpha_eq(&build::ret(0)));
}

#[test]
fn alpha_eq_respects_structure() {
    let a = build::case(0, vec![(0, build::ret(0))], None);
    let b = build::case(0, vec![(1, build::ret(0))], None);
    assert!(!a.alpha_eq(&b), "different tags");
    let c = build::case(0, vec![(0, build::ret(0))], Some(build::ret(0)));
    assert!(!a.alpha_eq(&c), "extra default arm");
}

#[test]
fn alpha_eq_join_points_modulo_labels() {
    let mk = |label: u32, param: u32| Expr::LetJoin {
        label,
        params: vec![param],
        jp_body: Box::new(build::ret(param)),
        body: Box::new(Expr::Jump {
            label,
            args: vec![0],
        }),
    };
    assert!(mk(0, 5).alpha_eq(&mk(3, 9)));
}

#[test]
fn alpha_eq_binder_mapping_does_not_leak() {
    // let x1 = 1; ret x1  vs  let x2 = 1; ret x1(free!) — not equal.
    let a = lit(1, 1, build::ret(1));
    let b = lit(2, 1, build::ret(1));
    assert!(!a.alpha_eq(&b));
}

#[test]
fn rename_free_renames_uses() {
    let e = build::let_(
        2,
        Value::Ctor {
            tag: 0,
            args: vec![0, 1],
        },
        build::ret(2),
    );
    let mut map = HashMap::new();
    map.insert(0u32, 10u32);
    let r = e.rename_free(&map);
    let fv = r.free_vars();
    assert!(fv.contains(&10));
    assert!(!fv.contains(&0));
    assert!(fv.contains(&1));
}

#[test]
fn rename_free_stops_at_binders() {
    // let x0 = 5; ret x0 — renaming x0 must not touch the bound occurrence.
    let e = lit(0, 5, build::ret(0));
    let mut map = HashMap::new();
    map.insert(0u32, 99u32);
    let r = e.rename_free(&map);
    assert_eq!(r, e, "bound x0 is untouchable");
}

#[test]
fn rename_free_in_join_bodies_respects_params() {
    let e = Expr::LetJoin {
        label: 0,
        params: vec![1],
        jp_body: Box::new(build::ret(1)),
        body: Box::new(Expr::Jump {
            label: 0,
            args: vec![0],
        }),
    };
    let mut map = HashMap::new();
    map.insert(1u32, 50u32); // x1 is a jp param: bound inside jp_body
    map.insert(0u32, 60u32); // x0 is free in the jump
    let r = e.rename_free(&map);
    match &r {
        Expr::LetJoin { jp_body, body, .. } => {
            assert_eq!(**jp_body, build::ret(1), "param occurrence untouched");
            assert_eq!(
                **body,
                Expr::Jump {
                    label: 0,
                    args: vec![60]
                }
            );
        }
        _ => panic!(),
    }
}

#[test]
fn rename_is_identity_for_disjoint_maps() {
    let e = lit(3, 9, build::case(3, vec![(0, build::ret(3))], None));
    let mut map = HashMap::new();
    map.insert(77u32, 88u32);
    assert_eq!(e.rename_free(&map), e);
}
