//! Structured diagnostics: stable codes, spans, notes, and two renderings —
//! human-readable lines and machine-readable JSON lines.
//!
//! Codes are stable across releases so tooling (and the `tests/corpus/bad`
//! goldens) can match on them:
//!
//! - `E00xx` — lexical / syntactic errors produced by the `.lssa` reader,
//! - `E01xx` — wellformedness violations, shared verbatim with the AST-level
//!   checker in [`lssa_lambda::wellformed`] (see its `codes` module), so
//!   `lssa check` and `lssa run` report identical codes for the same defect,
//! - `E02xx` — IR-level lint findings produced by `lssa lint` (RC-linearity
//!   verdicts from the `lssa-ir` analysis framework plus source-level
//!   hygiene checks). Unlike the other families these are mostly
//!   [`Severity::Warning`]: the program runs, but something is off.

use crate::span::{LineIndex, Span};
use std::fmt;

/// Lint: the RC-linearity checker proved an inc/dec imbalance — some path
/// leaks or double-releases a reference.
pub const E_LINT_RC_UNBALANCED: &str = "E0201";
/// Lint: the RC-linearity checker could not prove balance (aliasing or a
/// reference that escaped into a container) — reported, not asserted.
pub const E_LINT_RC_UNPROVABLE: &str = "E0202";
/// Lint: a join point is never jumped to.
pub const E_LINT_DEAD_JOIN: &str = "E0203";
/// Lint: a function parameter is never referenced.
pub const E_LINT_UNUSED_PARAM: &str = "E0204";
/// Lint: a `case` arm repeats an already-handled constructor tag.
pub const E_LINT_UNREACHABLE_ARM: &str = "E0205";
/// Lint: a `let`/`jp` rebinds a name already in scope, shadowing it.
pub const E_LINT_SHADOWED_BINDING: &str = "E0206";

/// How serious a [`Diagnostic`] is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// The input is rejected (or, for `E0201`, provably broken).
    Error,
    /// The input is accepted but suspicious; `lssa lint` reports it without
    /// failing the run.
    Warning,
}

impl Severity {
    /// The lowercase keyword used in both renderings.
    pub fn word(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// Lexical error: a character that cannot start any token.
pub const E_LEX_CHAR: &str = "E0001";
/// Lexical error: unterminated string literal or invalid escape.
pub const E_LEX_STRING: &str = "E0002";
/// Syntactic error: unbalanced parentheses / unexpected token.
pub const E_UNBALANCED: &str = "E0003";
/// Structural error: malformed special form (wrong head or shape).
pub const E_BAD_FORM: &str = "E0004";
/// Structural error: malformed literal, variable, or label token.
pub const E_BAD_TOKEN: &str = "E0005";

/// One reported defect: a stable code, a message, an optional source span,
/// and optional follow-up notes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-matchable code (`E0xxx`).
    pub code: &'static str,
    /// Error or warning (warnings come from `lssa lint`).
    pub severity: Severity,
    /// Human-readable description.
    pub message: String,
    /// Where in the source the defect sits, when known.
    pub span: Option<Span>,
    /// Additional context lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// An error diagnostic with a span.
    pub fn new(code: &'static str, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span: Some(span),
            notes: Vec::new(),
        }
    }

    /// An error diagnostic without location information.
    pub fn spanless(code: &'static str, message: impl Into<String>) -> Diagnostic {
        Diagnostic {
            code,
            severity: Severity::Error,
            message: message.into(),
            span: None,
            notes: Vec::new(),
        }
    }

    /// A warning diagnostic with a span.
    pub fn warning(code: &'static str, message: impl Into<String>, span: Span) -> Diagnostic {
        Diagnostic {
            severity: Severity::Warning,
            ..Diagnostic::new(code, message, span)
        }
    }

    /// Adds a note.
    #[must_use]
    pub fn with_note(mut self, note: impl Into<String>) -> Diagnostic {
        self.notes.push(note.into());
        self
    }

    /// Converts an AST-level wellformedness error. The span is unknown (the
    /// AST carries no locations); the function name becomes a note.
    pub fn from_wf(e: &lssa_lambda::wellformed::WfError) -> Diagnostic {
        Diagnostic::spanless(e.code, e.message.clone())
            .with_note(format!("in function @{}", e.func))
    }

    /// Renders `file:line:col: error[CODE]: message` plus indented notes.
    pub fn render_human(&self, file: &str, index: &LineIndex) -> String {
        use fmt::Write;
        let mut out = String::new();
        match self.span {
            Some(span) => {
                let (line, col) = index.line_col(span.start);
                let _ = write!(out, "{file}:{line}:{col}: ");
            }
            None => {
                let _ = write!(out, "{file}: ");
            }
        }
        let _ = write!(
            out,
            "{}[{}]: {}",
            self.severity.word(),
            self.code,
            self.message
        );
        for note in &self.notes {
            let _ = write!(out, "\n  note: {note}");
        }
        out
    }

    /// Renders one JSON object (a single line, no trailing newline):
    ///
    /// ```json
    /// {"code":"E0101","severity":"error","message":"...","file":"f.lssa",
    ///  "span":{"start":9,"end":11,"line":2,"col":3},"notes":[]}
    /// ```
    ///
    /// `span` is `null` when the location is unknown.
    pub fn render_json(&self, file: &str, index: &LineIndex) -> String {
        use fmt::Write;
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"code\":\"{}\",\"severity\":\"{}\",\"message\":\"{}\",\"file\":\"{}\",\"span\":",
            self.code,
            self.severity.word(),
            escape_json(&self.message),
            escape_json(file)
        );
        match self.span {
            Some(span) => {
                let (line, col) = index.line_col(span.start);
                let _ = write!(
                    out,
                    "{{\"start\":{},\"end\":{},\"line\":{line},\"col\":{col}}}",
                    span.start, span.end
                );
            }
            None => out.push_str("null"),
        }
        out.push_str(",\"notes\":[");
        for (i, note) in self.notes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\"", escape_json(note));
        }
        out.push_str("]}");
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}[{}]: {}",
            self.severity.word(),
            self.code,
            self.message
        )
    }
}

/// Renders every diagnostic in `format`, one per line.
pub fn render_all(diags: &[Diagnostic], file: &str, src: &str, format: RenderFormat) -> String {
    let index = LineIndex::new(src);
    let mut out = String::new();
    for d in diags {
        let rendered = match format {
            RenderFormat::Human => d.render_human(file, &index),
            RenderFormat::Json => d.render_json(file, &index),
        };
        out.push_str(&rendered);
        out.push('\n');
    }
    out
}

/// Output style for [`render_all`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RenderFormat {
    /// `file:line:col: error[CODE]: message` (+ notes).
    Human,
    /// One JSON object per line.
    Json,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn human_rendering_includes_location_and_notes() {
        let src = "hello\nworld";
        let idx = LineIndex::new(src);
        let d = Diagnostic::new(E_BAD_FORM, "broken", Span::new(6, 11)).with_note("context");
        assert_eq!(
            d.render_human("f.lssa", &idx),
            "f.lssa:2:1: error[E0004]: broken\n  note: context"
        );
        let d = Diagnostic::spanless(E_BAD_FORM, "broken");
        assert_eq!(
            d.render_human("f.lssa", &idx),
            "f.lssa: error[E0004]: broken"
        );
    }

    #[test]
    fn json_rendering_escapes_and_locates() {
        let src = "ab\ncd";
        let idx = LineIndex::new(src);
        let d = Diagnostic::new(E_BAD_TOKEN, "bad \"tok\"\n", Span::new(3, 5)).with_note("n1");
        let json = d.render_json("a\\b.lssa", &idx);
        assert_eq!(
            json,
            "{\"code\":\"E0005\",\"severity\":\"error\",\"message\":\"bad \\\"tok\\\"\\n\",\
             \"file\":\"a\\\\b.lssa\",\
             \"span\":{\"start\":3,\"end\":5,\"line\":2,\"col\":1},\"notes\":[\"n1\"]}"
        );
        let d = Diagnostic::spanless(E_BAD_TOKEN, "x");
        assert!(d.render_json("f", &idx).contains("\"span\":null"));
    }

    #[test]
    fn warnings_render_with_their_severity() {
        let idx = LineIndex::new("xy");
        let d = Diagnostic::warning(E_LINT_UNUSED_PARAM, "unused parameter x", Span::new(0, 1));
        assert_eq!(
            d.render_human("f.lssa", &idx),
            "f.lssa:1:1: warning[E0204]: unused parameter x"
        );
        assert_eq!(d.to_string(), "warning[E0204]: unused parameter x");
        assert!(d
            .render_json("f.lssa", &idx)
            .contains("\"severity\":\"warning\""));
    }

    #[test]
    fn render_all_is_line_oriented() {
        let diags = vec![
            Diagnostic::spanless(E_BAD_FORM, "one"),
            Diagnostic::spanless(E_BAD_TOKEN, "two"),
        ];
        let text = render_all(&diags, "f", "", RenderFormat::Json);
        assert_eq!(text.lines().count(), 2);
        assert!(text.lines().all(|l| l.starts_with('{') && l.ends_with('}')));
    }
}
