//! Figure 7 end-to-end: top-level closure slots (`@kslot`), initialized by
//! `@init` before `@entrypoint` runs — built directly in the lp dialect
//! (the surface language doesn't need globals, but λrc programs with
//! lambda-lifted top-level closures do).

use lambda_ssa::core::rgn;
use lambda_ssa::ir::pass::Pass;
use lambda_ssa::ir::prelude::*;

/// Builds the paper's Figure 7 module by hand:
///
/// ```text
/// func @k(%x, %y) -> %x
/// global @kslot : !lp.t
/// func @init()  { %k = lp.pap @k; lp.global.store @kslot, %k; ret 0 }
/// func @ap42(%f) { %out = lp.papextend %f, 42; ret %out }
/// func @k42()   { %k = lp.global.load @kslot; call @ap42(%k) }
/// func @main()  { call @init(); call @k42() }  — k(42, …) waits for y;
///                 apply one more to observe k's first-arg semantics.
/// ```
fn build_module() -> Module {
    let mut m = Module::new();
    lambda_ssa::core::lp::declare_externs(&mut m);
    let kslot = m.add_global("kslot", Type::Obj);

    // @k(x, y) := x
    let k = {
        let (mut body, params) = Body::new(&[Type::Obj, Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_dec(params[1]);
        b.lp_ret(params[0]);
        m.add_function("k", Signature::obj(2), body)
    };

    // @init() := store (pap @k) into @kslot
    {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let clos = b.lp_pap(k, 2, vec![]);
        b.lp_global_store(kslot, clos);
        let zero = b.lp_int(0);
        b.lp_ret(zero);
        m.add_function("init", Signature::obj(0), body);
    }

    // @ap42(f) := papextend f, 42
    let ap42 = {
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c42 = b.lp_int(42);
        let out = b.lp_papextend(params[0], vec![c42]);
        b.lp_ret(out);
        m.add_function("ap42", Signature::obj(1), body)
    };

    // @k42() := ap42(load @kslot)   — yields the closure k(42, ·)
    let k42 = {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let kval = b.lp_global_load(kslot);
        b.lp_inc(kval); // the global keeps its own reference
        let out = b.call(ap42, vec![kval], Type::Obj);
        b.lp_ret(out);
        m.add_function("k42", Signature::obj(0), body)
    };

    // @main() := init(); (k42())(7)  — k(42, 7) = 42
    {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let initv = b.call(m.interner.get("init").unwrap(), vec![], Type::Obj);
        b.lp_dec(initv);
        let clos = b.call(k42, vec![], Type::Obj);
        let seven = b.lp_int(7);
        let out = b.lp_papextend(clos, vec![seven]);
        b.lp_ret(out);
        m.add_function("main", Signature::obj(0), body);
    }
    m
}

#[test]
fn figure7_top_level_closures_run_end_to_end() {
    let mut m = build_module();
    lambda_ssa::ir::verifier::verify_module(&m).unwrap();
    // Through the full rgn pipeline.
    rgn::from_lp::lower_module(&mut m);
    rgn::RgnToCfgPass.run(&mut m);
    rgn::TcoPass { only_self: false }.run(&mut m);
    lambda_ssa::ir::verifier::verify_module(&m).unwrap();
    let program = lambda_ssa::vm::compile_module(&m).unwrap();
    let out = lambda_ssa::vm::run_program(&program, "main", 1_000_000).unwrap();
    assert_eq!(out.rendered, "42");
}

#[test]
fn figure7_module_round_trips_through_text() {
    let m = build_module();
    let text = lambda_ssa::ir::printer::print_module(&m);
    assert!(text.contains("global @kslot : !lp.t"), "{text}");
    assert!(
        text.contains("lp.global.store(%0) {global = @kslot}"),
        "{text}"
    );
    assert!(text.contains("lp.global.load {global = @kslot}"), "{text}");
    let reparsed = lambda_ssa::ir::parser::parse_module(&text).unwrap();
    assert_eq!(text, lambda_ssa::ir::printer::print_module(&reparsed));
}

#[test]
fn uninitialized_global_reads_scalar_zero() {
    // Reading @kslot before @init stores into it yields the default scalar
    // — the runtime contract for module initialization order.
    let mut m = Module::new();
    lambda_ssa::core::lp::declare_externs(&mut m);
    let g = m.add_global("slot", Type::Obj);
    let (mut body, _) = Body::new(&[]);
    let entry = body.entry_block();
    let mut b = Builder::at_end(&mut body, entry);
    let v = b.lp_global_load(g);
    b.lp_ret(v);
    m.add_function("main", Signature::obj(0), body);
    rgn::from_lp::lower_module(&mut m);
    rgn::RgnToCfgPass.run(&mut m);
    let program = lambda_ssa::vm::compile_module(&m).unwrap();
    let out = lambda_ssa::vm::run_program(&program, "main", 1_000).unwrap();
    assert_eq!(out.rendered, "0");
}
