//! The `lp` dialect: λrc embedded in SSA (§III, Figure 2).
//!
//! The operations themselves live in `lssa-ir`'s opcode set (`lp.*`); this
//! module owns the semantics-level tooling around them:
//!
//! - [`from_lambda`] — the λrc → lp lowering (data constructors, staged
//!   integer matching, join points, closures, reference counting),
//! - [`declare_externs`] — declaring the LEAN runtime-call surface in a
//!   module.

pub mod from_lambda;

use lssa_ir::prelude::*;
use lssa_rt::Builtin;

/// Declares every runtime builtin as an external function.
///
/// The lp dialect is type-erased (§III): all runtime calls take and return
/// the uniform boxed type `!lp.t`, including decidable comparisons (whose
/// scalar 0/1 result is a valid zero-field constructor encoding).
pub fn declare_externs(module: &mut Module) {
    for &b in Builtin::ALL {
        module.declare_extern(b.name(), Signature::obj(b.arity()));
    }
}

/// Whether a symbol names a runtime builtin.
pub fn is_builtin(module: &Module, sym: Symbol) -> bool {
    module.name_of(sym).starts_with("lean_")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn externs_declared_once() {
        let mut m = Module::new();
        declare_externs(&mut m);
        let n = m.funcs.len();
        declare_externs(&mut m);
        assert_eq!(m.funcs.len(), n, "idempotent");
        assert!(m.func_by_name("lean_nat_add").unwrap().is_extern());
        let sym = m.interner.get("lean_nat_add").unwrap();
        assert!(is_builtin(&m, sym));
    }
}
