//! The `rgn` dialect: regions as SSA values (§IV of the paper).
//!
//! - [`from_lp`] — lowering `lp` control flow to `rgn` (Figure 8),
//! - [`opt`] — the region rewrite patterns (Figure 1),
//! - [`grn`] — global region numbering / region CSE (§IV-B.2),
//! - [`to_cfg`] — forgetting the region structure into a flat CFG (§IV-C)
//!   and guaranteed tail-call elimination (§III-E).

pub mod from_lp;
pub mod grn;
pub mod opt;
pub mod to_cfg;

pub use grn::GrnPass;
pub use to_cfg::{RgnToCfgPass, TcoPass};
