//! The `lssa` command-line compiler driver.
//!
//! ```text
//! lssa run <file> [--backend leanc|mlir|rgn-only|none]
//! lssa dump <file> [--stage lp|rgn|opt|cfg]
//! lssa diff <file>
//! lssa bench <name> [--scale test|bench]
//! ```

use lssa_driver::pipelines::{compile_and_run, frontend, CompilerConfig};
use lssa_driver::workloads::{by_name, Scale};
use lssa_ir::pass::Pass;
use std::process::ExitCode;

const MAX_STEPS: u64 = 2_000_000_000;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!("  lssa run <file> [--backend leanc|mlir|rgn-only|none]");
            eprintln!("  lssa dump <file> [--stage lambda|lp|rgn|opt|cfg]");
            eprintln!("  lssa diff <file>");
            eprintln!("  lssa bench <name> [--scale test|bench]");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn config_of(name: &str) -> Result<CompilerConfig, String> {
    match name {
        "leanc" => Ok(CompilerConfig::leanc()),
        "mlir" => Ok(CompilerConfig::mlir()),
        "rgn-only" => Ok(CompilerConfig::rgn_only()),
        "none" => Ok(CompilerConfig::none()),
        other => Err(format!("unknown backend `{other}`")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "run" => {
            let file = args.get(1).ok_or("missing file")?;
            let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let config = config_of(flag_value(args, "--backend").unwrap_or("mlir"))?;
            let out = compile_and_run(&src, config, MAX_STEPS).map_err(|e| e.to_string())?;
            println!("{}", out.rendered);
            eprintln!(
                "-- {} instructions, {} calls, peak {} live objects",
                out.stats.instructions, out.stats.calls, out.stats.heap.peak_live
            );
            Ok(())
        }
        "dump" => {
            let file = args.get(1).ok_or("missing file")?;
            let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let stage = flag_value(args, "--stage").unwrap_or("cfg");
            let rc = frontend(&src, CompilerConfig::mlir()).map_err(|e| e.to_string())?;
            match stage {
                "lambda" => {
                    for f in &rc.fns {
                        println!("{f}");
                    }
                }
                "lp" => {
                    let m = lssa_core::lp::from_lambda::lower_program(&rc);
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                "rgn" => {
                    let mut m = lssa_core::lp::from_lambda::lower_program(&rc);
                    lssa_core::rgn::from_lp::lower_module(&mut m);
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                "opt" => {
                    let mut m = lssa_core::lp::from_lambda::lower_program(&rc);
                    lssa_core::rgn::from_lp::lower_module(&mut m);
                    lssa_ir::passes::CanonicalizePass::with_extra(
                        lssa_core::rgn::opt::all_patterns,
                    )
                    .run(&mut m);
                    lssa_core::rgn::GrnPass.run(&mut m);
                    lssa_ir::passes::DcePass.run(&mut m);
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                "cfg" => {
                    let m = lssa_core::pipeline::compile(&rc, lssa_core::PipelineOptions::full());
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                other => return Err(format!("unknown stage `{other}`")),
            }
            Ok(())
        }
        "diff" => {
            let file = args.get(1).ok_or("missing file")?;
            let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let r = lssa_driver::diff::run_differential(file, &src, MAX_STEPS);
            match r.failure {
                None => {
                    println!("PASS: all pipelines agree on {:?}", r.rendered.unwrap());
                    Ok(())
                }
                Some(f) => Err(format!("differential mismatch: {f}")),
            }
        }
        "bench" => {
            let name = args.get(1).ok_or("missing benchmark name")?;
            let scale = match flag_value(args, "--scale").unwrap_or("test") {
                "test" => Scale::Test,
                "bench" => Scale::Bench,
                other => return Err(format!("unknown scale `{other}`")),
            };
            let w = by_name(name, scale).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
            for config in lssa_driver::diff::configs() {
                let start = std::time::Instant::now();
                let out = compile_and_run(&w.src, config, MAX_STEPS).map_err(|e| e.to_string())?;
                let elapsed = start.elapsed();
                println!(
                    "{:28} {:>12?} {:>14} instrs  result={}",
                    config.label(),
                    elapsed,
                    out.stats.instructions,
                    out.rendered
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
