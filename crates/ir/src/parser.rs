//! Textual IR parser — the inverse of [`crate::printer`].
//!
//! Parsing proceeds in two phases: a recursive-descent pass producing a
//! light-weight AST, then a binding pass that allocates blocks, block
//! arguments and op results *before* resolving operands, so forward
//! references between blocks work.

use crate::attr::{Attr, AttrKey, CmpPred};
use crate::body::{Body, Successor};
use crate::ids::{BlockId, ValueId};
use crate::module::Module;
use crate::opcode::Opcode;
use crate::types::{Signature, Type};
use std::collections::HashMap;
use std::fmt;

/// A parse error with source position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line.
    pub line: usize,
    /// 1-based column.
    pub col: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.message)
    }
}

impl std::error::Error for ParseError {}

// ---- lexer ------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),   // module, func, arith.addi, eq, cases …
    TypeLit(String), // !lp.t, !rgn.region
    Percent(u32),    // %12
    At(String),      // @foo
    Caret(u32),      // ^bb3
    Int(i64),
    Str(String),
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Equals,
    Colon,
    Arrow,
    Eof,
}

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
    col: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        ParseError {
            line: self.line,
            col: self.col,
            message: message.into(),
        }
    }

    fn peek_byte(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek_byte()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek_byte() {
                Some(b' ' | b'\t' | b'\n' | b'\r') => {
                    self.bump();
                }
                Some(b'/') if self.src.get(self.pos + 1) == Some(&b'/') => {
                    while let Some(b) = self.peek_byte() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn ident_tail(&mut self, first: u8) -> String {
        let mut s = String::new();
        s.push(first as char);
        while let Some(b) = self.peek_byte() {
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'.' {
                s.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn next_token(&mut self) -> Result<Tok, ParseError> {
        self.skip_ws();
        let Some(b) = self.peek_byte() else {
            return Ok(Tok::Eof);
        };
        match b {
            b'(' => {
                self.bump();
                Ok(Tok::LParen)
            }
            b')' => {
                self.bump();
                Ok(Tok::RParen)
            }
            b'{' => {
                self.bump();
                Ok(Tok::LBrace)
            }
            b'}' => {
                self.bump();
                Ok(Tok::RBrace)
            }
            b'[' => {
                self.bump();
                Ok(Tok::LBracket)
            }
            b']' => {
                self.bump();
                Ok(Tok::RBracket)
            }
            b',' => {
                self.bump();
                Ok(Tok::Comma)
            }
            b'=' => {
                self.bump();
                Ok(Tok::Equals)
            }
            b':' => {
                self.bump();
                Ok(Tok::Colon)
            }
            b'%' => {
                self.bump();
                let n = self.lex_number_u32()?;
                Ok(Tok::Percent(n))
            }
            b'@' => {
                self.bump();
                let first = self
                    .bump()
                    .ok_or_else(|| self.err("expected symbol name after '@'"))?;
                Ok(Tok::At(self.ident_tail(first)))
            }
            b'^' => {
                self.bump();
                // Expect "bbN".
                for expected in [b'b', b'b'] {
                    if self.bump() != Some(expected) {
                        return Err(self.err("expected block label ^bbN"));
                    }
                }
                let n = self.lex_number_u32()?;
                Ok(Tok::Caret(n))
            }
            b'!' => {
                self.bump();
                let first = self
                    .bump()
                    .ok_or_else(|| self.err("expected type name after '!'"))?;
                let name = self.ident_tail(first);
                Ok(Tok::TypeLit(format!("!{name}")))
            }
            b'-' => {
                self.bump();
                match self.peek_byte() {
                    Some(b'>') => {
                        self.bump();
                        Ok(Tok::Arrow)
                    }
                    Some(d) if d.is_ascii_digit() => {
                        let n = self.lex_number_i64()?;
                        Ok(Tok::Int(-n))
                    }
                    _ => Err(self.err("expected '->' or negative number after '-'")),
                }
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            Some(b'n') => s.push('\n'),
                            Some(b't') => s.push('\t'),
                            _ => return Err(self.err("invalid escape in string")),
                        },
                        Some(c) => s.push(c as char),
                        None => return Err(self.err("unterminated string")),
                    }
                }
                Ok(Tok::Str(s))
            }
            d if d.is_ascii_digit() => {
                let n = self.lex_number_i64()?;
                Ok(Tok::Int(n))
            }
            a if a.is_ascii_alphabetic() || a == b'_' => {
                self.bump();
                Ok(Tok::Ident(self.ident_tail(a)))
            }
            other => Err(self.err(format!("unexpected character '{}'", other as char))),
        }
    }

    fn lex_number_u32(&mut self) -> Result<u32, ParseError> {
        let n = self.lex_number_i64()?;
        u32::try_from(n).map_err(|_| self.err("number out of range"))
    }

    fn lex_number_i64(&mut self) -> Result<i64, ParseError> {
        let mut s = String::new();
        while let Some(b) = self.peek_byte() {
            if b.is_ascii_digit() {
                s.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        if s.is_empty() {
            return Err(self.err("expected number"));
        }
        s.parse().map_err(|_| self.err("integer overflow"))
    }
}

// ---- AST -----------------------------------------------------------------

#[derive(Debug)]
struct PFunc {
    name: String,
    params: Vec<(u32, Type)>,
    ret: Type,
    region: PRegion,
}

#[derive(Debug)]
struct PRegion {
    blocks: Vec<PBlock>,
}

#[derive(Debug)]
struct PBlock {
    label: Option<u32>,
    args: Vec<(u32, Type)>,
    ops: Vec<POp>,
}

#[derive(Debug)]
struct POp {
    results: Vec<u32>,
    opcode: Opcode,
    operands: Vec<u32>,
    attrs: Vec<(AttrKey, PAttr)>,
    succs: Vec<(u32, Vec<u32>)>,
    regions: Vec<PRegion>,
    ty: Option<Type>,
}

#[derive(Debug)]
enum PAttr {
    Int(i64),
    Str(String),
    Sym(String),
    IntList(Vec<i64>),
    Pred(CmpPred),
}

// ---- parser -----------------------------------------------------------------

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
}

impl<'a> Parser<'a> {
    fn new(src: &'a str) -> Result<Parser<'a>, ParseError> {
        let mut lexer = Lexer::new(src);
        let tok = lexer.next_token()?;
        Ok(Parser { lexer, tok })
    }

    fn err(&self, message: impl Into<String>) -> ParseError {
        self.lexer.err(message)
    }

    fn advance(&mut self) -> Result<Tok, ParseError> {
        let next = self.lexer.next_token()?;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn expect(&mut self, t: Tok) -> Result<(), ParseError> {
        if self.tok == t {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected {t:?}, found {:?}", self.tok)))
        }
    }

    fn expect_ident(&mut self, kw: &str) -> Result<(), ParseError> {
        match &self.tok {
            Tok::Ident(s) if s == kw => {
                self.advance()?;
                Ok(())
            }
            other => Err(self.err(format!("expected `{kw}`, found {other:?}"))),
        }
    }

    fn eat(&mut self, t: &Tok) -> Result<bool, ParseError> {
        if &self.tok == t {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn parse_type(&mut self) -> Result<Type, ParseError> {
        let s = match self.advance()? {
            Tok::Ident(s) => s,
            Tok::TypeLit(s) => s,
            other => return Err(self.err(format!("expected type, found {other:?}"))),
        };
        s.parse::<Type>().map_err(|e| self.err(e.to_string()))
    }

    fn parse_percent(&mut self) -> Result<u32, ParseError> {
        match self.advance()? {
            Tok::Percent(n) => Ok(n),
            other => Err(self.err(format!("expected %value, found {other:?}"))),
        }
    }

    fn parse_module(&mut self, module: &mut Module) -> Result<(), ParseError> {
        self.expect_ident("module")?;
        self.expect(Tok::LBrace)?;
        loop {
            match &self.tok {
                Tok::RBrace => {
                    self.advance()?;
                    break;
                }
                Tok::Ident(kw) if kw == "global" => {
                    self.advance()?;
                    let name = self.parse_at()?;
                    self.expect(Tok::Colon)?;
                    let ty = self.parse_type()?;
                    module.add_global(&name, ty);
                }
                Tok::Ident(kw) if kw == "extern" => {
                    self.advance()?;
                    self.expect_ident("func")?;
                    let name = self.parse_at()?;
                    self.expect(Tok::LParen)?;
                    let mut params = Vec::new();
                    if self.tok != Tok::RParen {
                        loop {
                            params.push(self.parse_type()?);
                            if !self.eat(&Tok::Comma)? {
                                break;
                            }
                        }
                    }
                    self.expect(Tok::RParen)?;
                    self.expect(Tok::Arrow)?;
                    let ret = self.parse_type()?;
                    module.declare_extern(&name, Signature::new(params, ret));
                }
                Tok::Ident(kw) if kw == "func" => {
                    let pf = self.parse_func()?;
                    bind_function(module, pf).map_err(|m| self.err(m))?;
                }
                other => return Err(self.err(format!("unexpected token {other:?} in module"))),
            }
        }
        Ok(())
    }

    fn parse_at(&mut self) -> Result<String, ParseError> {
        match self.advance()? {
            Tok::At(s) => Ok(s),
            other => Err(self.err(format!("expected @symbol, found {other:?}"))),
        }
    }

    fn parse_func(&mut self) -> Result<PFunc, ParseError> {
        self.expect_ident("func")?;
        let name = self.parse_at()?;
        self.expect(Tok::LParen)?;
        let mut params = Vec::new();
        if self.tok != Tok::RParen {
            loop {
                let n = self.parse_percent()?;
                self.expect(Tok::Colon)?;
                let ty = self.parse_type()?;
                params.push((n, ty));
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
        }
        self.expect(Tok::RParen)?;
        self.expect(Tok::Arrow)?;
        let ret = self.parse_type()?;
        self.expect(Tok::LBrace)?;
        let region = self.parse_region_body()?;
        // parse_region_body consumed the closing brace.
        Ok(PFunc {
            name,
            params,
            ret,
            region,
        })
    }

    /// Parses block list up to and including the closing `}`.
    fn parse_region_body(&mut self) -> Result<PRegion, ParseError> {
        let mut blocks = Vec::new();
        let mut current = PBlock {
            label: None,
            args: Vec::new(),
            ops: Vec::new(),
        };
        let mut saw_anything = false;
        loop {
            match &self.tok {
                Tok::RBrace => {
                    self.advance()?;
                    break;
                }
                Tok::Caret(_) => {
                    if saw_anything {
                        blocks.push(current);
                    }
                    let label = match self.advance()? {
                        Tok::Caret(n) => n,
                        _ => unreachable!(),
                    };
                    let mut args = Vec::new();
                    if self.eat(&Tok::LParen)? {
                        if self.tok != Tok::RParen {
                            loop {
                                let n = self.parse_percent()?;
                                self.expect(Tok::Colon)?;
                                let ty = self.parse_type()?;
                                args.push((n, ty));
                                if !self.eat(&Tok::Comma)? {
                                    break;
                                }
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    self.expect(Tok::Colon)?;
                    current = PBlock {
                        label: Some(label),
                        args,
                        ops: Vec::new(),
                    };
                    saw_anything = true;
                }
                _ => {
                    let op = self.parse_op()?;
                    current.ops.push(op);
                    saw_anything = true;
                }
            }
        }
        if saw_anything || blocks.is_empty() {
            blocks.push(current);
        }
        Ok(PRegion { blocks })
    }

    fn parse_op(&mut self) -> Result<POp, ParseError> {
        // Optional results: %a, %b = …
        let mut results = Vec::new();
        if let Tok::Percent(_) = self.tok {
            loop {
                results.push(self.parse_percent()?);
                if !self.eat(&Tok::Comma)? {
                    break;
                }
            }
            self.expect(Tok::Equals)?;
        }
        let opname = match self.advance()? {
            Tok::Ident(s) => s,
            other => return Err(self.err(format!("expected op name, found {other:?}"))),
        };
        let opcode = Opcode::by_name(&opname)
            .ok_or_else(|| self.err(format!("unknown operation `{opname}`")))?;
        // Operands: '(' not followed by '{'.
        let mut operands = Vec::new();
        if self.tok == Tok::LParen {
            // Lookahead: operand list starts with % or ')'.
            // Region list starts with '{'.
            let is_operands = {
                // Cheap lookahead via cloning position is messy; instead peek
                // at the next token after consuming '(' and allow both forms.
                self.advance()?; // consume '('
                !matches!(self.tok, Tok::LBrace)
            };
            if is_operands {
                if self.tok != Tok::RParen {
                    loop {
                        operands.push(self.parse_percent()?);
                        if !self.eat(&Tok::Comma)? {
                            break;
                        }
                    }
                }
                self.expect(Tok::RParen)?;
            } else {
                // It was a region list; parse it here and return early path.
                let regions = self.parse_region_list_after_lparen()?;
                let ty = self.parse_result_type()?;
                return Ok(POp {
                    results,
                    opcode,
                    operands,
                    attrs: Vec::new(),
                    succs: Vec::new(),
                    regions,
                    ty,
                });
            }
        }
        // Attributes.
        let mut attrs = Vec::new();
        if self.eat(&Tok::LBrace)? {
            if self.tok != Tok::RBrace {
                loop {
                    let key = match self.advance()? {
                        Tok::Ident(s) => s
                            .parse::<AttrKey>()
                            .map_err(|_| self.err(format!("unknown attribute `{s}`")))?,
                        other => {
                            return Err(self.err(format!("expected attr key, found {other:?}")))
                        }
                    };
                    self.expect(Tok::Equals)?;
                    let val = self.parse_attr_value()?;
                    attrs.push((key, val));
                    if !self.eat(&Tok::Comma)? {
                        break;
                    }
                }
            }
            self.expect(Tok::RBrace)?;
        }
        // Successors.
        let mut succs = Vec::new();
        if self.eat(&Tok::LBracket)? {
            if self.tok != Tok::RBracket {
                loop {
                    let label = match self.advance()? {
                        Tok::Caret(n) => n,
                        other => return Err(self.err(format!("expected ^block, found {other:?}"))),
                    };
                    let mut args = Vec::new();
                    if self.eat(&Tok::LParen)? {
                        if self.tok != Tok::RParen {
                            loop {
                                args.push(self.parse_percent()?);
                                if !self.eat(&Tok::Comma)? {
                                    break;
                                }
                            }
                        }
                        self.expect(Tok::RParen)?;
                    }
                    succs.push((label, args));
                    if !self.eat(&Tok::Comma)? {
                        break;
                    }
                }
            }
            self.expect(Tok::RBracket)?;
        }
        // Regions.
        let mut regions = Vec::new();
        if self.tok == Tok::LParen {
            self.advance()?;
            regions = self.parse_region_list_after_lparen()?;
        }
        let ty = self.parse_result_type()?;
        Ok(POp {
            results,
            opcode,
            operands,
            attrs,
            succs,
            regions,
            ty,
        })
    }

    /// Parses `{…}, {…})` — the '(' has been consumed.
    fn parse_region_list_after_lparen(&mut self) -> Result<Vec<PRegion>, ParseError> {
        let mut regions = Vec::new();
        loop {
            self.expect(Tok::LBrace)?;
            regions.push(self.parse_region_body()?);
            if !self.eat(&Tok::Comma)? {
                break;
            }
        }
        self.expect(Tok::RParen)?;
        Ok(regions)
    }

    fn parse_result_type(&mut self) -> Result<Option<Type>, ParseError> {
        if self.eat(&Tok::Colon)? {
            Ok(Some(self.parse_type()?))
        } else {
            Ok(None)
        }
    }

    fn parse_attr_value(&mut self) -> Result<PAttr, ParseError> {
        match self.advance()? {
            Tok::Int(v) => Ok(PAttr::Int(v)),
            Tok::Str(s) => Ok(PAttr::Str(s)),
            Tok::At(s) => Ok(PAttr::Sym(s)),
            Tok::Ident(s) => {
                let pred = s
                    .parse::<CmpPred>()
                    .map_err(|_| self.err(format!("unknown attribute value `{s}`")))?;
                Ok(PAttr::Pred(pred))
            }
            Tok::LBracket => {
                let mut vs = Vec::new();
                if self.tok != Tok::RBracket {
                    loop {
                        match self.advance()? {
                            Tok::Int(v) => vs.push(v),
                            other => {
                                return Err(self.err(format!("expected integer, found {other:?}")))
                            }
                        }
                        if !self.eat(&Tok::Comma)? {
                            break;
                        }
                    }
                }
                self.expect(Tok::RBracket)?;
                Ok(PAttr::IntList(vs))
            }
            other => Err(self.err(format!("expected attribute value, found {other:?}"))),
        }
    }
}

// ---- binding -------------------------------------------------------------

struct Binder<'m> {
    module: &'m mut Module,
    values: HashMap<u32, ValueId>,
    blocks: HashMap<u32, BlockId>,
}

fn bind_function(module: &mut Module, pf: PFunc) -> Result<(), String> {
    let param_tys: Vec<Type> = pf.params.iter().map(|&(_, t)| t).collect();
    let (mut body, param_vals) = Body::new(&param_tys);
    let mut binder = Binder {
        module,
        values: HashMap::new(),
        blocks: HashMap::new(),
    };
    for (&(n, _), &v) in pf.params.iter().zip(&param_vals) {
        binder.values.insert(n, v);
    }
    // The function's printed entry block (if labelled) is block 0.
    binder.bind_region(&mut body, &pf.region, crate::body::ROOT_REGION, true)?;
    let sig = Signature::new(param_tys, pf.ret);
    binder.module.add_function(&pf.name, sig, body);
    Ok(())
}

impl Binder<'_> {
    /// Phase 1+2 over one region: create blocks/args/results, then ops.
    fn bind_region(
        &mut self,
        body: &mut Body,
        pr: &PRegion,
        region: crate::ids::RegionId,
        is_root: bool,
    ) -> Result<(), String> {
        // Phase 1: blocks, block args, and result values for all ops in this
        // region (but NOT nested regions — those bind after their parent op
        // exists).
        let mut block_ids = Vec::with_capacity(pr.blocks.len());
        for (i, pb) in pr.blocks.iter().enumerate() {
            let b = if i == 0 && is_root {
                // Root entry already exists with parameter args.
                body.entry_block()
            } else {
                let tys: Vec<Type> = pb.args.iter().map(|&(_, t)| t).collect();
                let b = body.new_block(region, &tys);
                for (&(n, _), &v) in pb.args.iter().zip(&body.blocks[b.index()].args.to_vec()) {
                    self.values.insert(n, v);
                }
                b
            };
            if i == 0 && is_root {
                if let Some(lbl) = pb.label {
                    self.blocks.insert(lbl, b);
                }
                if !pb.args.is_empty() && pb.label.is_some() {
                    // A labelled root entry re-declares params; map them.
                    for (&(n, _), &v) in pb.args.iter().zip(body.params().to_vec().iter()) {
                        self.values.insert(n, v);
                    }
                }
            } else if let Some(lbl) = pb.label {
                self.blocks.insert(lbl, b);
            }
            block_ids.push(b);
        }
        // Phase 1b: allocate results for every op in every block (so operand
        // references across blocks resolve), by creating the ops now with
        // empty operands and patching later.
        let mut op_ids: Vec<Vec<crate::ids::OpId>> = Vec::new();
        for pb in &pr.blocks {
            let mut ids = Vec::new();
            for pop in &pb.ops {
                let result_tys: Vec<Type> = match (pop.results.len(), pop.ty) {
                    (0, _) => vec![],
                    (1, Some(t)) => vec![t],
                    (1, None) => return Err("op with result needs a `: type` suffix".into()),
                    _ => return Err("ops have at most one result".into()),
                };
                let attrs: Vec<_> = pop
                    .attrs
                    .iter()
                    .map(|(k, a)| (*k, self.bind_attr(a)))
                    .collect();
                let op = body.create_op(pop.opcode, Vec::new(), &result_tys, attrs);
                for (&n, &r) in pop
                    .results
                    .iter()
                    .zip(&body.ops[op.index()].results.to_vec())
                {
                    self.values.insert(n, r);
                }
                ids.push(op);
            }
            op_ids.push(ids);
        }
        // Phase 2: operands, successors, nested regions; attach ops.
        for (bi, pb) in pr.blocks.iter().enumerate() {
            for (oi, pop) in pb.ops.iter().enumerate() {
                let op = op_ids[bi][oi];
                let operands: Result<Vec<ValueId>, String> = pop
                    .operands
                    .iter()
                    .map(|n| {
                        self.values
                            .get(n)
                            .copied()
                            .ok_or_else(|| format!("use of undefined value %{n}"))
                    })
                    .collect();
                body.ops[op.index()].operands = operands?.into();
                for (lbl, args) in &pop.succs {
                    let block = *self
                        .blocks
                        .get(lbl)
                        .ok_or_else(|| format!("use of undefined block ^bb{lbl}"))?;
                    let args: Result<Vec<ValueId>, String> = args
                        .iter()
                        .map(|n| {
                            self.values
                                .get(n)
                                .copied()
                                .ok_or_else(|| format!("use of undefined value %{n}"))
                        })
                        .collect();
                    body.ops[op.index()]
                        .successors
                        .push(Successor::with_args(block, args?));
                }
                body.push_op(block_ids[bi], op);
                for nested in &pop.regions {
                    let r = body.new_region(op);
                    self.bind_region(body, nested, r, false)?;
                }
            }
        }
        Ok(())
    }

    fn bind_attr(&mut self, a: &PAttr) -> Attr {
        match a {
            PAttr::Int(v) => Attr::Int(*v),
            PAttr::Str(s) => Attr::Str(s.as_str().into()),
            PAttr::Sym(s) => Attr::Sym(self.module.intern(s)),
            PAttr::IntList(vs) => Attr::IntList(vs.as_slice().into()),
            PAttr::Pred(p) => Attr::Pred(*p),
        }
    }
}

/// Parses the textual form of a module.
///
/// # Errors
///
/// Returns a [`ParseError`] with position information on malformed input.
pub fn parse_module(src: &str) -> Result<Module, ParseError> {
    let mut module = Module::new();
    let mut parser = Parser::new(src)?;
    parser.parse_module(&mut module)?;
    if parser.tok != Tok::Eof {
        return Err(parser.err(format!("trailing input: {:?}", parser.tok)));
    }
    Ok(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::printer::print_module;

    fn round_trip(src: &str) {
        let m = parse_module(src).expect("first parse");
        let printed = print_module(&m);
        let m2 =
            parse_module(&printed).unwrap_or_else(|e| panic!("reparse failed: {e}\n{printed}"));
        let printed2 = print_module(&m2);
        assert_eq!(printed, printed2, "printer not canonical");
    }

    #[test]
    fn parse_minimal_function() {
        let src = r#"
module {
  func @id(%0: !lp.t) -> !lp.t {
    lp.ret(%0)
  }
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.func_by_name("id").unwrap();
        assert_eq!(f.sig.params.len(), 1);
        round_trip(src);
    }

    #[test]
    fn parse_arith_and_attrs() {
        let src = r#"
module {
  func @f(%0: i64) -> i64 {
    %1 = arith.constant {value = -7} : i64
    %2 = arith.addi(%0, %1) : i64
    %3 = arith.cmpi(%2, %1) {pred = slt} : i1
    %4 = arith.select(%3, %0, %2) : i64
    func.return(%4)
  }
}
"#;
        round_trip(src);
    }

    #[test]
    fn parse_blocks_and_successors() {
        let src = r#"
module {
  func @g(%0: i1) -> i64 {
    %1 = arith.constant {value = 9} : i64
    cf.cond_br(%0) [^bb1, ^bb2(%1)]
  ^bb1:
    %2 = arith.constant {value = 0} : i64
    func.return(%2)
  ^bb2(%3: i64):
    func.return(%3)
  }
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.func_by_name("g").unwrap();
        let body = f.body.as_ref().unwrap();
        assert_eq!(body.regions[0].blocks.len(), 3);
        round_trip(src);
    }

    #[test]
    fn parse_regions() {
        let src = r#"
module {
  func @h(%0: !lp.t) -> !lp.t {
    %1 = lp.getlabel(%0) : i8
    lp.switch(%1) {cases = [0]} ({
      %2 = lp.int {value = 0} : !lp.t
      lp.ret(%2)
    }, {
      %3 = lp.int {value = 1} : !lp.t
      lp.ret(%3)
    })
  }
}
"#;
        let m = parse_module(src).unwrap();
        let f = m.func_by_name("h").unwrap();
        let body = f.body.as_ref().unwrap();
        let switch = body
            .walk_ops()
            .into_iter()
            .find(|&op| body.ops[op.index()].opcode == Opcode::LpSwitch)
            .unwrap();
        assert_eq!(body.ops[switch.index()].regions.len(), 2);
        round_trip(src);
    }

    #[test]
    fn parse_rgn_dialect() {
        let src = r#"
module {
  func @r(%0: i1) -> !lp.t {
    %1 = rgn.val ({
      %2 = lp.int {value = 3} : !lp.t
      lp.ret(%2)
    }) : !rgn.region
    %3 = rgn.val ({
      %4 = lp.int {value = 5} : !lp.t
      lp.ret(%4)
    }) : !rgn.region
    %5 = arith.select(%0, %1, %3) : !rgn.region
    rgn.run(%5)
  }
}
"#;
        round_trip(src);
        let m = parse_module(src).unwrap();
        let f = m.func_by_name("r").unwrap();
        let body = f.body.as_ref().unwrap();
        let vals: Vec<_> = body
            .walk_ops()
            .into_iter()
            .filter(|&op| body.ops[op.index()].opcode == Opcode::RgnVal)
            .collect();
        assert_eq!(vals.len(), 2);
    }

    #[test]
    fn parse_extern_global_and_calls() {
        let src = r#"
module {
  extern func @lean_nat_add(!lp.t, !lp.t) -> !lp.t
  global @kslot : !lp.t
  func @k42(%0: !lp.t) -> !lp.t {
    %1 = lp.global.load {global = @kslot} : !lp.t
    %2 = func.call(%0, %1) {callee = @lean_nat_add} : !lp.t
    func.return(%2)
  }
}
"#;
        let m = parse_module(src).unwrap();
        assert!(m.func_by_name("lean_nat_add").unwrap().is_extern());
        assert_eq!(m.globals.len(), 1);
        round_trip(src);
    }

    #[test]
    fn parse_region_with_block_args() {
        let src = r#"
module {
  func @jp(%0: !lp.t) -> !lp.t {
    %1 = rgn.val ({
    ^bb1(%2: !lp.t):
      lp.ret(%2)
    }) : !rgn.region
    rgn.run(%1, %0)
  }
}
"#;
        round_trip(src);
    }

    #[test]
    fn error_has_position() {
        let err = parse_module("module {\n  func !\n}").unwrap_err();
        // The lexer keeps one token of lookahead, so the reported position
        // is at or just past the offending line.
        assert!(err.line >= 2, "{err}");
        assert!(err.to_string().contains(&format!("{}:", err.line)));
    }

    #[test]
    fn error_on_unknown_op() {
        let src = "module { func @f() -> i64 { %0 = bogus.op : i64 } }";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("unknown operation"), "{err}");
    }

    #[test]
    fn error_on_undefined_value() {
        let src = "module { func @f() -> i64 { func.return(%9) } }";
        let err = parse_module(src).unwrap_err();
        assert!(err.message.contains("undefined value"), "{err}");
    }

    #[test]
    fn parse_string_attr() {
        let src = r#"
module {
  func @big() -> !lp.t {
    %0 = lp.bigint {value = "99999999999999999999"} : !lp.t
    lp.ret(%0)
  }
}
"#;
        let m = parse_module(src).unwrap();
        round_trip(src);
        let f = m.func_by_name("big").unwrap();
        let body = f.body.as_ref().unwrap();
        let op = body.walk_ops()[0];
        assert_eq!(
            body.ops[op.index()].attr(AttrKey::Value).unwrap().as_str(),
            Some("99999999999999999999")
        );
    }
}
