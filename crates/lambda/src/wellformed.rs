//! Well-formedness checking for λpure/λrc programs.
//!
//! Enforces the invariants the rest of the compiler relies on:
//!
//! 1. every variable use is in scope;
//! 2. every binder is globally unique within its function (SSA-like);
//! 3. `jump` targets an enclosing join point with matching argument count;
//! 4. join-point bodies reference only their own parameters (this crate
//!    lambda-lifts join points locally — see [`crate::ast`]);
//! 5. calls name known functions (or `lean_*` runtime builtins) with the
//!    right arity; partial applications under-apply; closure applications
//!    pass at least one argument.

use crate::ast::{Expr, FnDef, Program, Value, VarId};
use lssa_rt::Builtin;
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Stable diagnostic codes for wellformedness violations.
///
/// Shared with the `lssa-syntax` text frontend, so `lssa check` (syntax-level
/// checking with spans) and `lssa run` (AST-level checking) report the same
/// code for the same defect.
pub mod codes {
    /// Use of a variable that is not in scope.
    pub const OUT_OF_SCOPE: &str = "E0101";
    /// A variable bound more than once within one function.
    pub const REBOUND: &str = "E0102";
    /// Jump to a join point that is not in scope.
    pub const UNKNOWN_JOIN: &str = "E0103";
    /// Jump argument count differs from the join point's parameter count.
    pub const JUMP_ARITY: &str = "E0104";
    /// A join-point body references a variable that is not one of its
    /// parameters.
    pub const JOIN_CAPTURE: &str = "E0105";
    /// Call of an unknown top-level function.
    pub const UNKNOWN_FUNCTION: &str = "E0106";
    /// Call argument count differs from the callee's arity.
    pub const CALL_ARITY: &str = "E0107";
    /// Call of an unknown `lean_*` runtime builtin.
    pub const UNKNOWN_BUILTIN: &str = "E0108";
    /// Builtin argument count differs from the builtin's arity.
    pub const BUILTIN_ARITY: &str = "E0109";
    /// Partial application that does not under-apply, or of an unknown
    /// function.
    pub const BAD_PAP: &str = "E0110";
    /// Closure application with no arguments.
    pub const EMPTY_APP: &str = "E0111";
    /// Bigint literal that is not a nonempty string of decimal digits.
    pub const BAD_BIGINT: &str = "E0112";
    /// Two `case` arms with the same constructor tag.
    pub const DUPLICATE_TAG: &str = "E0113";
    /// A `case` with neither arms nor a default.
    pub const EMPTY_CASE: &str = "E0114";
    /// Two top-level functions with the same name.
    pub const DUPLICATE_FUNCTION: &str = "E0115";
    /// A variable id at or above the function's declared `next_var` bound.
    pub const VAR_BOUND: &str = "E0116";
}

/// A well-formedness violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WfError {
    /// The function in which the violation occurred.
    pub func: String,
    /// Stable diagnostic code (see [`codes`]).
    pub code: &'static str,
    /// Description.
    pub message: String,
}

impl fmt::Display for WfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}: {}", self.func, self.message)
    }
}

impl std::error::Error for WfError {}

/// Checks a whole program.
///
/// # Errors
///
/// Returns all violations found.
pub fn check_program(p: &Program) -> Result<(), Vec<WfError>> {
    let mut errors = Vec::new();
    let mut names = HashSet::new();
    for f in &p.fns {
        if !names.insert(f.name.clone()) {
            errors.push(WfError {
                func: f.name.clone(),
                code: codes::DUPLICATE_FUNCTION,
                message: "duplicate function name".to_string(),
            });
        }
    }
    for f in &p.fns {
        check_fn(p, f, &mut errors);
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

struct Checker<'a> {
    program: &'a Program,
    func: &'a FnDef,
    errors: &'a mut Vec<WfError>,
    bound_once: HashSet<VarId>,
}

fn check_fn(program: &Program, func: &FnDef, errors: &mut Vec<WfError>) {
    let mut c = Checker {
        program,
        func,
        errors,
        bound_once: HashSet::new(),
    };
    let mut scope: HashSet<VarId> = HashSet::new();
    for &p in &func.params {
        if !c.bound_once.insert(p) {
            c.error(codes::REBOUND, format!("parameter x{p} bound twice"));
        }
        scope.insert(p);
    }
    let joins = HashMap::new();
    c.check_expr(&func.body, &scope, &joins);
}

impl Checker<'_> {
    fn error(&mut self, code: &'static str, message: String) {
        self.errors.push(WfError {
            func: self.func.name.clone(),
            code,
            message,
        });
    }

    fn check_var(&mut self, v: VarId, scope: &HashSet<VarId>) {
        if !scope.contains(&v) {
            self.error(codes::OUT_OF_SCOPE, format!("use of x{v} out of scope"));
        }
        if v >= self.func.next_var {
            self.error(
                codes::VAR_BOUND,
                format!(
                    "x{v} exceeds the function's declared variable bound {}",
                    self.func.next_var
                ),
            );
        }
    }

    fn bind(&mut self, v: VarId, scope: &mut HashSet<VarId>) {
        if !self.bound_once.insert(v) {
            self.error(codes::REBOUND, format!("x{v} bound more than once"));
        }
        scope.insert(v);
    }

    fn check_value(&mut self, val: &Value, scope: &HashSet<VarId>) {
        for v in val.operands() {
            self.check_var(v, scope);
        }
        match val {
            Value::Call { func, args } => {
                if let Some(stripped) = func.strip_prefix("lean_") {
                    let _ = stripped;
                    match func.parse::<Builtin>() {
                        Ok(b) => {
                            if b.arity() != args.len() {
                                self.error(
                                    codes::BUILTIN_ARITY,
                                    format!(
                                        "builtin {func} expects {} args, got {}",
                                        b.arity(),
                                        args.len()
                                    ),
                                );
                            }
                        }
                        Err(_) => {
                            self.error(codes::UNKNOWN_BUILTIN, format!("unknown builtin {func}"))
                        }
                    }
                } else {
                    match self.program.arity_of(func) {
                        Some(a) if a == args.len() => {}
                        Some(a) => self.error(
                            codes::CALL_ARITY,
                            format!("call to @{func} with {} args (arity {a})", args.len()),
                        ),
                        None => self.error(
                            codes::UNKNOWN_FUNCTION,
                            format!("call to unknown function @{func}"),
                        ),
                    }
                }
            }
            Value::Pap { func, args } => match self.program.arity_of(func) {
                Some(a) if args.len() < a => {}
                Some(a) => self.error(
                    codes::BAD_PAP,
                    format!(
                        "pap of @{func} with {} args must under-apply (arity {a})",
                        args.len()
                    ),
                ),
                None => self.error(codes::BAD_PAP, format!("pap of unknown function @{func}")),
            },
            Value::App { args, .. } if args.is_empty() => {
                self.error(
                    codes::EMPTY_APP,
                    "closure application with no arguments".to_string(),
                );
            }
            Value::LitBig(s) if (s.is_empty() || !s.bytes().all(|b| b.is_ascii_digit())) => {
                self.error(codes::BAD_BIGINT, format!("malformed bigint literal {s:?}"));
            }
            _ => {}
        }
    }

    fn check_expr(&mut self, e: &Expr, scope: &HashSet<VarId>, joins: &HashMap<u32, usize>) {
        match e {
            Expr::Let { var, val, body } => {
                self.check_value(val, scope);
                let mut scope = scope.clone();
                self.bind(*var, &mut scope);
                self.check_expr(body, &scope, joins);
            }
            Expr::LetJoin {
                label,
                params,
                jp_body,
                body,
            } => {
                // Join body sees only its parameters.
                let mut jp_scope = HashSet::new();
                for &p in params {
                    self.bind(p, &mut jp_scope);
                }
                // The join point itself is not in scope inside its own body
                // (no recursive joins in λpure).
                self.check_expr(jp_body, &jp_scope, joins);
                let extra = jp_body
                    .free_vars()
                    .into_iter()
                    .find(|v| !params.contains(v));
                if let Some(v) = extra {
                    self.error(
                        codes::JOIN_CAPTURE,
                        format!(
                            "join point j{label} body references x{v}, which is not a parameter"
                        ),
                    );
                }
                let mut joins = joins.clone();
                joins.insert(*label, params.len());
                self.check_expr(body, scope, &joins);
            }
            Expr::Case {
                scrutinee,
                alts,
                default,
            } => {
                self.check_var(*scrutinee, scope);
                if alts.is_empty() && default.is_none() {
                    self.error(codes::EMPTY_CASE, "case with no arms".to_string());
                }
                let mut seen = HashSet::new();
                for alt in alts {
                    if !seen.insert(alt.tag) {
                        self.error(
                            codes::DUPLICATE_TAG,
                            format!("duplicate case tag {}", alt.tag),
                        );
                    }
                    self.check_expr(&alt.body, scope, joins);
                }
                if let Some(d) = default {
                    self.check_expr(d, scope, joins);
                }
            }
            Expr::Jump { label, args } => {
                for &a in args {
                    self.check_var(a, scope);
                }
                match joins.get(label) {
                    Some(&arity) if arity == args.len() => {}
                    Some(&arity) => self.error(
                        codes::JUMP_ARITY,
                        format!(
                            "jump to j{label} with {} args (expects {arity})",
                            args.len()
                        ),
                    ),
                    None => self.error(
                        codes::UNKNOWN_JOIN,
                        format!("jump to unknown join point j{label}"),
                    ),
                }
            }
            Expr::Ret(v) => self.check_var(*v, scope),
            Expr::Inc { var, body, .. } | Expr::Dec { var, body } => {
                self.check_var(*var, scope);
                self.check_expr(body, scope, joins);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::build::*;
    use crate::parse::parse_program;

    fn single_fn(body: Expr, params: Vec<VarId>, next_var: VarId) -> Program {
        Program {
            fns: vec![FnDef {
                name: "f".into(),
                params,
                body,
                next_var,
                next_join: 8,
            }],
        }
    }

    #[test]
    fn valid_program_passes() {
        let src = r#"
inductive List := Nil | Cons(head, tail)
def length(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => 1 + length(t)
  end
"#;
        let p = parse_program(src).unwrap();
        check_program(&p).unwrap();
    }

    #[test]
    fn out_of_scope_use_rejected() {
        let p = single_fn(ret(5), vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs[0].message.contains("out of scope"));
    }

    #[test]
    fn double_binding_rejected() {
        let body = let_(1, Value::LitInt(1), let_(1, Value::LitInt(2), ret(1)));
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("bound more than once")));
    }

    #[test]
    fn join_capture_rejected() {
        // join j0() = ret x0 — x0 is not a parameter of the join point.
        let body = Expr::LetJoin {
            label: 0,
            params: vec![],
            jp_body: Box::new(ret(0)),
            body: Box::new(Expr::Jump {
                label: 0,
                args: vec![],
            }),
        };
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("not a parameter")));
    }

    #[test]
    fn jump_arity_mismatch_rejected() {
        let body = Expr::LetJoin {
            label: 0,
            params: vec![1],
            jp_body: Box::new(ret(1)),
            body: Box::new(Expr::Jump {
                label: 0,
                args: vec![],
            }),
        };
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("jump to j0")));
    }

    #[test]
    fn unknown_call_rejected() {
        let body = let_(
            1,
            Value::Call {
                func: "ghost".into(),
                args: vec![0],
            },
            ret(1),
        );
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown function")));
    }

    #[test]
    fn builtin_arity_checked() {
        let body = let_(
            1,
            Value::Call {
                func: "lean_nat_add".into(),
                args: vec![0],
            },
            ret(1),
        );
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("expects 2 args")));
    }

    #[test]
    fn unknown_builtin_rejected() {
        let body = let_(
            1,
            Value::Call {
                func: "lean_frobnicate".into(),
                args: vec![0],
            },
            ret(1),
        );
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown builtin")));
    }

    #[test]
    fn duplicate_case_tags_rejected() {
        let body = case(0, vec![(0, ret(0)), (0, ret(0))], None);
        let p = single_fn(body, vec![0], 10);
        let errs = check_program(&p).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("duplicate case tag")));
    }

    #[test]
    fn pap_must_under_apply() {
        let mut p = single_fn(
            let_(
                1,
                Value::Pap {
                    func: "f".into(),
                    args: vec![0],
                },
                ret(1),
            ),
            vec![0],
            10,
        );
        // f has arity 1; pap with 1 arg is not under-applying.
        let errs = check_program(&p).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("under-apply")),
            "{errs:?}"
        );
        // With arity 2 it is fine.
        p.fns[0].params = vec![0, 9];
        p.fns[0].body = let_(
            1,
            Value::Pap {
                func: "f".into(),
                args: vec![0],
            },
            ret(1),
        );
        check_program(&p).unwrap();
    }
}
