//! Modules: collections of functions and globals, plus the symbol interner.

use crate::body::Body;
use crate::ids::{Interner, Symbol};
use crate::types::{Signature, Type};
use std::collections::HashMap;

/// A function: named, typed, and (unless external) carrying a body.
#[derive(Debug, Clone)]
pub struct Function {
    /// The function's global symbol.
    pub name: Symbol,
    /// Parameter and result types.
    pub sig: Signature,
    /// The IR body; `None` for external declarations (runtime functions).
    pub body: Option<Body>,
}

impl Function {
    /// Whether this is an external declaration.
    pub fn is_extern(&self) -> bool {
        self.body.is_none()
    }
}

/// A module-level global slot (top-level closures, Figure 7's `@kslot`).
#[derive(Debug, Clone)]
pub struct Global {
    /// The global's symbol.
    pub name: Symbol,
    /// The slot's type.
    pub ty: Type,
}

/// A compilation unit: functions, globals, interner.
#[derive(Debug, Clone, Default)]
pub struct Module {
    /// Symbol interner shared by everything in the module.
    pub interner: Interner,
    /// Functions in definition order.
    pub funcs: Vec<Function>,
    /// Global slots.
    pub globals: Vec<Global>,
    func_index: HashMap<Symbol, usize>,
    global_index: HashMap<Symbol, usize>,
}

impl Module {
    /// Creates an empty module.
    pub fn new() -> Module {
        Module::default()
    }

    /// Interns a string.
    pub fn intern(&mut self, s: &str) -> Symbol {
        self.interner.intern(s)
    }

    /// Resolves a symbol to its string.
    pub fn name_of(&self, sym: Symbol) -> &str {
        self.interner.resolve(sym)
    }

    /// Adds a function with a body. Returns its symbol.
    ///
    /// # Panics
    ///
    /// Panics if a function with the same name already exists.
    pub fn add_function(&mut self, name: &str, sig: Signature, body: Body) -> Symbol {
        let sym = self.intern(name);
        assert!(
            !self.func_index.contains_key(&sym),
            "duplicate function @{name}"
        );
        self.func_index.insert(sym, self.funcs.len());
        self.funcs.push(Function {
            name: sym,
            sig,
            body: Some(body),
        });
        sym
    }

    /// Declares an external function (resolved by the runtime/linker).
    pub fn declare_extern(&mut self, name: &str, sig: Signature) -> Symbol {
        let sym = self.intern(name);
        if let Some(&i) = self.func_index.get(&sym) {
            assert_eq!(
                self.funcs[i].sig, sig,
                "conflicting redeclaration of @{name}"
            );
            return sym;
        }
        self.func_index.insert(sym, self.funcs.len());
        self.funcs.push(Function {
            name: sym,
            sig,
            body: None,
        });
        sym
    }

    /// Adds a global slot.
    pub fn add_global(&mut self, name: &str, ty: Type) -> Symbol {
        let sym = self.intern(name);
        assert!(
            !self.global_index.contains_key(&sym),
            "duplicate global @{name}"
        );
        self.global_index.insert(sym, self.globals.len());
        self.globals.push(Global { name: sym, ty });
        sym
    }

    /// Looks up a function by symbol.
    pub fn func(&self, sym: Symbol) -> Option<&Function> {
        self.func_index.get(&sym).map(|&i| &self.funcs[i])
    }

    /// Looks up a function mutably.
    pub fn func_mut(&mut self, sym: Symbol) -> Option<&mut Function> {
        self.func_index.get(&sym).map(|&i| &mut self.funcs[i])
    }

    /// Looks up a function by name.
    pub fn func_by_name(&self, name: &str) -> Option<&Function> {
        self.interner.get(name).and_then(|s| self.func(s))
    }

    /// Looks up a global by symbol.
    pub fn global(&self, sym: Symbol) -> Option<&Global> {
        self.global_index.get(&sym).map(|&i| &self.globals[i])
    }

    /// Index of a function in `funcs` (stable identity for the VM).
    pub fn func_position(&self, sym: Symbol) -> Option<usize> {
        self.func_index.get(&sym).copied()
    }

    /// Total live (attached) op count across every function body — the
    /// module-size metric recorded in pass statistics.
    pub fn live_op_count(&self) -> usize {
        self.funcs
            .iter()
            .filter_map(|f| f.body.as_ref())
            .map(|b| b.live_op_count())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_lookup() {
        let mut m = Module::new();
        let (body, _) = Body::new(&[Type::Obj]);
        let sym = m.add_function("foo", Signature::obj(1), body);
        assert!(m.func(sym).is_some());
        assert!(m.func_by_name("foo").is_some());
        assert!(m.func_by_name("bar").is_none());
        assert_eq!(m.func_position(sym), Some(0));
        assert!(!m.func(sym).unwrap().is_extern());
    }

    #[test]
    fn extern_declaration_idempotent() {
        let mut m = Module::new();
        let s1 = m.declare_extern("lean_nat_add", Signature::obj(2));
        let s2 = m.declare_extern("lean_nat_add", Signature::obj(2));
        assert_eq!(s1, s2);
        assert_eq!(m.funcs.len(), 1);
        assert!(m.func(s1).unwrap().is_extern());
    }

    #[test]
    #[should_panic(expected = "duplicate function")]
    fn duplicate_function_panics() {
        let mut m = Module::new();
        let (b1, _) = Body::new(&[]);
        let (b2, _) = Body::new(&[]);
        m.add_function("f", Signature::obj(0), b1);
        m.add_function("f", Signature::obj(0), b2);
    }

    #[test]
    fn globals() {
        let mut m = Module::new();
        let g = m.add_global("kslot", Type::Obj);
        assert_eq!(m.global(g).unwrap().ty, Type::Obj);
        assert_eq!(m.name_of(g), "kslot");
    }
}
