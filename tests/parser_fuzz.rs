//! Invalid-input fuzzing of the `.lssa` text frontend.
//!
//! Takes the checked-in corpus (`tests/corpus/*.lssa` and the bad corpus)
//! as seeds and applies deterministic byte mutations — flips, insertions
//! from an interesting alphabet, deletions, slice duplication, truncation —
//! then feeds the result through the whole frontend: lexer, S-expression
//! reader, lowerer, and the source-level linter. The properties:
//!
//! 1. no input panics any of those stages (errors must be *reported*, not
//!    thrown),
//! 2. every diagnostic carries a code from the frontend's published
//!    families (`E00xx` lexical/structural, `E01xx` wellformedness) — the
//!    codes tooling is allowed to match on,
//! 3. a clean report means a program was actually produced, and
//!    rendering never panics in either format.

use lambda_ssa::syntax;
use proptest::prelude::*;
use std::path::Path;
use std::sync::OnceLock;

/// Deterministic 64-bit LCG (MMIX constants) — the mutation stream must be
/// reproducible from the proptest seed alone.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 33
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n.max(1) as u64) as usize
    }
}

/// Bytes that exercise the lexer's interesting paths: structure, token
/// prefixes, digits, string syntax, comments, and some raw noise.
const ALPHABET: &[u8] = b"()xj0123456789 \n\t\"\\defcaseletjoinjumpretincbig;\0\xff";

fn seeds() -> &'static Vec<String> {
    static SEEDS: OnceLock<Vec<String>> = OnceLock::new();
    SEEDS.get_or_init(|| {
        let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
        let mut out = Vec::new();
        for dir in [root.clone(), root.join("bad"), root.join("bad/lint")] {
            let mut files: Vec<_> = std::fs::read_dir(&dir)
                .expect("corpus dir")
                .map(|e| e.expect("entry").path())
                .filter(|p| p.extension().is_some_and(|e| e == "lssa") && p.is_file())
                .collect();
            files.sort();
            for f in files {
                out.push(std::fs::read_to_string(&f).expect("read seed"));
            }
        }
        assert!(out.len() >= 14, "seed corpus too small: {}", out.len());
        out
    })
}

/// Applies `count` random byte mutations to `src`.
fn mutate(src: &str, rng: &mut Lcg, count: usize) -> String {
    let mut bytes = src.as_bytes().to_vec();
    for _ in 0..count {
        if bytes.is_empty() {
            bytes.push(ALPHABET[rng.below(ALPHABET.len())]);
            continue;
        }
        match rng.below(5) {
            0 => {
                let i = rng.below(bytes.len());
                bytes[i] = ALPHABET[rng.below(ALPHABET.len())];
            }
            1 => {
                let i = rng.below(bytes.len() + 1);
                bytes.insert(i, ALPHABET[rng.below(ALPHABET.len())]);
            }
            2 => {
                let i = rng.below(bytes.len());
                bytes.remove(i);
            }
            3 => {
                // Duplicate a short slice somewhere else (repeats parens,
                // half-formed tokens, etc.).
                let start = rng.below(bytes.len());
                let len = (rng.below(16) + 1).min(bytes.len() - start);
                let slice: Vec<u8> = bytes[start..start + len].to_vec();
                let at = rng.below(bytes.len() + 1);
                bytes.splice(at..at, slice);
            }
            _ => {
                // Truncate: unterminated everything.
                bytes.truncate(rng.below(bytes.len()));
            }
        }
    }
    String::from_utf8_lossy(&bytes).into_owned()
}

/// Largest char boundary ≤ `i` (the corpus is ASCII, but mutations under
/// `from_utf8_lossy` can leave multi-byte replacement chars behind).
fn floor_boundary(s: &str, mut i: usize) -> usize {
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

fn check_families(src: &str) -> Result<(), TestCaseError> {
    let outcome = syntax::parse_source(src);
    for d in &outcome.diagnostics {
        prop_assert!(
            d.code.starts_with("E00") || d.code.starts_with("E01"),
            "frontend reported a non-frontend code {}: {}",
            d.code,
            d.message
        );
        prop_assert_eq!(d.severity, syntax::Severity::Error);
    }
    if outcome.diagnostics.is_empty() {
        prop_assert!(
            outcome.program.is_some(),
            "clean report but no program:\n{}",
            src
        );
    }
    // Rendering must hold up on arbitrary mutated content (escaping).
    for format in [syntax::RenderFormat::Human, syntax::RenderFormat::Json] {
        let _ = syntax::render_all(&outcome.diagnostics, "fuzz.lssa", src, format);
    }
    // The source-level linter sees the same arbitrary trees; it must skip
    // what it cannot understand, never panic.
    let _ = syntax::lint_source(src);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(feature = "slow-tests") { 512 } else { 128 },
        .. ProptestConfig::default()
    })]

    /// Corpus files survive arbitrary byte mutations without panicking and
    /// with diagnostics only from the published code families.
    #[test]
    fn mutated_corpus_never_panics_the_frontend(seed in any::<u64>()) {
        let seeds = seeds();
        let mut rng = Lcg(seed ^ 0x9e37_79b9_7f4a_7c15);
        let src = &seeds[rng.below(seeds.len())];
        let mutations = rng.below(12) + 1;
        let mutated = mutate(src, &mut rng, mutations);
        check_families(&mutated)?;
    }

    /// Splicing two corpus files at random cut points — cross-file
    /// structure mismatches, half defs, duplicated names.
    #[test]
    fn spliced_corpus_never_panics_the_frontend(seed in any::<u64>()) {
        let seeds = seeds();
        let mut rng = Lcg(seed ^ 0x5851_f42d_4c95_7f2d);
        let a = &seeds[rng.below(seeds.len())];
        let b = &seeds[rng.below(seeds.len())];
        let cut_a = floor_boundary(a, rng.below(a.len() + 1));
        let cut_b = floor_boundary(b, rng.below(b.len() + 1));
        let mut spliced = String::new();
        spliced.push_str(&a[..cut_a]);
        spliced.push_str(&b[cut_b..]);
        check_families(&spliced)?;
    }
}

/// The un-mutated seeds themselves: every corpus file either checks clean
/// or reports only family codes (the bad corpus does both by design).
#[test]
fn unmutated_seeds_report_only_family_codes() {
    for src in seeds() {
        check_families(src).expect("seed corpus");
    }
}
