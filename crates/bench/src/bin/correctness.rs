//! §V-A correctness: runs the full conformance corpus (the analogue of the
//! LEAN test suite's 648 cases) differentially across all pipelines and
//! prints the pass rate.
//!
//! ```text
//! cargo run --release -p lssa-bench --bin correctness [-- --count 648] [--jobs N]
//! ```
//!
//! Cases are sharded across `--jobs` worker threads (default: one per core)
//! by the shared batch executor (`lssa_driver::par`). Results — the pass /
//! fail set and the printed failure order — are identical for any `--jobs`
//! value; per-shard progress goes to stderr as chunks complete.
//!
//! Exit codes: `0` all tests passed (or none selected), `1` at least one
//! failure, `2` bad command-line arguments.

use lssa_driver::conformance::full_corpus;
use lssa_driver::diff::run_differential;
use lssa_driver::par::{available_jobs, BatchRunner};
use std::process::ExitCode;

const MAX_STEPS: u64 = 500_000_000;
const DEFAULT_COUNT: usize = 648;
const CORPUS_SEED: u64 = 0x5e5a_2022;

struct Options {
    /// Exactly how many corpus cases to run.
    count: usize,
    /// Worker threads.
    jobs: usize,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        count: DEFAULT_COUNT,
        jobs: available_jobs(),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--count" | "--jobs" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("`{flag}` needs a value"))?;
                let parsed: usize = value
                    .parse()
                    .map_err(|_| format!("`{flag}` needs a non-negative integer, got `{value}`"))?;
                match flag {
                    "--count" => opts.count = parsed,
                    _ => {
                        if parsed == 0 {
                            return Err("`--jobs` must be at least 1".to_string());
                        }
                        opts.jobs = parsed;
                    }
                }
                i += 2;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("usage: correctness [--count N] [--jobs N]");
            return ExitCode::from(2);
        }
    };
    if opts.count == 0 {
        println!("0 tests selected, nothing to run (use --count N)");
        return ExitCode::SUCCESS;
    }
    let mut corpus = full_corpus(opts.count, CORPUS_SEED);
    corpus.truncate(opts.count);
    let total = corpus.len();
    // Progress callbacks race across workers; printing under a max-seen
    // lock keeps the displayed count monotone.
    let printed = std::sync::Mutex::new(0usize);
    let report = BatchRunner::new().with_jobs(opts.jobs).run_with_progress(
        &corpus,
        |case| {
            let r = run_differential(&case.name, &case.src, MAX_STEPS);
            match r.failure {
                None => Ok(()),
                Some(why) => Err((case.name.clone(), why)),
            }
        },
        |done, total| {
            let mut seen = printed.lock().unwrap();
            if done > *seen {
                *seen = done;
                eprintln!("[correctness] {done}/{total} cases");
            }
        },
    );
    let failed = report.failed();
    // Integer division floors, so "100%" is printed only when every test
    // actually passed (647/648 must not round up to a contradictory 100%).
    println!(
        "{}% tests passed, {} tests failed out of {}",
        100 * report.passed() / total,
        failed,
        total
    );
    eprintln!(
        "-- {total} cases in {:.2}s wall ({:.2}s of job time across {} threads)",
        report.wall_time.as_secs_f64(),
        report.total_job_time().as_secs_f64(),
        report.jobs
    );
    // Failures print in deterministic input order regardless of --jobs.
    for (_, (name, why)) in report.failures() {
        println!("FAIL {name}: {why}");
    }
    if failed == 0 {
        println!("(paper: \"100% tests passed, 0 tests failed out of 648\")");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
