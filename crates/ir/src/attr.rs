//! Operation attributes: compile-time constants attached to operations.

use crate::ids::Symbol;
use std::fmt;
use std::str::FromStr;

/// Integer comparison predicates (for `arith.cmpi`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CmpPred {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Slt,
    /// Signed less-or-equal.
    Sle,
    /// Signed greater-than.
    Sgt,
    /// Signed greater-or-equal.
    Sge,
}

impl CmpPred {
    /// Evaluates the predicate on two signed integers.
    pub fn eval(self, a: i64, b: i64) -> bool {
        match self {
            CmpPred::Eq => a == b,
            CmpPred::Ne => a != b,
            CmpPred::Slt => a < b,
            CmpPred::Sle => a <= b,
            CmpPred::Sgt => a > b,
            CmpPred::Sge => a >= b,
        }
    }

    /// The predicate with swapped operand order (`a ? b` ⇔ `b ?' a`).
    pub fn swapped(self) -> CmpPred {
        match self {
            CmpPred::Eq => CmpPred::Eq,
            CmpPred::Ne => CmpPred::Ne,
            CmpPred::Slt => CmpPred::Sgt,
            CmpPred::Sle => CmpPred::Sge,
            CmpPred::Sgt => CmpPred::Slt,
            CmpPred::Sge => CmpPred::Sle,
        }
    }
}

impl fmt::Display for CmpPred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CmpPred::Eq => "eq",
            CmpPred::Ne => "ne",
            CmpPred::Slt => "slt",
            CmpPred::Sle => "sle",
            CmpPred::Sgt => "sgt",
            CmpPred::Sge => "sge",
        };
        f.write_str(s)
    }
}

/// Error parsing a [`CmpPred`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePredError(pub String);

impl fmt::Display for ParsePredError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown comparison predicate `{}`", self.0)
    }
}

impl std::error::Error for ParsePredError {}

impl FromStr for CmpPred {
    type Err = ParsePredError;

    fn from_str(s: &str) -> Result<CmpPred, ParsePredError> {
        match s {
            "eq" => Ok(CmpPred::Eq),
            "ne" => Ok(CmpPred::Ne),
            "slt" => Ok(CmpPred::Slt),
            "sle" => Ok(CmpPred::Sle),
            "sgt" => Ok(CmpPred::Sgt),
            "sge" => Ok(CmpPred::Sge),
            other => Err(ParsePredError(other.to_string())),
        }
    }
}

/// An attribute value.
///
/// `Default` (`Int(0)`) exists only so attribute pairs can occupy unused
/// [`crate::inline_vec::InlineVec`] buffer slots; it has no semantic meaning.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Attr {
    /// An integer constant.
    Int(i64),
    /// A string constant (e.g. a big-integer literal). Stored as `Box<str>`
    /// — attributes are immutable once attached, so carrying a `String`'s
    /// spare capacity (and third word) in every `OpData` would be waste.
    Str(Box<str>),
    /// A symbol reference (`@foo`).
    Sym(Symbol),
    /// A list of integers (e.g. `lp.switch` case values). Stored as
    /// `Box<[i64]>` for the same reason as [`Attr::Str`]: the list is
    /// immutable once attached, so a `Vec`'s capacity word would ride in
    /// every `OpData` attribute slot for nothing.
    IntList(Box<[i64]>),
    /// A comparison predicate.
    Pred(CmpPred),
}

impl Default for Attr {
    fn default() -> Attr {
        Attr::Int(0)
    }
}

impl Attr {
    /// Reads an integer attribute.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Attr::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Reads a string attribute.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Attr::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Reads a symbol attribute.
    pub fn as_sym(&self) -> Option<Symbol> {
        match self {
            Attr::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// Reads an integer-list attribute.
    pub fn as_int_list(&self) -> Option<&[i64]> {
        match self {
            Attr::IntList(v) => Some(v),
            _ => None,
        }
    }

    /// Reads a predicate attribute.
    pub fn as_pred(&self) -> Option<CmpPred> {
        match self {
            Attr::Pred(p) => Some(*p),
            _ => None,
        }
    }
}

/// Well-known attribute keys.
///
/// A closed key set (rather than arbitrary interned names) keeps attribute
/// lookup allocation-free and the printer total.
///
/// `Default` (`Value`) exists only for inline attribute buffers (see
/// [`Attr`]'s `Default`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AttrKey {
    /// Constant value (`arith.constant`, `lp.int`).
    #[default]
    Value,
    /// Constructor tag (`lp.construct`).
    Tag,
    /// Projection index (`lp.project`).
    Index,
    /// Callee symbol (`func.call`, `lp.pap`).
    Callee,
    /// Switch case values.
    Cases,
    /// Comparison predicate.
    Pred,
    /// Join-point label.
    Label,
    /// Global symbol (`lp.global.load` / `lp.global.store`).
    Global,
    /// Callee arity (`lp.pap` — how many parameters the callee has).
    Arity,
    /// Borrowed argument positions of a `func.call` to an extern builtin
    /// (bitmask, bit *i* = operand *i*). Set by the rc-opt pass when it
    /// folds an `lp.inc` of the argument into the call: the VM retains
    /// the marked arguments as part of the call instruction itself.
    BorrowMask,
}

impl AttrKey {
    /// The textual spelling.
    pub fn name(self) -> &'static str {
        match self {
            AttrKey::Value => "value",
            AttrKey::Tag => "tag",
            AttrKey::Index => "index",
            AttrKey::Callee => "callee",
            AttrKey::Cases => "cases",
            AttrKey::Pred => "pred",
            AttrKey::Label => "label",
            AttrKey::Global => "global",
            AttrKey::Arity => "arity",
            AttrKey::BorrowMask => "borrow_mask",
        }
    }

    /// All keys (for the parser).
    pub const ALL: &'static [AttrKey] = &[
        AttrKey::Value,
        AttrKey::Tag,
        AttrKey::Index,
        AttrKey::Callee,
        AttrKey::Cases,
        AttrKey::Pred,
        AttrKey::Label,
        AttrKey::Global,
        AttrKey::Arity,
        AttrKey::BorrowMask,
    ];
}

impl fmt::Display for AttrKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AttrKey {
    type Err = ParsePredError;

    fn from_str(s: &str) -> Result<AttrKey, ParsePredError> {
        AttrKey::ALL
            .iter()
            .copied()
            .find(|k| k.name() == s)
            .ok_or_else(|| ParsePredError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_eval() {
        assert!(CmpPred::Eq.eval(3, 3));
        assert!(CmpPred::Ne.eval(3, 4));
        assert!(CmpPred::Slt.eval(-1, 0));
        assert!(CmpPred::Sle.eval(0, 0));
        assert!(CmpPred::Sgt.eval(5, -5));
        assert!(CmpPred::Sge.eval(5, 5));
        assert!(!CmpPred::Slt.eval(0, -1));
    }

    #[test]
    fn pred_swapped_consistent() {
        for p in [
            CmpPred::Eq,
            CmpPred::Ne,
            CmpPred::Slt,
            CmpPred::Sle,
            CmpPred::Sgt,
            CmpPred::Sge,
        ] {
            for (a, b) in [(1, 2), (2, 1), (3, 3)] {
                assert_eq!(p.eval(a, b), p.swapped().eval(b, a), "{p} {a} {b}");
            }
        }
    }

    #[test]
    fn pred_parse_round_trip() {
        for p in ["eq", "ne", "slt", "sle", "sgt", "sge"] {
            assert_eq!(p.parse::<CmpPred>().unwrap().to_string(), p);
        }
        assert!("ult".parse::<CmpPred>().is_err());
    }

    #[test]
    fn attr_accessors() {
        assert_eq!(Attr::Int(5).as_int(), Some(5));
        assert_eq!(Attr::Int(5).as_str(), None);
        assert_eq!(Attr::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Attr::Sym(Symbol(2)).as_sym(), Some(Symbol(2)));
        assert_eq!(
            Attr::IntList(vec![1, 2].into()).as_int_list(),
            Some(&[1i64, 2][..])
        );
        assert_eq!(Attr::Pred(CmpPred::Eq).as_pred(), Some(CmpPred::Eq));
    }

    #[test]
    fn attr_stays_compact() {
        // Both variable-length payloads (`Str`, `IntList`) are boxed
        // slices: two words of payload, three words total. A reintroduced
        // `Vec`/`String` (third capacity word) would regress every
        // `OpData`'s inline attribute buffer — catch it here.
        assert_eq!(std::mem::size_of::<Attr>(), 24);
    }

    #[test]
    fn attr_key_round_trip() {
        for &k in AttrKey::ALL {
            assert_eq!(k.name().parse::<AttrKey>().unwrap(), k);
        }
    }
}
