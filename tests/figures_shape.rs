//! Shape checks for the evaluation figures: the reproduced numbers must
//! show the same *qualitative* result as the paper even at test scale,
//! using the deterministic instruction-count metric (wall time is checked
//! by the bench harness).

use lambda_ssa::driver::pipelines::{compile, CompilerConfig};
use lambda_ssa::driver::workloads::{all, Scale};

const MAX_STEPS: u64 = 500_000_000;

fn instructions(src: &str, config: CompilerConfig) -> u64 {
    let program = compile(src, config).unwrap();
    lambda_ssa::vm::run_program(&program, "main", MAX_STEPS)
        .unwrap()
        .stats
        .instructions
}

#[test]
fn fig9_shape_performance_parity() {
    // Paper: geomean 1.09× — parity. Here: the instruction-count ratio of
    // baseline/mlir must be close to 1 on every benchmark (within ±40%)
    // and the geomean within ±20%.
    let mut ratios = Vec::new();
    for w in all(Scale::Test) {
        let base = instructions(&w.src, CompilerConfig::leanc()) as f64;
        let mlir = instructions(&w.src, CompilerConfig::mlir()) as f64;
        let ratio = base / mlir;
        assert!(
            (0.6..=1.67).contains(&ratio),
            "{}: baseline/mlir instruction ratio {ratio:.2} is far from parity",
            w.name
        );
        ratios.push(ratio);
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        (0.8..=1.25).contains(&geomean),
        "geomean {geomean:.2} breaks the parity claim"
    );
}

#[test]
fn fig10_shape_rgn_matches_simplifier() {
    // Paper: geomean 1.0× between the rgn pipeline on raw λrc and the
    // λrc-simplifier pipeline. Same tolerance discipline as Figure 9.
    let mut ratios = Vec::new();
    for w in all(Scale::Test) {
        let a = instructions(&w.src, CompilerConfig::mlir()) as f64;
        let b = instructions(&w.src, CompilerConfig::rgn_only()) as f64;
        let ratio = a / b;
        assert!(
            (0.6..=1.67).contains(&ratio),
            "{}: rgn-vs-simplifier instruction ratio {ratio:.2} far from parity",
            w.name
        );
        ratios.push(ratio);
    }
    let geomean = (ratios.iter().map(|r| r.ln()).sum::<f64>() / ratios.len() as f64).exp();
    assert!(
        (0.85..=1.18).contains(&geomean),
        "geomean {geomean:.2} breaks the Figure 10 parity claim"
    );
}

#[test]
fn optimizations_never_hurt_much_nor_explode_code() {
    // The unoptimized pipeline must not beat the optimized one by a large
    // margin anywhere (optimizations can be neutral, not harmful).
    for w in all(Scale::Test) {
        let opt = instructions(&w.src, CompilerConfig::mlir()) as f64;
        let raw = instructions(&w.src, CompilerConfig::none()) as f64;
        assert!(
            opt <= raw * 1.15,
            "{}: optimized pipeline executes {opt} instrs vs {raw} unoptimized",
            w.name
        );
    }
}

#[test]
fn region_optimizations_shrink_static_code() {
    // Static effect of §IV-B: with region opts the compiled code is never
    // larger than without, and shrinks somewhere.
    let mut shrank = false;
    for w in all(Scale::Test) {
        let with = compile(&w.src, CompilerConfig::rgn_only())
            .unwrap()
            .code_size();
        let without = compile(
            &w.src,
            CompilerConfig {
                simplify: Some(lambda_ssa::lambda::SimplifyOptions::without_simpcase()),
                backend: lambda_ssa::driver::Backend::Mlir(
                    lambda_ssa::core::PipelineOptions::no_opt(),
                ),
            },
        )
        .unwrap()
        .code_size();
        // Allow a tiny slack: selector materialization can trade one
        // instruction shape for another (qsort gains a single move).
        assert!(
            with <= without + 3,
            "{}: region opts grew code {with} > {without}",
            w.name
        );
        if with < without {
            shrank = true;
        }
    }
    assert!(shrank, "region opts had no static effect on any benchmark");
}
