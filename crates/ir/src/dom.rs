//! Dominator trees for region CFGs.
//!
//! Each region is a single-entry sub-CFG; dominance inside one region is
//! computed with the Cooper–Harvey–Kennedy iterative algorithm. Cross-region
//! visibility (a nested region sees values of enclosing regions) is resolved
//! by [`DomInfo::value_dominates_op`], mirroring MLIR's dominance rules.

use crate::body::{Body, ValueDef};
use crate::ids::{BlockId, OpId, RegionId, ValueId};
use std::collections::HashMap;

/// Dominator tree for one region.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// Immediate dominator per block (entry maps to itself).
    idom: HashMap<BlockId, BlockId>,
    /// Reverse-postorder index (used for intersection).
    rpo_index: HashMap<BlockId, usize>,
    /// The region's entry block.
    entry: BlockId,
}

impl DomTree {
    /// Computes the dominator tree for `region` of `body`.
    pub fn compute(body: &Body, region: RegionId) -> DomTree {
        let blocks = &body.regions[region.index()].blocks;
        let entry = blocks[0];
        // Successor map.
        let succs = |b: BlockId| -> Vec<BlockId> {
            match body.terminator(b) {
                Some(t) => body.ops[t.index()]
                    .successors
                    .iter()
                    .map(|s| s.block)
                    .collect(),
                None => Vec::new(),
            }
        };
        // Reverse postorder.
        let mut visited = std::collections::HashSet::new();
        let mut postorder = Vec::new();
        // Iterative DFS with explicit stack.
        let mut stack = vec![(entry, 0usize)];
        visited.insert(entry);
        let mut succ_cache: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        while let Some(&mut (b, ref mut i)) = stack.last_mut() {
            let ss = succ_cache.entry(b).or_insert_with(|| succs(b));
            if *i < ss.len() {
                let s = ss[*i];
                *i += 1;
                if visited.insert(s) {
                    stack.push((s, 0));
                }
            } else {
                postorder.push(b);
                stack.pop();
            }
        }
        let rpo: Vec<BlockId> = postorder.iter().rev().copied().collect();
        let rpo_index: HashMap<BlockId, usize> =
            rpo.iter().enumerate().map(|(i, &b)| (b, i)).collect();
        // Predecessor map (reachable blocks only).
        let mut preds: HashMap<BlockId, Vec<BlockId>> = HashMap::new();
        for &b in &rpo {
            for s in succ_cache.get(&b).cloned().unwrap_or_default() {
                preds.entry(s).or_default().push(b);
            }
        }
        // Iterative idom fixpoint.
        let mut idom: HashMap<BlockId, BlockId> = HashMap::new();
        idom.insert(entry, entry);
        let intersect = |idom: &HashMap<BlockId, BlockId>,
                         rpo_index: &HashMap<BlockId, usize>,
                         mut a: BlockId,
                         mut b: BlockId| {
            while a != b {
                while rpo_index[&a] > rpo_index[&b] {
                    a = idom[&a];
                }
                while rpo_index[&b] > rpo_index[&a] {
                    b = idom[&b];
                }
            }
            a
        };
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds.get(&b).map(|v| v.as_slice()).unwrap_or(&[]) {
                    if !idom.contains_key(&p) {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_index, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom.get(&b) != Some(&ni) {
                        idom.insert(b, ni);
                        changed = true;
                    }
                }
            }
        }
        DomTree {
            idom,
            rpo_index,
            entry,
        }
    }

    /// Whether `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        if !self.rpo_index.contains_key(&b) {
            // Unreachable blocks are dominated by everything by convention.
            return true;
        }
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            if cur == self.entry {
                return false;
            }
            match self.idom.get(&cur) {
                Some(&next) if next != cur => cur = next,
                _ => return false,
            }
        }
    }

    /// Whether `b` is reachable from the region entry.
    pub fn is_reachable(&self, b: BlockId) -> bool {
        self.rpo_index.contains_key(&b)
    }
}

/// Dominance info for a whole body (all regions).
#[derive(Debug)]
pub struct DomInfo {
    trees: HashMap<RegionId, DomTree>,
}

impl DomInfo {
    /// Computes dominance for every region in `body`.
    pub fn compute(body: &Body) -> DomInfo {
        let mut trees = HashMap::new();
        for (i, r) in body.regions.iter().enumerate() {
            if r.blocks.is_empty() {
                continue;
            }
            let id = RegionId(i as u32);
            trees.insert(id, DomTree::compute(body, id));
        }
        DomInfo { trees }
    }

    /// The tree for `region`, if it has blocks.
    pub fn tree(&self, region: RegionId) -> Option<&DomTree> {
        self.trees.get(&region)
    }

    /// Whether the definition of `v` properly dominates `user` — including
    /// the cross-region rule (values of enclosing regions are visible inside
    /// nested regions).
    pub fn value_dominates_op(&self, body: &Body, v: ValueId, user: OpId) -> bool {
        let Some(def_block) = body.defining_block(v) else {
            return false;
        };
        let def_region = body.block_region(def_block);
        // Hoist the user to the ancestor at the def's region level.
        let mut user_op = user;
        let mut user_block = match body.ops[user.index()].parent {
            Some(b) => b,
            None => return false,
        };
        loop {
            let user_region = body.block_region(user_block);
            if user_region == def_region {
                break;
            }
            match body.regions[user_region.index()].parent {
                Some(parent_op) => {
                    user_op = parent_op;
                    user_block = match body.ops[parent_op.index()].parent {
                        Some(b) => b,
                        None => return false,
                    };
                }
                None => return false, // def nested deeper than use: not visible
            }
        }
        if user_block == def_block {
            match body.values[v.index()].def {
                ValueDef::BlockArg(..) => true,
                ValueDef::OpResult(def_op, _) => {
                    if def_op == user_op {
                        return false;
                    }
                    let ops = &body.blocks[def_block.index()].ops;
                    let di = ops.iter().position(|&o| o == def_op);
                    let ui = ops.iter().position(|&o| o == user_op);
                    matches!((di, ui), (Some(d), Some(u)) if d < u)
                }
            }
        } else {
            match self.tree(def_region) {
                Some(t) => t.dominates(def_block, user_block),
                None => false,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::body::ROOT_REGION;
    use crate::builder::Builder;
    use crate::types::Type;

    #[test]
    fn diamond_dominance() {
        // entry -> a, b; a -> join; b -> join.
        let (mut body, params) = Body::new(&[Type::I1]);
        let entry = body.entry_block();
        let a = body.new_block(ROOT_REGION, &[]);
        let b = body.new_block(ROOT_REGION, &[]);
        let join = body.new_block(ROOT_REGION, &[]);
        let mut bu = Builder::at_end(&mut body, entry);
        bu.cond_br(params[0], (a, vec![]), (b, vec![]));
        Builder::at_end(&mut body, a).br(join, vec![]);
        Builder::at_end(&mut body, b).br(join, vec![]);
        let mut bj = Builder::at_end(&mut body, join);
        let c = bj.const_i(0, Type::I64);
        bj.ret(c);
        let t = DomTree::compute(&body, ROOT_REGION);
        assert!(t.dominates(entry, join));
        assert!(t.dominates(entry, a));
        assert!(!t.dominates(a, join));
        assert!(!t.dominates(b, join));
        assert!(t.dominates(join, join));
        assert!(t.is_reachable(join));
    }

    #[test]
    fn chain_dominance() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let b1 = body.new_block(ROOT_REGION, &[]);
        let b2 = body.new_block(ROOT_REGION, &[]);
        Builder::at_end(&mut body, entry).br(b1, vec![]);
        Builder::at_end(&mut body, b1).br(b2, vec![]);
        let mut b = Builder::at_end(&mut body, b2);
        let c = b.const_i(0, Type::I64);
        b.ret(c);
        let t = DomTree::compute(&body, ROOT_REGION);
        assert!(t.dominates(b1, b2));
        assert!(t.dominates(entry, b2));
        assert!(!t.dominates(b2, b1));
    }

    #[test]
    fn unreachable_block() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let dead = body.new_block(ROOT_REGION, &[]);
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(0, Type::I64);
        b.ret(c);
        let mut bd = Builder::at_end(&mut body, dead);
        bd.unreachable();
        let t = DomTree::compute(&body, ROOT_REGION);
        assert!(!t.is_reachable(dead));
    }

    #[test]
    fn same_block_def_use_order() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(1, Type::I64);
        let s = b.addi(c, c);
        b.ret(s);
        let info = DomInfo::compute(&body);
        let add_op = body.defining_op(s).unwrap();
        let const_op = body.defining_op(c).unwrap();
        assert!(info.value_dominates_op(&body, c, add_op));
        assert!(!info.value_dominates_op(&body, s, const_op));
    }

    #[test]
    fn outer_value_visible_in_nested_region() {
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let (rv, inner) = b.rgn_val(&[]);
        let mut ib = Builder::at_end(&mut body, inner);
        // Uses the outer function parameter inside the region.
        let ret_op = ib.lp_ret(params[0]);
        let mut b = Builder::at_end(&mut body, entry);
        b.rgn_run(rv, vec![]);
        let info = DomInfo::compute(&body);
        assert!(info.value_dominates_op(&body, params[0], ret_op));
    }

    #[test]
    fn inner_value_not_visible_outside() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let (rv, inner) = b.rgn_val(&[]);
        let mut ib = Builder::at_end(&mut body, inner);
        let hidden = ib.lp_int(5);
        ib.lp_ret(hidden);
        let mut b = Builder::at_end(&mut body, entry);
        let run = b.rgn_run(rv, vec![]);
        let info = DomInfo::compute(&body);
        assert!(!info.value_dominates_op(&body, hidden, run));
    }
}
