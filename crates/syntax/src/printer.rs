//! The canonical `.lssa` formatter.
//!
//! The layout is fixed (two-space indent, `let`/`inc`/`dec` chains printed as
//! flat sequences rather than stair-stepped nesting, small case arms inline),
//! so formatting is idempotent and `parse(print(p)) == p` for every program
//! the lowering in [`lssa_lambda::parse`] can produce — including the
//! `next_var`/`next_join` bounds, which the parser reconstructs as one past
//! the highest mentioned id.

use lssa_lambda::ast::{Expr, FnDef, Program, Value};

/// Prints a whole program in canonical form, one blank line between
/// functions, with a trailing newline.
pub fn print_program(p: &Program) -> String {
    let mut out = String::new();
    for (i, f) in p.fns.iter().enumerate() {
        if i > 0 {
            out.push('\n');
        }
        write_fn_def(&mut out, f);
        out.push('\n');
    }
    out
}

/// Prints one function definition (no trailing newline).
pub fn print_fn_def(f: &FnDef) -> String {
    let mut out = String::new();
    write_fn_def(&mut out, f);
    out
}

/// Parses `src` leniently and reprints it canonically.
///
/// Wellformedness problems do not block formatting (the tree is still
/// complete); only syntax errors do.
///
/// # Errors
///
/// Returns the diagnostics when the source is syntactically broken and no
/// complete tree could be recovered.
pub fn format_source(src: &str) -> Result<String, Vec<crate::diag::Diagnostic>> {
    let outcome = crate::parse::parse_source(src);
    match outcome.program {
        Some(p) => Ok(print_program(&p)),
        None => Err(outcome.diagnostics),
    }
}

fn write_fn_def(out: &mut String, f: &FnDef) {
    out.push_str("(def ");
    write_name(out, &f.name);
    out.push_str(" (");
    for (i, p) in f.params.iter().enumerate() {
        if i > 0 {
            out.push(' ');
        }
        out.push('x');
        out.push_str(&p.to_string());
    }
    out.push_str(")\n  ");
    write_expr(out, &f.body, 2);
    out.push(')');
}

fn pad(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push(' ');
    }
}

/// Whether an expression is small enough to sit inline in a case arm.
fn inline_ok(e: &Expr) -> bool {
    matches!(e, Expr::Ret(_) | Expr::Jump { .. })
}

fn write_expr(out: &mut String, e: &Expr, indent: usize) {
    use std::fmt::Write;
    match e {
        Expr::Let { var, val, body } => {
            let _ = write!(out, "(let x{var} ");
            write_value(out, val);
            out.push('\n');
            pad(out, indent);
            write_expr(out, body, indent);
            out.push(')');
        }
        Expr::LetJoin {
            label,
            params,
            jp_body,
            body,
        } => {
            let _ = write!(out, "(join j{label} (");
            for (i, p) in params.iter().enumerate() {
                if i > 0 {
                    out.push(' ');
                }
                let _ = write!(out, "x{p}");
            }
            out.push_str(")\n");
            pad(out, indent + 2);
            write_expr(out, jp_body, indent + 2);
            out.push('\n');
            pad(out, indent);
            write_expr(out, body, indent);
            out.push(')');
        }
        Expr::Case {
            scrutinee,
            alts,
            default,
        } => {
            let _ = write!(out, "(case x{scrutinee}");
            for alt in alts {
                out.push('\n');
                pad(out, indent + 2);
                let _ = write!(out, "({}", alt.tag);
                write_arm_body(out, &alt.body, indent + 2);
            }
            if let Some(d) = default {
                out.push('\n');
                pad(out, indent + 2);
                out.push_str("(else");
                write_arm_body(out, d, indent + 2);
            }
            out.push(')');
        }
        Expr::Jump { label, args } => {
            let _ = write!(out, "(jump j{label}");
            for a in args {
                let _ = write!(out, " x{a}");
            }
            out.push(')');
        }
        Expr::Ret(v) => {
            let _ = write!(out, "(ret x{v})");
        }
        Expr::Inc { var, n, body } => {
            let _ = writeln!(out, "(inc x{var} {n}");
            pad(out, indent);
            write_expr(out, body, indent);
            out.push(')');
        }
        Expr::Dec { var, body } => {
            let _ = writeln!(out, "(dec x{var}");
            pad(out, indent);
            write_expr(out, body, indent);
            out.push(')');
        }
    }
}

/// Writes a case-arm body: inline when tiny, indented on its own line
/// otherwise. `indent` is the arm's indent.
fn write_arm_body(out: &mut String, body: &Expr, indent: usize) {
    if inline_ok(body) {
        out.push(' ');
        write_expr(out, body, indent);
    } else {
        out.push('\n');
        pad(out, indent + 2);
        write_expr(out, body, indent + 2);
    }
    out.push(')');
}

fn write_value(out: &mut String, v: &Value) {
    use std::fmt::Write;
    match v {
        Value::Var(x) => {
            let _ = write!(out, "x{x}");
        }
        Value::LitInt(n) => {
            let _ = write!(out, "{n}");
        }
        Value::LitBig(digits) => {
            if !digits.is_empty() && digits.bytes().all(|b| b.is_ascii_digit()) {
                let _ = write!(out, "(big {digits})");
            } else {
                // Ill-formed payloads survive formatting via the quoted form.
                out.push_str("(big ");
                write_string(out, digits);
                out.push(')');
            }
        }
        Value::LitStr(s) => write_string(out, s),
        Value::Ctor { tag, args } => {
            let _ = write!(out, "(ctor {tag}");
            for a in args {
                let _ = write!(out, " x{a}");
            }
            out.push(')');
        }
        Value::Proj { var, idx } => {
            let _ = write!(out, "(proj {idx} x{var})");
        }
        Value::Call { func, args } => {
            out.push_str("(call ");
            write_name(out, func);
            for a in args {
                let _ = write!(out, " x{a}");
            }
            out.push(')');
        }
        Value::Pap { func, args } => {
            out.push_str("(pap ");
            write_name(out, func);
            for a in args {
                let _ = write!(out, " x{a}");
            }
            out.push(')');
        }
        Value::App { closure, args } => {
            let _ = write!(out, "(app x{closure}");
            for a in args {
                let _ = write!(out, " x{a}");
            }
            out.push(')');
        }
    }
}

/// Whether `name` can be printed as a bare atom and read back unchanged.
fn bare_ok(name: &str) -> bool {
    !name.is_empty()
        && name
            .bytes()
            .all(|b| (0x21..0x7f).contains(&b) && !matches!(b, b'(' | b')' | b'"' | b';'))
}

fn write_name(out: &mut String, name: &str) {
    if bare_ok(name) {
        out.push_str(name);
    } else {
        write_string(out, name);
    }
}

/// Writes a string literal with canonical (ASCII-only) escaping; the lexer
/// decodes every escape emitted here.
fn write_string(out: &mut String, s: &str) {
    use std::fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (' '..='~').contains(&c) => out.push(c),
            c => {
                let _ = write!(out, "\\u{{{:x}}}", c as u32);
            }
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use lssa_lambda::ast::build;

    fn roundtrip(p: &Program) {
        let text = print_program(p);
        let back = parse_program(&text).unwrap_or_else(|d| panic!("{d:?}\n---\n{text}"));
        assert_eq!(&back, p, "reparse changed the program:\n{text}");
        assert_eq!(print_program(&back), text, "printing is not idempotent");
    }

    #[test]
    fn flat_let_chain_layout() {
        let body = build::let_(
            0,
            Value::LitInt(1),
            build::let_(1, Value::Var(0), build::ret(1)),
        );
        let p = Program {
            fns: vec![FnDef {
                name: "main".into(),
                params: vec![],
                body,
                next_var: 2,
                next_join: 0,
            }],
        };
        assert_eq!(
            print_program(&p),
            "(def main ()\n  (let x0 1\n  (let x1 x0\n  (ret x1))))\n"
        );
        roundtrip(&p);
    }

    #[test]
    fn case_arms_inline_when_small() {
        let body = build::case(
            0,
            vec![
                (0, build::ret(0)),
                (1, build::let_(1, Value::LitInt(9), build::ret(1))),
            ],
            Some(build::ret(0)),
        );
        let p = Program {
            fns: vec![FnDef {
                name: "f".into(),
                params: vec![0],
                body,
                next_var: 2,
                next_join: 0,
            }],
        };
        let text = print_program(&p);
        assert!(text.contains("(0 (ret x0))"), "{text}");
        assert!(
            text.contains("(1\n      (let x1 9\n      (ret x1)))"),
            "{text}"
        );
        assert!(text.contains("(else (ret x0))"), "{text}");
        roundtrip(&p);
    }

    #[test]
    fn join_and_rc_ops_roundtrip() {
        let jp = Expr::Inc {
            var: 1,
            n: 2,
            body: Box::new(Expr::Dec {
                var: 1,
                body: Box::new(build::ret(1)),
            }),
        };
        let body = Expr::LetJoin {
            label: 0,
            params: vec![1],
            jp_body: Box::new(jp),
            body: Box::new(Expr::Jump {
                label: 0,
                args: vec![0],
            }),
        };
        let p = Program {
            fns: vec![FnDef {
                name: "f".into(),
                params: vec![0],
                body,
                next_var: 2,
                next_join: 1,
            }],
        };
        roundtrip(&p);
    }

    #[test]
    fn strings_names_and_bigs_escape_canonically() {
        let body = build::let_(
            1,
            Value::LitStr("a\"b\\c\nα\u{1}".into()),
            build::let_(
                2,
                Value::LitBig("123".into()),
                build::let_(
                    3,
                    Value::LitBig("not digits".into()),
                    build::let_(
                        4,
                        Value::Call {
                            func: "odd name".into(),
                            args: vec![0],
                        },
                        build::ret(4),
                    ),
                ),
            ),
        );
        let odd = FnDef {
            name: "odd name".into(),
            params: vec![0],
            body: build::ret(0),
            next_var: 1,
            next_join: 0,
        };
        let main = FnDef {
            name: "main".into(),
            params: vec![0],
            body,
            next_var: 5,
            next_join: 0,
        };
        let p = Program {
            fns: vec![odd, main],
        };
        let text = print_program(&p);
        assert!(text.contains(r#""a\"b\\c\n\u{3b1}\u{1}""#), "{text}");
        assert!(text.contains("(big 123)"), "{text}");
        assert!(text.contains("(big \"not digits\")"), "{text}");
        assert!(text.contains("(def \"odd name\" (x0)"), "{text}");
        // The malformed big is a wellformedness error, so reparse strictly
        // fails — compare via the lenient path instead.
        let outcome = crate::parse::parse_source(&text);
        assert_eq!(outcome.program.as_ref(), Some(&p));
        assert_eq!(print_program(outcome.program.as_ref().unwrap()), text);
    }

    #[test]
    fn format_source_normalises_whitespace() {
        let src = "(def main()(let x0 42(ret x0)))";
        let formatted = format_source(src).unwrap();
        assert_eq!(formatted, "(def main ()\n  (let x0 42\n  (ret x0)))\n");
        assert_eq!(format_source(&formatted).unwrap(), formatted, "idempotent");
    }

    #[test]
    fn format_source_fails_on_broken_syntax() {
        assert!(format_source("(def main () (ret x0").is_err());
    }
}
