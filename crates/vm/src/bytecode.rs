//! The bytecode format.
//!
//! A register machine: each function body is a flat instruction vector with
//! absolute jump targets. Registers hold 64-bit words that are either raw
//! machine integers (from `arith` ops) or [`lssa_rt::ObjRef`] bit patterns
//! (from `lp` ops) — the compiler keeps the two apart statically, mirroring
//! the IR's type system, so the VM never needs tags.

use lssa_rt::{Builtin, Nat};
use std::fmt;

/// A virtual register.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Reg(pub u16);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// Binary integer operations on raw words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Wrapping add.
    Add,
    /// Wrapping subtract.
    Sub,
    /// Wrapping multiply.
    Mul,
    /// Signed divide (traps on zero).
    Div,
    /// Signed remainder (traps on zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

impl BinOp {
    /// Evaluates the operation.
    ///
    /// # Errors
    ///
    /// Returns `None` on division by zero.
    pub fn eval(self, a: i64, b: i64) -> Option<i64> {
        Some(match self {
            BinOp::Add => a.wrapping_add(b),
            BinOp::Sub => a.wrapping_sub(b),
            BinOp::Mul => a.wrapping_mul(b),
            BinOp::Div => a.checked_div(b)?,
            BinOp::Rem => a.checked_rem(b)?,
            BinOp::And => a & b,
            BinOp::Or => a | b,
            BinOp::Xor => a ^ b,
        })
    }
}

/// Comparison predicates on raw words (signed).
pub use lssa_ir::attr::CmpPred;

/// One instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Instr {
    /// `dst ← raw constant`.
    ConstInt {
        /// Destination.
        dst: Reg,
        /// The value.
        v: i64,
    },
    /// `dst ← scalar object` (`lp.int`).
    LpInt {
        /// Destination.
        dst: Reg,
        /// The (small) integer.
        v: i64,
    },
    /// `dst ← boxed bignum` from the constant pool (`lp.bigint`).
    LpBig {
        /// Destination.
        dst: Reg,
        /// Pool index.
        idx: u32,
    },
    /// `dst ← string object` from the pool (`lp.str`).
    LpStr {
        /// Destination.
        dst: Reg,
        /// Pool index.
        idx: u32,
    },
    /// `dst ← ctor{tag}(args…)` (`lp.construct`).
    Construct {
        /// Destination.
        dst: Reg,
        /// Variant tag.
        tag: u32,
        /// Field registers.
        args: Vec<Reg>,
    },
    /// `dst ← tag(src)` as a raw word (`lp.getlabel`).
    GetLabel {
        /// Destination (raw).
        dst: Reg,
        /// Source object.
        src: Reg,
    },
    /// `dst ← field idx of src` (`lp.project`).
    Project {
        /// Destination.
        dst: Reg,
        /// Source object.
        src: Reg,
        /// Field index.
        idx: u32,
    },
    /// Build a closure (`lp.pap`).
    Pap {
        /// Destination.
        dst: Reg,
        /// Target function (VM index).
        func: u32,
        /// Its arity.
        arity: u16,
        /// Captured arguments.
        args: Vec<Reg>,
    },
    /// Extend a closure, possibly invoking it (`lp.papextend`).
    PapExtend {
        /// Destination.
        dst: Reg,
        /// The closure.
        closure: Reg,
        /// Arguments to add.
        args: Vec<Reg>,
    },
    /// Retain (`lp.inc`).
    Inc {
        /// The object.
        src: Reg,
    },
    /// Release (`lp.dec`).
    Dec {
        /// The object.
        src: Reg,
    },
    /// Direct call of a user function.
    Call {
        /// Destination for the result.
        dst: Reg,
        /// VM function index.
        func: u32,
        /// Arguments.
        args: Vec<Reg>,
    },
    /// Call of a runtime builtin.
    CallBuiltin {
        /// Destination.
        dst: Reg,
        /// The builtin.
        builtin: Builtin,
        /// Arguments.
        args: Vec<Reg>,
        /// Borrowed argument positions (bit *i* = `args[i]`): the VM
        /// retains these as the first step of the call, standing in for
        /// an `lp.inc` the rc-opt pass folded away.
        mask: u8,
    },
    /// Guaranteed tail call: replaces the current frame.
    TailCall {
        /// VM function index.
        func: u32,
        /// Arguments.
        args: Vec<Reg>,
    },
    /// Return `src` to the caller.
    Ret {
        /// The result.
        src: Reg,
    },
    /// Unconditional jump.
    Jump {
        /// Absolute target.
        target: usize,
    },
    /// Two-way branch on a raw word.
    Branch {
        /// Condition (0 = false).
        cond: Reg,
        /// Target when non-zero.
        then_t: usize,
        /// Target when zero.
        else_t: usize,
    },
    /// Jump table on a raw word.
    Switch {
        /// Scrutinee.
        idx: Reg,
        /// `(value, target)` pairs.
        cases: Vec<(i64, usize)>,
        /// Fallback target.
        default: usize,
    },
    /// `dst ← op(a, b)` on raw words.
    Bin {
        /// The operation.
        op: BinOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst ← pred(a, b)` as 0/1.
    Cmp {
        /// The predicate.
        pred: CmpPred,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst ← c ? a : b` (bitwise copy; works for objects and raw words).
    Select {
        /// Destination.
        dst: Reg,
        /// Condition (raw).
        c: Reg,
        /// Taken when non-zero.
        a: Reg,
        /// Taken when zero.
        b: Reg,
    },
    /// `dst ← src & mask` (zero-extension casts).
    Mask {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
        /// Bit mask.
        mask: u64,
    },
    /// Register copy.
    Move {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// Read a module global.
    GlobalLoad {
        /// Destination.
        dst: Reg,
        /// Global slot index.
        idx: u32,
    },
    /// Write a module global.
    GlobalStore {
        /// Global slot index.
        idx: u32,
        /// Source.
        src: Reg,
    },
    /// `cf.unreachable` — executing this is a bug.
    Trap,
}

/// A compiled function.
#[derive(Debug, Clone)]
pub struct CompiledFn {
    /// Source-level name.
    pub name: String,
    /// Number of parameters (passed in registers `0..arity`).
    pub arity: u16,
    /// Total registers used.
    pub n_regs: u16,
    /// The code.
    pub code: Vec<Instr>,
}

/// Memoized decoded forms of a [`CompiledProgram`] (one slot per
/// [`DecodeOptions`] mode), filled lazily by [`CompiledProgram::decoded`].
///
/// Cloning a program resets its cache (the clone may be mutated before it
/// first runs); equality and hashing ignore it by construction, since
/// `CompiledProgram` implements neither.
#[derive(Default)]
pub struct DecodeCache {
    slots: [std::sync::OnceLock<std::sync::Arc<crate::decode::DecodedProgram>>;
        crate::decode::DecodeOptions::CACHE_SLOTS],
}

impl Clone for DecodeCache {
    fn clone(&self) -> DecodeCache {
        DecodeCache::default()
    }
}

impl fmt::Debug for DecodeCache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DecodeCache")
            .field("unfused", &self.slots[0].get().is_some())
            .field("fused", &self.slots[1].get().is_some())
            .field("renumbered", &self.slots[2].get().is_some())
            .field("fused+renumbered", &self.slots[3].get().is_some())
            .finish()
    }
}

use crate::decode::DecodeOptions;

/// A compiled program.
#[derive(Debug, Clone, Default)]
pub struct CompiledProgram {
    /// Functions; closure [`lssa_rt::FuncId`]s index into this.
    pub fns: Vec<CompiledFn>,
    /// Big-integer constant pool.
    pub big_pool: Vec<Nat>,
    /// String constant pool.
    pub str_pool: Vec<String>,
    /// Global slot names (`@kslot`-style top-level closures).
    pub globals: Vec<String>,
    /// Memoized decoded forms (implementation detail of
    /// [`CompiledProgram::decoded`]; present here so repeat executions of
    /// one program — conformance loops, differential reruns — skip
    /// re-decoding).
    pub decode_cache: DecodeCache,
}

impl CompiledProgram {
    /// Looks up a function index by name.
    pub fn fn_index(&self, name: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.name == name)
    }

    /// Total instruction count (static code size metric).
    pub fn code_size(&self) -> usize {
        self.fns.iter().map(|f| f.code.len()).sum()
    }

    /// The decoded execution form under `opts`, memoized: the first call
    /// per mode decodes ([`crate::decode::decode_program_with`]), repeat
    /// calls return the shared result. The program must not be mutated
    /// once decoded — treat construction as finished before the first run.
    pub fn decoded(&self, opts: DecodeOptions) -> std::sync::Arc<crate::decode::DecodedProgram> {
        self.decode_cache.slots[opts.cache_index()]
            .get_or_init(|| std::sync::Arc::new(crate::decode::decode_program_with(self, opts)))
            .clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binop_eval() {
        assert_eq!(BinOp::Add.eval(2, 3), Some(5));
        assert_eq!(BinOp::Sub.eval(2, 3), Some(-1));
        assert_eq!(BinOp::Div.eval(7, 2), Some(3));
        assert_eq!(BinOp::Div.eval(7, 0), None);
        assert_eq!(BinOp::Rem.eval(7, 0), None);
        assert_eq!(BinOp::Add.eval(i64::MAX, 1), Some(i64::MIN));
    }

    #[test]
    fn program_lookup() {
        let p = CompiledProgram {
            fns: vec![CompiledFn {
                name: "main".into(),
                arity: 0,
                n_regs: 1,
                code: vec![
                    Instr::LpInt { dst: Reg(0), v: 1 },
                    Instr::Ret { src: Reg(0) },
                ],
            }],
            ..CompiledProgram::default()
        };
        assert_eq!(p.fn_index("main"), Some(0));
        assert_eq!(p.fn_index("other"), None);
        assert_eq!(p.code_size(), 2);
    }

    #[test]
    fn decoded_forms_are_memoized_per_mode() {
        let p = CompiledProgram {
            fns: vec![CompiledFn {
                name: "main".into(),
                arity: 0,
                n_regs: 1,
                code: vec![
                    Instr::LpInt { dst: Reg(0), v: 1 },
                    Instr::Ret { src: Reg(0) },
                ],
            }],
            ..CompiledProgram::default()
        };
        let fused = p.decoded(DecodeOptions::fused());
        assert!(
            std::sync::Arc::ptr_eq(&fused, &p.decoded(DecodeOptions::fused())),
            "repeat runs must reuse the decoded program"
        );
        let unfused = p.decoded(DecodeOptions::no_fuse());
        assert!(
            !std::sync::Arc::ptr_eq(&fused, &unfused),
            "the two modes are distinct programs"
        );
        assert!(std::sync::Arc::ptr_eq(
            &unfused,
            &p.decoded(DecodeOptions::no_fuse())
        ));
        assert_eq!(fused.fns[0].code.len(), 1, "fused: one ConstRet cell");
        assert_eq!(unfused.fns[0].code.len(), 2);
        // A clone starts with a cold cache: it may be mutated before its
        // first run.
        let q = p.clone();
        assert!(!std::sync::Arc::ptr_eq(
            &fused,
            &q.decoded(DecodeOptions::fused())
        ));
    }
}
