//! §III-E: guaranteed vs heuristic tail calls, observed through the VM's
//! peak frame-stack depth.
//!
//! The MLIR backend emits `musttail` for *every* tail call; the C-style
//! baseline only reliably eliminates self-recursion (what a C compiler's
//! sibling-call optimization gives you). Mutual recursion separates the two.

use lambda_ssa::driver::pipelines::{compile_and_run, CompilerConfig};

const MUTUAL: &str = r#"
def even(n) := if n == 0 then 1 else odd(n - 1)
def odd(n) := if n == 0 then 0 else even(n - 1)
def main() := even(100000)
"#;

const SELF_REC: &str = r#"
def loop(n, acc) := if n == 0 then acc else loop(n - 1, acc + n)
def main() := loop(100000, 0)
"#;

#[test]
fn guaranteed_tco_keeps_mutual_recursion_flat() {
    let out = compile_and_run(MUTUAL, CompilerConfig::mlir(), 100_000_000).unwrap();
    assert_eq!(out.rendered, "1");
    assert!(
        out.stats.max_stack <= 4,
        "musttail must keep the stack flat, got {}",
        out.stats.max_stack
    );
}

#[test]
fn heuristic_tco_grows_stack_on_mutual_recursion() {
    let out = compile_and_run(MUTUAL, CompilerConfig::leanc(), 100_000_000).unwrap();
    assert_eq!(out.rendered, "1");
    assert!(
        out.stats.max_stack > 10_000,
        "the C model should burn a frame per cross-function call, got {}",
        out.stats.max_stack
    );
}

#[test]
fn both_backends_flatten_self_recursion() {
    for config in [CompilerConfig::mlir(), CompilerConfig::leanc()] {
        let out = compile_and_run(SELF_REC, config, 100_000_000).unwrap();
        assert_eq!(out.rendered, "5000050000");
        assert!(
            out.stats.max_stack <= 4,
            "[{}] self tail recursion must be flat, got {}",
            config.label(),
            out.stats.max_stack
        );
    }
}

#[test]
fn deep_recursion_correctness_is_unaffected() {
    // Both pipelines agree regardless of TCO strategy.
    for config in [CompilerConfig::mlir(), CompilerConfig::leanc()] {
        let out = compile_and_run(MUTUAL, config, 100_000_000).unwrap();
        assert_eq!(out.rendered, "1", "[{}]", config.label());
        assert_eq!(out.stats.heap.live, 0);
    }
}
