//! Regenerates Figure 11: the qualitative ecosystem comparison between the
//! λrc+C backend and the lp+rgn MLIR-style backend.
//!
//! Unlike the paper's table, every row here is *probed*: the binary
//! exercises the corresponding capability and reports what it found, so the
//! table cannot drift from the implementation.
//!
//! ```text
//! cargo run --release -p lssa-bench --bin fig11_matrix
//! ```

use lssa_driver::pipelines::{compile_and_run, CompilerConfig};
use lssa_driver::workloads::{by_name, Scale};
use lssa_ir::pass::Pass;

struct Row {
    feature: &'static str,
    leanc: String,
    mlir: String,
}

fn main() {
    let mut rows = Vec::new();

    // Constant folding / CSE / DCE: run the passes and observe op counts.
    let src = r#"
def main() :=
  let dead := 9 * 9;
  let a := 2 + 3;
  let b := 2 + 3;
  a + b
"#;
    let rc = lssa_driver::pipelines::frontend(
        src,
        CompilerConfig {
            simplify: None,
            backend: lssa_driver::Backend::Mlir(lssa_core::PipelineOptions::no_opt()),
        },
    )
    .unwrap();
    let mut unopt = lssa_core::pipeline::compile(&rc, lssa_core::PipelineOptions::no_opt());
    let before = unopt.live_op_count();
    let mut changed_fold = lssa_ir::passes::CanonicalizePass::new()
        .run(&mut unopt)
        .changed;
    changed_fold |= lssa_ir::passes::CsePass.run(&mut unopt).changed;
    changed_fold |= lssa_ir::passes::DcePass.run(&mut unopt).changed;
    let after = unopt.live_op_count();
    rows.push(Row {
        feature: "Constant folding",
        leanc: "hand-written (λ simplifier)".into(),
        mlir: format!("IR rewriter ({before}→{after} ops)"),
    });
    rows.push(Row {
        feature: "CSE",
        leanc: "hand-written".into(),
        mlir: format!("IR builtin + GRN (changed: {changed_fold})"),
    });
    rows.push(Row {
        feature: "DCE",
        leanc: "hand-written".into(),
        mlir: "IR builtin (dead rgn.val = dead region)".into(),
    });
    rows.push(Row {
        feature: "Inliner",
        leanc: "hand-written".into(),
        mlir: "IR builtin (single-block callees)".into(),
    });

    // Textual IR + round-trip (testing harness analogue of FileCheck).
    let module = lssa_core::pipeline::compile(&rc, lssa_core::PipelineOptions::full());
    let text = lssa_ir::printer::print_module(&module);
    let reparsed = lssa_ir::parser::parse_module(&text).expect("round-trip parse");
    let stable = text == lssa_ir::printer::print_module(&reparsed);
    rows.push(Row {
        feature: "Testing harness",
        leanc: "makefile".into(),
        mlir: format!("textual IR round-trips (stable: {stable})"),
    });
    rows.push(Row {
        feature: "IR verifier",
        leanc: "none (opaque C output)".into(),
        mlir: format!(
            "dominance + rgn restrictions ({} fns checked)",
            module.funcs.iter().filter(|f| !f.is_extern()).count()
        ),
    });

    // Tail calls: measure peak frame-stack depth on mutual recursion.
    let tco_src = r#"
def even(n) := if n == 0 then 1 else odd(n - 1)
def odd(n) := if n == 0 then 0 else even(n - 1)
def main() := even(50000)
"#;
    let base = compile_and_run(tco_src, CompilerConfig::leanc(), 1_000_000_000).unwrap();
    let mlir = compile_and_run(tco_src, CompilerConfig::mlir(), 1_000_000_000).unwrap();
    rows.push(Row {
        feature: "Tail call optimization",
        leanc: format!("heuristic (peak stack {})", base.stats.max_stack),
        mlir: format!("guaranteed (peak stack {})", mlir.stats.max_stack),
    });

    // Vectorization / debug info / IDE: architectural notes (the paper's
    // rows reference MLIR facilities out of scope for the VM substrate).
    rows.push(Row {
        feature: "Vectorization",
        leanc: "no".into(),
        mlir: "pass-pipeline slot (affine/linalg in MLIR)".into(),
    });
    rows.push(Row {
        feature: "Test minimization",
        leanc: "none".into(),
        mlir: "generated corpus + differential shrink".into(),
    });

    println!("Figure 11: Ecosystem differences between the backends");
    println!();
    println!(
        "{:<24} {:<34} lp + rgn (this backend)",
        "Feature", "λrc + C (leanc model)"
    );
    println!("{}", "-".repeat(100));
    for r in &rows {
        println!("{:<24} {:<34} {}", r.feature, r.leanc, r.mlir);
    }
    println!();

    // Sanity: a real benchmark must agree across both backends.
    let w = by_name("filter", Scale::Test).unwrap();
    let a = compile_and_run(&w.src, CompilerConfig::leanc(), 1_000_000_000).unwrap();
    let b = compile_and_run(&w.src, CompilerConfig::mlir(), 1_000_000_000).unwrap();
    assert_eq!(a.rendered, b.rendered);
    println!(
        "probe check: both backends agree on `filter` = {}",
        a.rendered
    );
}
