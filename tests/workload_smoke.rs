//! Differential smoke oracle: every benchmark `Workload` at `Scale::Test`
//! runs through the λ reference interpreter (both λpure and λrc) and
//! through all four compiled pipelines on the VM, and every route must
//! produce the workload's recorded checksum with a balanced heap.
//!
//! This is the cheapest end-to-end guard for future refactors: any change
//! that breaks a lowering, an optimization, or the runtime shows up here as
//! a checksum mismatch on a named workload long before the full 648-program
//! conformance suite finishes.
//!
//! Workloads are independent — each case owns its interpreter environment,
//! its compiled program, and its VM `Heap` — so the oracle shards one job
//! per workload through the shared batch executor (`lssa_driver::par`,
//! the ROADMAP's parallel batch driver). A panic in any job propagates
//! after all workers join and fails the test with the workload's own
//! message.

use lambda_ssa::driver::diff::configs;
use lambda_ssa::driver::par::BatchRunner;
use lambda_ssa::driver::pipelines::compile_and_run;
use lambda_ssa::driver::workloads::{all, Scale, Workload};
use lambda_ssa::lambda::{insert_rc, parse_program, run_program};

const MAX_STEPS: u64 = 500_000_000;

/// Runs `check` once per workload, one executor job per workload.
fn for_each_workload_parallel(scale: Scale, check: impl Fn(&Workload) + Sync) {
    let workloads = all(scale);
    BatchRunner::new()
        .with_jobs(workloads.len())
        .with_chunk(1)
        .map(&workloads, |w| check(w));
}

#[test]
fn interpreter_matches_checksums() {
    for_each_workload_parallel(Scale::Test, |w| {
        let p = parse_program(&w.src).unwrap_or_else(|e| panic!("{}: parse: {e}", w.name));
        let pure = run_program(&p, "main", false, MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: λpure: {e}", w.name));
        assert_eq!(pure.rendered, w.expected_test, "{}: λpure checksum", w.name);

        let rc = insert_rc(&p);
        let rc_out = run_program(&rc, "main", true, MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}: λrc: {e}", w.name));
        assert_eq!(rc_out.rendered, w.expected_test, "{}: λrc checksum", w.name);
        assert_eq!(rc_out.stats.live, 0, "{}: λrc leaked objects", w.name);
    });
}

#[test]
fn all_pipelines_match_checksums() {
    for_each_workload_parallel(Scale::Test, |w| {
        for config in configs() {
            let label = config.label();
            let out = compile_and_run(&w.src, config, MAX_STEPS)
                .unwrap_or_else(|e| panic!("{}/{label}: {e}", w.name));
            assert_eq!(
                out.rendered, w.expected_test,
                "{}/{label}: VM checksum disagrees with the oracle",
                w.name
            );
            assert_eq!(
                out.stats.heap.live, 0,
                "{}/{label}: VM leaked objects",
                w.name
            );
        }
    });
}

/// At `Scale::Bench` the runs take seconds each, so this cross-check of the
/// two interesting pipelines is gated behind `--features slow-tests`.
#[cfg(feature = "slow-tests")]
#[test]
fn bench_scale_pipelines_agree() {
    use lambda_ssa::driver::pipelines::CompilerConfig;
    for_each_workload_parallel(Scale::Bench, |w| {
        let base = compile_and_run(&w.src, CompilerConfig::leanc(), MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}/leanc: {e}", w.name));
        let mlir = compile_and_run(&w.src, CompilerConfig::mlir(), MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}/mlir: {e}", w.name));
        assert_eq!(
            base.rendered, mlir.rendered,
            "{}: bench-scale disagreement",
            w.name
        );
    });
}

/// `Scale::Stress` runs several times `Bench` — the nightly-only guard that
/// the VM (frame pool, decoded stream, runtime) holds up well past the
/// timing sizes.
#[cfg(feature = "slow-tests")]
#[test]
fn stress_scale_pipelines_agree() {
    use lambda_ssa::driver::pipelines::CompilerConfig;
    const STRESS_MAX_STEPS: u64 = 20_000_000_000;
    for_each_workload_parallel(Scale::Stress, |w| {
        let base = compile_and_run(&w.src, CompilerConfig::leanc(), STRESS_MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}/leanc: {e}", w.name));
        let mlir = compile_and_run(&w.src, CompilerConfig::mlir(), STRESS_MAX_STEPS)
            .unwrap_or_else(|e| panic!("{}/mlir: {e}", w.name));
        assert_eq!(
            base.rendered, mlir.rendered,
            "{}: stress-scale disagreement",
            w.name
        );
        assert_eq!(base.stats.heap.live, 0, "{}: leak at stress scale", w.name);
        assert_eq!(mlir.stats.heap.live, 0, "{}: leak at stress scale", w.name);
    });
}
