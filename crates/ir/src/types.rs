//! The IR type system.
//!
//! Like λrc (§III of the paper), the IR is almost type-erased: one uniform
//! boxed type `!lp.t` for heap values, machine integer types for tags and
//! arithmetic, plus `!rgn.region` — the type of region values created by
//! `rgn.val` (§IV).

use std::fmt;
use std::str::FromStr;

/// An IR value type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Type {
    /// 1-bit integer (booleans, `select` conditions).
    I1,
    /// 8-bit integer (constructor tags, decidable-equality results).
    I8,
    /// 64-bit integer (machine arithmetic).
    I64,
    /// The uniform boxed type `!lp.t`.
    Obj,
    /// A region value `!rgn.region` — a first-class sub-computation.
    Rgn,
}

impl Type {
    /// Whether this is one of the machine integer types.
    pub fn is_int(self) -> bool {
        matches!(self, Type::I1 | Type::I8 | Type::I64)
    }

    /// Bit width for integer types.
    pub fn bit_width(self) -> Option<u32> {
        match self {
            Type::I1 => Some(1),
            Type::I8 => Some(8),
            Type::I64 => Some(64),
            Type::Obj | Type::Rgn => None,
        }
    }

    /// Wraps `v` to this integer type's range (used by constant folding).
    ///
    /// # Panics
    ///
    /// Panics on non-integer types.
    pub fn wrap(self, v: i64) -> i64 {
        match self {
            Type::I1 => v & 1,
            Type::I8 => v as i8 as i64,
            Type::I64 => v,
            _ => panic!("wrap on non-integer type {self}"),
        }
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::I1 => write!(f, "i1"),
            Type::I8 => write!(f, "i8"),
            Type::I64 => write!(f, "i64"),
            Type::Obj => write!(f, "!lp.t"),
            Type::Rgn => write!(f, "!rgn.region"),
        }
    }
}

/// Error parsing a [`Type`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseTypeError(pub String);

impl fmt::Display for ParseTypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown type `{}`", self.0)
    }
}

impl std::error::Error for ParseTypeError {}

impl FromStr for Type {
    type Err = ParseTypeError;

    fn from_str(s: &str) -> Result<Type, ParseTypeError> {
        match s {
            "i1" => Ok(Type::I1),
            "i8" => Ok(Type::I8),
            "i64" => Ok(Type::I64),
            "!lp.t" => Ok(Type::Obj),
            "!rgn.region" => Ok(Type::Rgn),
            other => Err(ParseTypeError(other.to_string())),
        }
    }
}

/// A function signature.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Parameter types.
    pub params: Vec<Type>,
    /// Result type.
    pub ret: Type,
}

impl Signature {
    /// Builds a signature.
    pub fn new(params: Vec<Type>, ret: Type) -> Signature {
        Signature { params, ret }
    }

    /// The common λrc signature: `(!lp.t)^n -> !lp.t`.
    pub fn obj(n: usize) -> Signature {
        Signature {
            params: vec![Type::Obj; n],
            ret: Type::Obj,
        }
    }
}

impl fmt::Display for Signature {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, p) in self.params.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, ") -> {}", self.ret)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_parse_round_trip() {
        for ty in [Type::I1, Type::I8, Type::I64, Type::Obj, Type::Rgn] {
            assert_eq!(ty.to_string().parse::<Type>().unwrap(), ty);
        }
        assert!("i7".parse::<Type>().is_err());
    }

    #[test]
    fn wrap_semantics() {
        assert_eq!(Type::I1.wrap(3), 1);
        assert_eq!(Type::I8.wrap(255), -1);
        assert_eq!(Type::I8.wrap(127), 127);
        assert_eq!(Type::I64.wrap(i64::MIN), i64::MIN);
    }

    #[test]
    fn signature_display() {
        let sig = Signature::obj(2);
        assert_eq!(sig.to_string(), "(!lp.t, !lp.t) -> !lp.t");
        let sig = Signature::new(vec![Type::I8], Type::I1);
        assert_eq!(sig.to_string(), "(i8) -> i1");
    }
}
