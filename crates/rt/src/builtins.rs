//! The runtime-call surface: the `lean_*` functions the generated code calls.
//!
//! The paper's `lp` dialect lowers arithmetic, comparisons and data-structure
//! primitives to calls into `libleanrt` (e.g. `@lean_nat_dec_eq` in Figure 4).
//! This module is that surface. Calling convention: **every builtin consumes
//! (takes ownership of) its arguments and returns an owned result** — the
//! same owned convention λrc uses for ordinary calls, which keeps
//! reference-count reasoning uniform across the compiler.

use crate::bignum::{Int, Nat};
use crate::heap::Heap;
use crate::object::ObjRef;
use std::fmt;
use std::str::FromStr;

/// A runtime builtin function.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Builtin {
    // Naturals (LEAN `Nat`: truncating subtraction, x/0 = 0, x%0 = x).
    /// `lean_nat_add`
    NatAdd,
    /// `lean_nat_sub` (truncating at zero)
    NatSub,
    /// `lean_nat_mul`
    NatMul,
    /// `lean_nat_div` (`x / 0 = 0`)
    NatDiv,
    /// `lean_nat_mod` (`x % 0 = x`)
    NatMod,
    /// `lean_nat_pow`
    NatPow,
    /// `lean_nat_gcd`
    NatGcd,
    /// `lean_nat_dec_eq` → 0/1
    NatDecEq,
    /// `lean_nat_dec_lt` → 0/1
    NatDecLt,
    /// `lean_nat_dec_le` → 0/1
    NatDecLe,
    // Integers.
    /// `lean_int_add`
    IntAdd,
    /// `lean_int_sub`
    IntSub,
    /// `lean_int_mul`
    IntMul,
    /// `lean_int_div` (truncated; `x / 0 = 0`)
    IntDiv,
    /// `lean_int_mod` (truncated; `x % 0 = x`)
    IntMod,
    /// `lean_int_neg`
    IntNeg,
    /// `lean_int_dec_eq` → 0/1
    IntDecEq,
    /// `lean_int_dec_lt` → 0/1
    IntDecLt,
    /// `lean_int_dec_le` → 0/1
    IntDecLe,
    /// `lean_nat_to_int` (identity on the erased representation)
    NatToInt,
    /// `lean_int_to_nat` (clamps negatives to 0)
    IntToNat,
    // Arrays.
    /// `lean_mk_empty_array`
    ArrayMk,
    /// `lean_array_get` (panics on out-of-bounds, like a proof obligation hole)
    ArrayGet,
    /// `lean_array_set` (in place when exclusive)
    ArraySet,
    /// `lean_array_push`
    ArrayPush,
    /// `lean_array_size`
    ArraySize,
    // Strings.
    /// `lean_string_append`
    StrAppend,
    /// `lean_string_length`
    StrLength,
    /// `lean_string_dec_eq` → 0/1
    StrDecEq,
    /// `lean_nat_to_string`
    NatToString,
}

/// Error when a builtin name is unknown.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBuiltinError(pub String);

impl fmt::Display for UnknownBuiltinError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown runtime builtin `{}`", self.0)
    }
}

impl std::error::Error for UnknownBuiltinError {}

impl Builtin {
    /// All builtins, for registry iteration.
    pub const ALL: &'static [Builtin] = &[
        Builtin::NatAdd,
        Builtin::NatSub,
        Builtin::NatMul,
        Builtin::NatDiv,
        Builtin::NatMod,
        Builtin::NatPow,
        Builtin::NatGcd,
        Builtin::NatDecEq,
        Builtin::NatDecLt,
        Builtin::NatDecLe,
        Builtin::IntAdd,
        Builtin::IntSub,
        Builtin::IntMul,
        Builtin::IntDiv,
        Builtin::IntMod,
        Builtin::IntNeg,
        Builtin::IntDecEq,
        Builtin::IntDecLt,
        Builtin::IntDecLe,
        Builtin::NatToInt,
        Builtin::IntToNat,
        Builtin::ArrayMk,
        Builtin::ArrayGet,
        Builtin::ArraySet,
        Builtin::ArrayPush,
        Builtin::ArraySize,
        Builtin::StrAppend,
        Builtin::StrLength,
        Builtin::StrDecEq,
        Builtin::NatToString,
    ];

    /// The `lean_*` symbol name.
    pub fn name(self) -> &'static str {
        match self {
            Builtin::NatAdd => "lean_nat_add",
            Builtin::NatSub => "lean_nat_sub",
            Builtin::NatMul => "lean_nat_mul",
            Builtin::NatDiv => "lean_nat_div",
            Builtin::NatMod => "lean_nat_mod",
            Builtin::NatPow => "lean_nat_pow",
            Builtin::NatGcd => "lean_nat_gcd",
            Builtin::NatDecEq => "lean_nat_dec_eq",
            Builtin::NatDecLt => "lean_nat_dec_lt",
            Builtin::NatDecLe => "lean_nat_dec_le",
            Builtin::IntAdd => "lean_int_add",
            Builtin::IntSub => "lean_int_sub",
            Builtin::IntMul => "lean_int_mul",
            Builtin::IntDiv => "lean_int_div",
            Builtin::IntMod => "lean_int_mod",
            Builtin::IntNeg => "lean_int_neg",
            Builtin::IntDecEq => "lean_int_dec_eq",
            Builtin::IntDecLt => "lean_int_dec_lt",
            Builtin::IntDecLe => "lean_int_dec_le",
            Builtin::NatToInt => "lean_nat_to_int",
            Builtin::IntToNat => "lean_int_to_nat",
            Builtin::ArrayMk => "lean_mk_empty_array",
            Builtin::ArrayGet => "lean_array_get",
            Builtin::ArraySet => "lean_array_set",
            Builtin::ArrayPush => "lean_array_push",
            Builtin::ArraySize => "lean_array_size",
            Builtin::StrAppend => "lean_string_append",
            Builtin::StrLength => "lean_string_length",
            Builtin::StrDecEq => "lean_string_dec_eq",
            Builtin::NatToString => "lean_nat_to_string",
        }
    }

    /// Number of arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self {
            Builtin::IntNeg
            | Builtin::NatToInt
            | Builtin::IntToNat
            | Builtin::ArraySize
            | Builtin::StrLength
            | Builtin::NatToString => 1,
            Builtin::ArrayMk => 0,
            Builtin::ArraySet => 3,
            _ => 2,
        }
    }

    /// Whether the builtin is pure (safe to constant-fold / CSE).
    ///
    /// All current builtins are observationally pure; array operations are
    /// still excluded because folding them would duplicate or elide the
    /// exclusivity-dependent in-place update.
    pub fn is_pure(self) -> bool {
        !matches!(
            self,
            Builtin::ArrayMk | Builtin::ArrayGet | Builtin::ArraySet | Builtin::ArrayPush
        )
    }

    /// Invokes the builtin. Consumes `args`, returns an owned result.
    ///
    /// # Panics
    ///
    /// Panics when given the wrong number of arguments, arguments of the
    /// wrong runtime shape, or an out-of-bounds array index — all of which
    /// are compiler bugs (the LEAN type system rules them out at the source
    /// level).
    pub fn call(self, heap: &mut Heap, args: &[ObjRef]) -> ObjRef {
        assert_eq!(
            args.len(),
            self.arity(),
            "builtin {} expects {} args, got {}",
            self.name(),
            self.arity(),
            args.len()
        );
        match self {
            Builtin::NatAdd => nat_binop(heap, args, |a, b| a.add(&b)),
            Builtin::NatSub => nat_binop(heap, args, |a, b| a.sat_sub(&b)),
            Builtin::NatMul => nat_binop(heap, args, |a, b| a.mul(&b)),
            Builtin::NatDiv => nat_binop(heap, args, |a, b| a.div(&b)),
            Builtin::NatMod => nat_binop(heap, args, |a, b| a.rem(&b)),
            Builtin::NatPow => {
                let a = heap.get_nat(args[0]);
                let e = heap
                    .get_nat(args[1])
                    .to_u64()
                    .expect("exponent exceeds u64");
                consume2(heap, args);
                let r = a.pow(e);
                heap.mk_nat(r)
            }
            Builtin::NatGcd => nat_binop(heap, args, |a, b| a.gcd(&b)),
            Builtin::NatDecEq => nat_cmp(heap, args, |o| o == std::cmp::Ordering::Equal),
            Builtin::NatDecLt => nat_cmp(heap, args, |o| o == std::cmp::Ordering::Less),
            Builtin::NatDecLe => nat_cmp(heap, args, |o| o != std::cmp::Ordering::Greater),
            Builtin::IntAdd => int_binop(heap, args, |a, b| a.add(&b)),
            Builtin::IntSub => int_binop(heap, args, |a, b| a.sub(&b)),
            Builtin::IntMul => int_binop(heap, args, |a, b| a.mul(&b)),
            Builtin::IntDiv => int_binop(heap, args, |a, b| a.div(&b)),
            Builtin::IntMod => int_binop(heap, args, |a, b| a.rem(&b)),
            Builtin::IntNeg => {
                let a = heap.get_int(args[0]);
                heap.dec(args[0]);
                let r = a.neg();
                heap.mk_int(r)
            }
            Builtin::IntDecEq => int_cmp(heap, args, |o| o == std::cmp::Ordering::Equal),
            Builtin::IntDecLt => int_cmp(heap, args, |o| o == std::cmp::Ordering::Less),
            Builtin::IntDecLe => int_cmp(heap, args, |o| o != std::cmp::Ordering::Greater),
            Builtin::NatToInt => args[0],
            Builtin::IntToNat => {
                let a = heap.get_int(args[0]);
                if a.is_neg() {
                    heap.dec(args[0]);
                    ObjRef::scalar(0)
                } else {
                    args[0]
                }
            }
            Builtin::ArrayMk => heap.alloc_array(Vec::new()),
            Builtin::ArrayGet => {
                let idx = index_of(heap, args[1]);
                let v = heap.array_get(args[0], idx);
                heap.inc(v);
                heap.dec(args[0]);
                v
            }
            Builtin::ArraySet => {
                let idx = index_of(heap, args[1]);
                heap.array_set(args[0], idx, args[2])
            }
            Builtin::ArrayPush => heap.array_push(args[0], args[1]),
            Builtin::ArraySize => {
                let n = heap.array_len(args[0]);
                heap.dec(args[0]);
                heap.mk_nat(Nat::from_u64(n as u64))
            }
            Builtin::StrAppend => {
                let mut s = heap.get_str(args[0]).to_owned();
                s.push_str(heap.get_str(args[1]));
                consume2(heap, args);
                heap.alloc_str(s)
            }
            Builtin::StrLength => {
                let n = heap.get_str(args[0]).chars().count() as u64;
                heap.dec(args[0]);
                heap.mk_nat(Nat::from_u64(n))
            }
            Builtin::StrDecEq => {
                let eq = heap.get_str(args[0]) == heap.get_str(args[1]);
                consume2(heap, args);
                ObjRef::scalar(eq as i64)
            }
            Builtin::NatToString => {
                let s = heap.get_nat(args[0]).to_string();
                heap.dec(args[0]);
                heap.alloc_str(s)
            }
        }
    }
}

impl FromStr for Builtin {
    type Err = UnknownBuiltinError;

    fn from_str(s: &str) -> Result<Builtin, UnknownBuiltinError> {
        Builtin::ALL
            .iter()
            .copied()
            .find(|b| b.name() == s)
            .ok_or_else(|| UnknownBuiltinError(s.to_string()))
    }
}

impl fmt::Display for Builtin {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

fn consume2(heap: &mut Heap, args: &[ObjRef]) {
    heap.dec(args[0]);
    heap.dec(args[1]);
}

fn nat_binop(heap: &mut Heap, args: &[ObjRef], f: impl FnOnce(Nat, Nat) -> Nat) -> ObjRef {
    // Fast path: both scalars and the u128 result fits back in a word.
    let a = heap.get_nat(args[0]);
    let b = heap.get_nat(args[1]);
    consume2(heap, args);
    heap.mk_nat(f(a, b))
}

fn nat_cmp(heap: &mut Heap, args: &[ObjRef], f: impl FnOnce(std::cmp::Ordering) -> bool) -> ObjRef {
    let a = heap.get_nat(args[0]);
    let b = heap.get_nat(args[1]);
    consume2(heap, args);
    ObjRef::scalar(f(a.cmp_nat(&b)) as i64)
}

fn int_binop(heap: &mut Heap, args: &[ObjRef], f: impl FnOnce(Int, Int) -> Int) -> ObjRef {
    let a = heap.get_int(args[0]);
    let b = heap.get_int(args[1]);
    consume2(heap, args);
    heap.mk_int(f(a, b))
}

fn int_cmp(heap: &mut Heap, args: &[ObjRef], f: impl FnOnce(std::cmp::Ordering) -> bool) -> ObjRef {
    let a = heap.get_int(args[0]);
    let b = heap.get_int(args[1]);
    consume2(heap, args);
    ObjRef::scalar(f(a.cmp_int(&b)) as i64)
}

fn index_of(heap: &Heap, r: ObjRef) -> usize {
    heap.get_nat(r)
        .to_u64()
        .and_then(|v| usize::try_from(v).ok())
        .expect("array index exceeds usize")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(h: &mut Heap, b: Builtin, args: &[ObjRef]) -> ObjRef {
        b.call(h, args)
    }

    #[test]
    fn registry_round_trip() {
        for &b in Builtin::ALL {
            assert_eq!(b.name().parse::<Builtin>().unwrap(), b);
        }
        assert!("lean_bogus".parse::<Builtin>().is_err());
    }

    #[test]
    fn nat_add_scalars() {
        let mut h = Heap::new();
        let r = call(
            &mut h,
            Builtin::NatAdd,
            &[ObjRef::scalar(2), ObjRef::scalar(3)],
        );
        assert_eq!(r.as_scalar(), Some(5));
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn nat_add_overflow_boxes() {
        let mut h = Heap::new();
        let big = h.mk_nat(Nat::from_u64(crate::object::MAX_SMALL_NAT));
        assert!(big.is_scalar());
        let r = call(&mut h, Builtin::NatAdd, &[big, ObjRef::scalar(1)]);
        assert!(r.is_heap(), "result must be boxed");
        assert_eq!(
            h.get_nat(r).to_u64(),
            Some(crate::object::MAX_SMALL_NAT + 1)
        );
        h.dec(r);
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn nat_sub_truncates() {
        let mut h = Heap::new();
        let r = call(
            &mut h,
            Builtin::NatSub,
            &[ObjRef::scalar(3), ObjRef::scalar(10)],
        );
        assert_eq!(r.as_scalar(), Some(0));
    }

    #[test]
    fn nat_div_mod_zero() {
        let mut h = Heap::new();
        let d = call(
            &mut h,
            Builtin::NatDiv,
            &[ObjRef::scalar(7), ObjRef::scalar(0)],
        );
        assert_eq!(d.as_scalar(), Some(0));
        let m = call(
            &mut h,
            Builtin::NatMod,
            &[ObjRef::scalar(7), ObjRef::scalar(0)],
        );
        assert_eq!(m.as_scalar(), Some(7));
    }

    #[test]
    fn dec_eq_mixed_scalar_bigint() {
        // §III-A: `lean_nat_dec_eq` must handle machine-machine,
        // machine-bigint and bigint-bigint uniformly.
        let mut h = Heap::new();
        let big1 = h.mk_nat(Nat::from_u64(u64::MAX));
        let big2 = h.mk_nat(Nat::from_u64(u64::MAX));
        let r = call(&mut h, Builtin::NatDecEq, &[big1, big2]);
        assert_eq!(r.as_scalar(), Some(1));
        let big3 = h.mk_nat(Nat::from_u64(u64::MAX));
        let r = call(&mut h, Builtin::NatDecEq, &[big3, ObjRef::scalar(42)]);
        assert_eq!(r.as_scalar(), Some(0));
        let r = call(
            &mut h,
            Builtin::NatDecEq,
            &[ObjRef::scalar(42), ObjRef::scalar(42)],
        );
        assert_eq!(r.as_scalar(), Some(1));
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn comparisons() {
        let mut h = Heap::new();
        let lt = call(
            &mut h,
            Builtin::NatDecLt,
            &[ObjRef::scalar(2), ObjRef::scalar(3)],
        );
        assert_eq!(lt.as_scalar(), Some(1));
        let le = call(
            &mut h,
            Builtin::NatDecLe,
            &[ObjRef::scalar(3), ObjRef::scalar(3)],
        );
        assert_eq!(le.as_scalar(), Some(1));
        let nlt = call(
            &mut h,
            Builtin::NatDecLt,
            &[ObjRef::scalar(3), ObjRef::scalar(3)],
        );
        assert_eq!(nlt.as_scalar(), Some(0));
    }

    #[test]
    fn int_ops_signs() {
        let mut h = Heap::new();
        let a = h.mk_int(Int::from_i64(-7));
        let r = call(&mut h, Builtin::IntAdd, &[a, ObjRef::scalar(3)]);
        assert_eq!(r.as_scalar(), Some(-4));
        let n = call(&mut h, Builtin::IntNeg, &[ObjRef::scalar(5)]);
        assert_eq!(n.as_scalar(), Some(-5));
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn int_to_nat_clamps() {
        let mut h = Heap::new();
        let r = call(&mut h, Builtin::IntToNat, &[ObjRef::scalar(-9)]);
        assert_eq!(r.as_scalar(), Some(0));
        let r = call(&mut h, Builtin::IntToNat, &[ObjRef::scalar(9)]);
        assert_eq!(r.as_scalar(), Some(9));
    }

    #[test]
    fn array_builtin_flow() {
        let mut h = Heap::new();
        let arr = call(&mut h, Builtin::ArrayMk, &[]);
        let arr = call(&mut h, Builtin::ArrayPush, &[arr, ObjRef::scalar(10)]);
        let arr = call(&mut h, Builtin::ArrayPush, &[arr, ObjRef::scalar(20)]);
        h.inc(arr);
        let size = call(&mut h, Builtin::ArraySize, &[arr]);
        assert_eq!(size.as_scalar(), Some(2));
        h.inc(arr);
        let v = call(&mut h, Builtin::ArrayGet, &[arr, ObjRef::scalar(1)]);
        assert_eq!(v.as_scalar(), Some(20));
        let arr = call(
            &mut h,
            Builtin::ArraySet,
            &[arr, ObjRef::scalar(0), ObjRef::scalar(99)],
        );
        assert_eq!(h.array_get(arr, 0).as_scalar(), Some(99));
        h.dec(arr);
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn string_builtins() {
        let mut h = Heap::new();
        let a = h.alloc_str("foo".into());
        let b = h.alloc_str("bar".into());
        let c = call(&mut h, Builtin::StrAppend, &[a, b]);
        assert_eq!(h.get_str(c), "foobar");
        let n = call(&mut h, Builtin::StrLength, &[c]);
        assert_eq!(n.as_scalar(), Some(6));
        let x = h.alloc_str("x".into());
        let y = h.alloc_str("x".into());
        let eq = call(&mut h, Builtin::StrDecEq, &[x, y]);
        assert_eq!(eq.as_scalar(), Some(1));
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn nat_to_string() {
        let mut h = Heap::new();
        let big = h.mk_nat(Nat::from_str_decimal("123456789012345678901234567890").unwrap());
        let s = call(&mut h, Builtin::NatToString, &[big]);
        assert_eq!(h.get_str(s), "123456789012345678901234567890");
        h.dec(s);
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn pow_and_gcd() {
        let mut h = Heap::new();
        let p = call(
            &mut h,
            Builtin::NatPow,
            &[ObjRef::scalar(2), ObjRef::scalar(10)],
        );
        assert_eq!(p.as_scalar(), Some(1024));
        let g = call(
            &mut h,
            Builtin::NatGcd,
            &[ObjRef::scalar(48), ObjRef::scalar(36)],
        );
        assert_eq!(g.as_scalar(), Some(12));
    }

    #[test]
    fn purity_classification() {
        assert!(Builtin::NatAdd.is_pure());
        assert!(!Builtin::ArraySet.is_pure());
        assert!(!Builtin::ArrayMk.is_pure());
    }
}
