//! The surface language and its lowering to λpure.
//!
//! A small strict functional language standing in for LEAN4's source level —
//! just enough to write the paper's benchmark suite:
//!
//! ```text
//! inductive List := Nil | Cons(head, tail)
//!
//! def length(xs) :=
//!   case xs of
//!   | Nil => 0
//!   | Cons(h, t) => 1 + length(t)
//!   end
//!
//! def main() := length(Cons(1, Cons(2, Nil)))
//! ```
//!
//! Lowering produces A-normal-form λpure ([`crate::ast`]): every intermediate
//! value is `let`-bound, `case` in value position is compiled with a *join
//! point* (the paper's Figure 5 mechanism), constructor patterns bind fields
//! through projections, and integer patterns are staged through
//! `lean_nat_dec_eq` exactly as §III-A describes.
//!
//! Operators map to runtime builtins: `+ - * / % == != < <= > >=` are the
//! `Nat` operations; `@name(args)` calls the runtime builtin `lean_name`
//! directly (e.g. `@int_add`, `@array_get`).

use crate::ast::{build, Alt, Expr, FnDef, JoinId, Program, Value, VarId};
use std::collections::HashMap;
use std::fmt;

/// A parse or lowering error with a source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SurfaceError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl fmt::Display for SurfaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for SurfaceError {}

// ---- tokens ---------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Int(String),
    Str(String),
    LowerIdent(String),
    UpperIdent(String),
    AtIdent(String),
    Kw(&'static str), // inductive def let case of end if then else true false
    Punct(&'static str),
    Eof,
}

const KEYWORDS: &[&str] = &[
    "inductive",
    "def",
    "let",
    "case",
    "of",
    "end",
    "if",
    "then",
    "else",
    "true",
    "false",
];

struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Lexer<'a> {
    fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
        }
    }

    fn err(&self, message: impl Into<String>) -> SurfaceError {
        SurfaceError {
            line: self.line,
            message: message.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
        }
        Some(b)
    }

    fn skip_ws(&mut self) {
        loop {
            match self.peek() {
                Some(b' ' | b'\t' | b'\n' | b'\r') => {
                    self.bump();
                }
                Some(b'-') if self.src.get(self.pos + 1) == Some(&b'-') => {
                    while let Some(b) = self.peek() {
                        if b == b'\n' {
                            break;
                        }
                        self.bump();
                    }
                }
                _ => break,
            }
        }
    }

    fn ident(&mut self, first: u8) -> String {
        let mut s = String::new();
        s.push(first as char);
        while let Some(b) = self.peek() {
            if b.is_ascii_alphanumeric() || b == b'_' {
                s.push(b as char);
                self.bump();
            } else {
                break;
            }
        }
        s
    }

    fn next(&mut self) -> Result<Tok, SurfaceError> {
        self.skip_ws();
        let Some(b) = self.peek() else {
            return Ok(Tok::Eof);
        };
        // Multi-char punctuation first.
        let two = |l: &Lexer| -> Option<&'static str> {
            let pair = [l.src.get(l.pos).copied()?, l.src.get(l.pos + 1).copied()?];
            match &pair {
                b":=" => Some(":="),
                b"=>" => Some("=>"),
                b"==" => Some("=="),
                b"!=" => Some("!="),
                b"<=" => Some("<="),
                b">=" => Some(">="),
                _ => None,
            }
        };
        if let Some(p) = two(self) {
            self.bump();
            self.bump();
            return Ok(Tok::Punct(p));
        }
        match b {
            b'(' | b')' | b',' | b';' | b'|' | b'+' | b'-' | b'*' | b'/' | b'%' | b'<' | b'>'
            | b'_' => {
                self.bump();
                let s: &'static str = match b {
                    b'(' => "(",
                    b')' => ")",
                    b',' => ",",
                    b';' => ";",
                    b'|' => "|",
                    b'+' => "+",
                    b'-' => "-",
                    b'*' => "*",
                    b'/' => "/",
                    b'%' => "%",
                    b'<' => "<",
                    b'>' => ">",
                    b'_' => "_",
                    _ => unreachable!(),
                };
                Ok(Tok::Punct(s))
            }
            b'@' => {
                self.bump();
                let first = self
                    .bump()
                    .ok_or_else(|| self.err("expected builtin name after '@'"))?;
                Ok(Tok::AtIdent(self.ident(first)))
            }
            b'"' => {
                self.bump();
                let mut s = String::new();
                loop {
                    match self.bump() {
                        Some(b'"') => break,
                        Some(b'\\') => match self.bump() {
                            Some(b'n') => s.push('\n'),
                            Some(b'"') => s.push('"'),
                            Some(b'\\') => s.push('\\'),
                            _ => return Err(self.err("bad escape")),
                        },
                        Some(c) => s.push(c as char),
                        None => return Err(self.err("unterminated string")),
                    }
                }
                Ok(Tok::Str(s))
            }
            d if d.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(b) = self.peek() {
                    if b.is_ascii_digit() {
                        s.push(b as char);
                        self.bump();
                    } else {
                        break;
                    }
                }
                Ok(Tok::Int(s))
            }
            a if a.is_ascii_alphabetic() => {
                self.bump();
                let s = self.ident(a);
                if let Some(&kw) = KEYWORDS.iter().find(|&&k| k == s) {
                    Ok(Tok::Kw(kw))
                } else if s.as_bytes()[0].is_ascii_uppercase() {
                    Ok(Tok::UpperIdent(s))
                } else {
                    Ok(Tok::LowerIdent(s))
                }
            }
            other => Err(self.err(format!("unexpected character '{}'", other as char))),
        }
    }
}

// ---- surface AST -----------------------------------------------------------

#[derive(Debug, Clone)]
enum SExpr {
    Int(String),
    Str(String),
    Bool(bool),
    Var(String),
    CtorRef(String),
    Apply(Box<SExpr>, Vec<SExpr>),
    AtCall(String, Vec<SExpr>),
    Binop(&'static str, Box<SExpr>, Box<SExpr>),
    Let(String, Box<SExpr>, Box<SExpr>),
    If(Box<SExpr>, Box<SExpr>, Box<SExpr>),
    Case(Box<SExpr>, Vec<(SPat, SExpr)>),
}

#[derive(Debug, Clone)]
enum SPat {
    Ctor(String, Vec<String>),
    Int(String),
    Bool(bool),
    Wild,
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    lexer: Lexer<'a>,
    tok: Tok,
}

#[derive(Debug, Clone)]
struct CtorInfo {
    tag: u32,
    arity: usize,
}

/// Parses and lowers a surface program to λpure.
///
/// # Errors
///
/// Returns a [`SurfaceError`] on syntax errors, unknown names, or arity
/// mismatches.
pub fn parse_program(src: &str) -> Result<Program, SurfaceError> {
    let mut lexer = Lexer::new(src);
    let tok = lexer.next()?;
    let mut p = Parser { lexer, tok };
    p.parse_program()
}

impl<'a> Parser<'a> {
    fn err(&self, message: impl Into<String>) -> SurfaceError {
        self.lexer.err(message)
    }

    fn advance(&mut self) -> Result<Tok, SurfaceError> {
        let next = self.lexer.next()?;
        Ok(std::mem::replace(&mut self.tok, next))
    }

    fn eat_punct(&mut self, p: &'static str) -> Result<bool, SurfaceError> {
        if self.tok == Tok::Punct(p) {
            self.advance()?;
            Ok(true)
        } else {
            Ok(false)
        }
    }

    fn expect_punct(&mut self, p: &'static str) -> Result<(), SurfaceError> {
        if !self.eat_punct(p)? {
            return Err(self.err(format!("expected `{p}`, found {:?}", self.tok)));
        }
        Ok(())
    }

    fn expect_kw(&mut self, kw: &'static str) -> Result<(), SurfaceError> {
        if self.tok == Tok::Kw(kw) {
            self.advance()?;
            Ok(())
        } else {
            Err(self.err(format!("expected `{kw}`, found {:?}", self.tok)))
        }
    }

    fn lower_ident(&mut self) -> Result<String, SurfaceError> {
        match self.advance()? {
            Tok::LowerIdent(s) => Ok(s),
            other => Err(self.err(format!("expected identifier, found {other:?}"))),
        }
    }

    fn parse_program(&mut self) -> Result<Program, SurfaceError> {
        let mut ctors: HashMap<String, CtorInfo> = HashMap::new();
        // Built-in Bool constructors (LEAN: false = 0, true = 1).
        ctors.insert("False".into(), CtorInfo { tag: 0, arity: 0 });
        ctors.insert("True".into(), CtorInfo { tag: 1, arity: 0 });
        let mut defs: Vec<(String, Vec<String>, SExpr)> = Vec::new();
        loop {
            match &self.tok {
                Tok::Eof => break,
                Tok::Kw("inductive") => {
                    self.advance()?;
                    let _name = match self.advance()? {
                        Tok::UpperIdent(s) => s,
                        other => {
                            return Err(self.err(format!("expected type name, found {other:?}")))
                        }
                    };
                    self.expect_punct(":=")?;
                    let mut tag = 0u32;
                    // Optional leading '|'.
                    let _ = self.eat_punct("|")?;
                    loop {
                        let cname = match self.advance()? {
                            Tok::UpperIdent(s) => s,
                            other => {
                                return Err(
                                    self.err(format!("expected constructor, found {other:?}"))
                                )
                            }
                        };
                        let mut arity = 0;
                        if self.eat_punct("(")? {
                            loop {
                                self.lower_ident()?; // field name (documentation only)
                                arity += 1;
                                if !self.eat_punct(",")? {
                                    break;
                                }
                            }
                            self.expect_punct(")")?;
                        }
                        if ctors
                            .insert(cname.clone(), CtorInfo { tag, arity })
                            .is_some()
                        {
                            return Err(self.err(format!("duplicate constructor `{cname}`")));
                        }
                        tag += 1;
                        if !self.eat_punct("|")? {
                            break;
                        }
                    }
                }
                Tok::Kw("def") => {
                    self.advance()?;
                    let name = self.lower_ident()?;
                    self.expect_punct("(")?;
                    let mut params = Vec::new();
                    if self.tok != Tok::Punct(")") {
                        loop {
                            params.push(self.lower_ident()?);
                            if !self.eat_punct(",")? {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    self.expect_punct(":=")?;
                    let body = self.parse_expr()?;
                    defs.push((name, params, body));
                }
                other => return Err(self.err(format!("expected item, found {other:?}"))),
            }
        }
        // Arities of all defs (needed to classify applications).
        let arities: HashMap<String, usize> = defs
            .iter()
            .map(|(n, ps, _)| (n.clone(), ps.len()))
            .collect();
        let mut program = Program::default();
        for (name, params, body) in defs {
            let f = Lowerer::new(&ctors, &arities).lower_fn(&name, &params, &body)?;
            program.fns.push(f);
        }
        Ok(program)
    }

    // Expressions.
    fn parse_expr(&mut self) -> Result<SExpr, SurfaceError> {
        match self.tok.clone() {
            Tok::Kw("let") => {
                self.advance()?;
                let name = self.lower_ident()?;
                self.expect_punct(":=")?;
                let rhs = self.parse_expr()?;
                self.expect_punct(";")?;
                let body = self.parse_expr()?;
                Ok(SExpr::Let(name, Box::new(rhs), Box::new(body)))
            }
            Tok::Kw("if") => {
                self.advance()?;
                let c = self.parse_expr()?;
                self.expect_kw("then")?;
                let t = self.parse_expr()?;
                self.expect_kw("else")?;
                let e = self.parse_expr()?;
                Ok(SExpr::If(Box::new(c), Box::new(t), Box::new(e)))
            }
            Tok::Kw("case") => {
                self.advance()?;
                let scrut = self.parse_expr()?;
                self.expect_kw("of")?;
                let mut arms = Vec::new();
                while self.eat_punct("|")? {
                    let pat = self.parse_pattern()?;
                    self.expect_punct("=>")?;
                    let body = self.parse_expr()?;
                    arms.push((pat, body));
                }
                self.expect_kw("end")?;
                if arms.is_empty() {
                    return Err(self.err("case needs at least one arm"));
                }
                Ok(SExpr::Case(Box::new(scrut), arms))
            }
            _ => self.parse_cmp(),
        }
    }

    fn parse_pattern(&mut self) -> Result<SPat, SurfaceError> {
        match self.advance()? {
            Tok::Punct("_") => Ok(SPat::Wild),
            Tok::Int(s) => Ok(SPat::Int(s)),
            Tok::Kw("true") => Ok(SPat::Bool(true)),
            Tok::Kw("false") => Ok(SPat::Bool(false)),
            Tok::UpperIdent(name) => {
                let mut binders = Vec::new();
                if self.eat_punct("(")? {
                    loop {
                        match self.advance()? {
                            Tok::LowerIdent(s) => binders.push(s),
                            Tok::Punct("_") => binders.push("_".into()),
                            other => {
                                return Err(
                                    self.err(format!("expected field binder, found {other:?}"))
                                )
                            }
                        }
                        if !self.eat_punct(",")? {
                            break;
                        }
                    }
                    self.expect_punct(")")?;
                }
                Ok(SPat::Ctor(name, binders))
            }
            other => Err(self.err(format!("expected pattern, found {other:?}"))),
        }
    }

    fn parse_cmp(&mut self) -> Result<SExpr, SurfaceError> {
        let lhs = self.parse_add()?;
        for op in ["==", "!=", "<=", ">=", "<", ">"] {
            if self.tok == Tok::Punct(op) {
                self.advance()?;
                let rhs = self.parse_add()?;
                return Ok(SExpr::Binop(
                    match op {
                        "==" => "==",
                        "!=" => "!=",
                        "<=" => "<=",
                        ">=" => ">=",
                        "<" => "<",
                        ">" => ">",
                        _ => unreachable!(),
                    },
                    Box::new(lhs),
                    Box::new(rhs),
                ));
            }
        }
        Ok(lhs)
    }

    fn parse_add(&mut self) -> Result<SExpr, SurfaceError> {
        let mut lhs = self.parse_mul()?;
        loop {
            let op = if self.tok == Tok::Punct("+") {
                "+"
            } else if self.tok == Tok::Punct("-") {
                "-"
            } else {
                break;
            };
            self.advance()?;
            let rhs = self.parse_mul()?;
            lhs = SExpr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_mul(&mut self) -> Result<SExpr, SurfaceError> {
        let mut lhs = self.parse_apply()?;
        loop {
            let op = if self.tok == Tok::Punct("*") {
                "*"
            } else if self.tok == Tok::Punct("/") {
                "/"
            } else if self.tok == Tok::Punct("%") {
                "%"
            } else {
                break;
            };
            self.advance()?;
            let rhs = self.parse_apply()?;
            lhs = SExpr::Binop(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_apply(&mut self) -> Result<SExpr, SurfaceError> {
        let mut atom = self.parse_atom()?;
        while self.tok == Tok::Punct("(") {
            self.advance()?;
            let mut args = Vec::new();
            if self.tok != Tok::Punct(")") {
                loop {
                    args.push(self.parse_expr()?);
                    if !self.eat_punct(",")? {
                        break;
                    }
                }
            }
            self.expect_punct(")")?;
            atom = SExpr::Apply(Box::new(atom), args);
        }
        Ok(atom)
    }

    fn parse_atom(&mut self) -> Result<SExpr, SurfaceError> {
        match self.advance()? {
            Tok::Int(s) => Ok(SExpr::Int(s)),
            Tok::Str(s) => Ok(SExpr::Str(s)),
            Tok::Kw("true") => Ok(SExpr::Bool(true)),
            Tok::Kw("false") => Ok(SExpr::Bool(false)),
            Tok::LowerIdent(s) => Ok(SExpr::Var(s)),
            Tok::UpperIdent(s) => Ok(SExpr::CtorRef(s)),
            Tok::AtIdent(s) => {
                self.expect_punct("(")?;
                let mut args = Vec::new();
                if self.tok != Tok::Punct(")") {
                    loop {
                        args.push(self.parse_expr()?);
                        if !self.eat_punct(",")? {
                            break;
                        }
                    }
                }
                self.expect_punct(")")?;
                Ok(SExpr::AtCall(s, args))
            }
            Tok::Punct("(") => {
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            other => Err(self.err(format!("expected expression, found {other:?}"))),
        }
    }
}

// ---- lowering to λpure --------------------------------------------------

struct Lowerer<'a> {
    ctors: &'a HashMap<String, CtorInfo>,
    arities: &'a HashMap<String, usize>,
    scope: Vec<(String, VarId)>,
    next_var: VarId,
    next_join: JoinId,
}

/// Continuation for ANF lowering: what to do with the value's variable.
#[allow(clippy::type_complexity)]
enum Kont<'k> {
    /// Tail position: return it.
    Ret,
    /// Feed it to the rest of the computation.
    Then(Box<dyn FnOnce(&mut Lowerer<'_>, VarId) -> Result<Expr, SurfaceError> + 'k>),
}

impl<'a> Lowerer<'a> {
    fn new(
        ctors: &'a HashMap<String, CtorInfo>,
        arities: &'a HashMap<String, usize>,
    ) -> Lowerer<'a> {
        Lowerer {
            ctors,
            arities,
            scope: Vec::new(),
            next_var: 0,
            next_join: 0,
        }
    }

    fn err(&self, message: impl Into<String>) -> SurfaceError {
        SurfaceError {
            line: 0,
            message: message.into(),
        }
    }

    fn fresh(&mut self) -> VarId {
        let v = self.next_var;
        self.next_var += 1;
        v
    }

    fn lookup(&self, name: &str) -> Option<VarId> {
        self.scope
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, v)| v)
    }

    fn lower_fn(
        mut self,
        name: &str,
        params: &[String],
        body: &SExpr,
    ) -> Result<FnDef, SurfaceError> {
        let mut param_ids = Vec::new();
        for p in params {
            let v = self.fresh();
            self.scope.push((p.clone(), v));
            param_ids.push(v);
        }
        let body = self.lower(body, Kont::Ret)?;
        Ok(FnDef {
            name: name.to_string(),
            params: param_ids,
            body,
            next_var: self.next_var,
            next_join: self.next_join,
        })
    }

    /// Lowers `e`, delivering its result to `k`.
    fn lower(&mut self, e: &SExpr, k: Kont<'_>) -> Result<Expr, SurfaceError> {
        match e {
            SExpr::Int(digits) => {
                let val = match digits.parse::<i64>() {
                    // Stays within the unboxed scalar range.
                    Ok(v) if v < (1 << 62) => Value::LitInt(v),
                    _ => Value::LitBig(digits.clone()),
                };
                self.bind_value(val, k)
            }
            SExpr::Str(s) => self.bind_value(Value::LitStr(s.clone()), k),
            SExpr::Bool(b) => self.bind_value(
                Value::Ctor {
                    tag: *b as u32,
                    args: vec![],
                },
                k,
            ),
            SExpr::Var(name) => match self.lookup(name) {
                Some(v) => self.apply_kont(k, v),
                None => {
                    // A function mentioned without arguments: a closure.
                    if self.arities.contains_key(name) {
                        self.bind_value(
                            Value::Pap {
                                func: name.clone(),
                                args: vec![],
                            },
                            k,
                        )
                    } else {
                        Err(self.err(format!("unknown variable `{name}`")))
                    }
                }
            },
            SExpr::CtorRef(name) => {
                let info = self
                    .ctors
                    .get(name)
                    .ok_or_else(|| self.err(format!("unknown constructor `{name}`")))?
                    .clone();
                if info.arity != 0 {
                    return Err(self.err(format!(
                        "constructor `{name}` expects {} fields",
                        info.arity
                    )));
                }
                self.bind_value(
                    Value::Ctor {
                        tag: info.tag,
                        args: vec![],
                    },
                    k,
                )
            }
            SExpr::AtCall(builtin, args) => {
                let func = format!("lean_{builtin}");
                self.lower_args(args, move |this, arg_vars| {
                    this.bind_value(
                        Value::Call {
                            func,
                            args: arg_vars,
                        },
                        k,
                    )
                })
            }
            SExpr::Binop(op, a, b) => {
                let func = match *op {
                    "+" => "lean_nat_add",
                    "-" => "lean_nat_sub",
                    "*" => "lean_nat_mul",
                    "/" => "lean_nat_div",
                    "%" => "lean_nat_mod",
                    "==" => "lean_nat_dec_eq",
                    "<" => "lean_nat_dec_lt",
                    "<=" => "lean_nat_dec_le",
                    "!=" | ">" | ">=" => "", // handled by swapping/negating below
                    _ => unreachable!(),
                };
                match *op {
                    ">" => {
                        // a > b ⇔ b < a
                        let swapped = SExpr::Binop("<", b.clone(), a.clone());
                        self.lower(&swapped, k)
                    }
                    ">=" => {
                        let swapped = SExpr::Binop("<=", b.clone(), a.clone());
                        self.lower(&swapped, k)
                    }
                    "!=" => {
                        // if a == b then false else true
                        let eq = SExpr::Binop("==", a.clone(), b.clone());
                        let negated = SExpr::If(
                            Box::new(eq),
                            Box::new(SExpr::Bool(false)),
                            Box::new(SExpr::Bool(true)),
                        );
                        self.lower(&negated, k)
                    }
                    _ => {
                        let func = func.to_string();
                        let args = vec![(**a).clone(), (**b).clone()];
                        self.lower_args(&args, move |this, arg_vars| {
                            this.bind_value(
                                Value::Call {
                                    func,
                                    args: arg_vars,
                                },
                                k,
                            )
                        })
                    }
                }
            }
            SExpr::Apply(head, args) => match &**head {
                SExpr::CtorRef(name) => {
                    let info = self
                        .ctors
                        .get(name)
                        .ok_or_else(|| self.err(format!("unknown constructor `{name}`")))?
                        .clone();
                    if info.arity != args.len() {
                        return Err(self.err(format!(
                            "constructor `{name}` expects {} fields, got {}",
                            info.arity,
                            args.len()
                        )));
                    }
                    self.lower_args(args, move |this, arg_vars| {
                        this.bind_value(
                            Value::Ctor {
                                tag: info.tag,
                                args: arg_vars,
                            },
                            k,
                        )
                    })
                }
                SExpr::Var(name) if self.lookup(name).is_none() => {
                    // Top-level function application.
                    let arity = *self
                        .arities
                        .get(name)
                        .ok_or_else(|| self.err(format!("unknown function `{name}`")))?;
                    let func = name.clone();
                    let n = args.len();
                    self.lower_args(args, move |this, arg_vars| {
                        use std::cmp::Ordering;
                        match n.cmp(&arity) {
                            Ordering::Equal => this.bind_value(
                                Value::Call {
                                    func,
                                    args: arg_vars,
                                },
                                k,
                            ),
                            Ordering::Less => this.bind_value(
                                Value::Pap {
                                    func,
                                    args: arg_vars,
                                },
                                k,
                            ),
                            Ordering::Greater => {
                                // Full call, then apply the returned closure
                                // to the remaining arguments.
                                let first: Vec<VarId> = arg_vars[..arity].to_vec();
                                let rest: Vec<VarId> = arg_vars[arity..].to_vec();
                                let clos = this.fresh();
                                let inner =
                                    this.bind_value_into(clos, Value::Call { func, args: first });
                                let app = Value::App {
                                    closure: clos,
                                    args: rest,
                                };
                                let tail = this.bind_value(app, k)?;
                                Ok(inner(tail))
                            }
                        }
                    })
                }
                _ => {
                    // Closure application.
                    let head = (**head).clone();
                    let args_cloned = args.clone();
                    self.lower(
                        &head,
                        Kont::Then(Box::new(move |this, clos| {
                            this.lower_args(&args_cloned, move |this, arg_vars| {
                                this.bind_value(
                                    Value::App {
                                        closure: clos,
                                        args: arg_vars,
                                    },
                                    k,
                                )
                            })
                        })),
                    )
                }
            },
            SExpr::Let(name, rhs, body) => {
                let name = name.clone();
                let body = (**body).clone();
                self.lower(
                    rhs,
                    Kont::Then(Box::new(move |this, v| {
                        this.scope.push((name, v));
                        let out = this.lower(&body, k);
                        this.scope.pop();
                        out
                    })),
                )
            }
            SExpr::If(c, t, e) => {
                let case = SExpr::Case(
                    c.clone(),
                    vec![
                        (SPat::Bool(true), (**t).clone()),
                        (SPat::Bool(false), (**e).clone()),
                    ],
                );
                self.lower(&case, k)
            }
            SExpr::Case(scrut, arms) => {
                // Integer patterns are staged via dec_eq chains (§III-A).
                if arms.iter().any(|(p, _)| matches!(p, SPat::Int(_))) {
                    let desugared = self.desugar_int_case(scrut, arms)?;
                    return self.lower(&desugared, k);
                }
                let arms = arms.clone();
                self.lower(
                    scrut,
                    Kont::Then(Box::new(move |this, sv| this.lower_ctor_case(sv, &arms, k))),
                )
            }
        }
    }

    /// Rewrites `case e of | 0 => .. | 42 => .. | _ => ..` into an
    /// `if e == 0 then .. else if e == 42 then .. else ..` chain.
    fn desugar_int_case(
        &self,
        scrut: &SExpr,
        arms: &[(SPat, SExpr)],
    ) -> Result<SExpr, SurfaceError> {
        let mut default: Option<SExpr> = None;
        let mut int_arms: Vec<(String, SExpr)> = Vec::new();
        for (pat, body) in arms {
            match pat {
                SPat::Int(digits) => int_arms.push((digits.clone(), body.clone())),
                SPat::Wild => default = Some(body.clone()),
                other => {
                    return Err(self.err(format!(
                        "cannot mix integer and constructor patterns ({other:?})"
                    )))
                }
            }
        }
        let mut out =
            default.ok_or_else(|| self.err("integer case needs a `_` default arm".to_string()))?;
        for (digits, body) in int_arms.into_iter().rev() {
            let cmp = SExpr::Binop("==", Box::new(scrut.clone()), Box::new(SExpr::Int(digits)));
            out = SExpr::If(Box::new(cmp), Box::new(body), Box::new(out));
        }
        Ok(out)
    }

    fn lower_ctor_case(
        &mut self,
        sv: VarId,
        arms: &[(SPat, SExpr)],
        k: Kont<'_>,
    ) -> Result<Expr, SurfaceError> {
        match k {
            Kont::Ret => {
                let (alts, default) = self.lower_arms(sv, arms, None)?;
                Ok(Expr::Case {
                    scrutinee: sv,
                    alts,
                    default,
                })
            }
            Kont::Then(f) => {
                // Value-position case: introduce a join point (Figure 5).
                let label = self.next_join;
                self.next_join += 1;
                let pvar = self.fresh();
                let jp_body = f(self, pvar)?;
                // The join point must be self-contained: its free variables
                // (besides pvar) become extra parameters. Parameters get
                // fresh names so every binder in the function stays unique.
                let mut fv: Vec<VarId> = jp_body
                    .free_vars()
                    .into_iter()
                    .filter(|&v| v != pvar)
                    .collect();
                fv.sort_unstable();
                let mut rename = HashMap::new();
                let mut params = Vec::with_capacity(fv.len() + 1);
                for &v in &fv {
                    let fresh = self.fresh();
                    rename.insert(v, fresh);
                    params.push(fresh);
                }
                params.push(pvar);
                let jp_body = jp_body.rename_free(&rename);
                let captured = fv;
                let (alts, default) = self.lower_arms(sv, arms, Some((label, captured)))?;
                Ok(Expr::LetJoin {
                    label,
                    params,
                    jp_body: Box::new(jp_body),
                    body: Box::new(Expr::Case {
                        scrutinee: sv,
                        alts,
                        default,
                    }),
                })
            }
        }
    }

    #[allow(clippy::type_complexity)]
    fn lower_arms(
        &mut self,
        sv: VarId,
        arms: &[(SPat, SExpr)],
        jump_to: Option<(JoinId, Vec<VarId>)>,
    ) -> Result<(Vec<Alt>, Option<Box<Expr>>), SurfaceError> {
        let mut alts = Vec::new();
        let mut default = None;
        for (pat, body) in arms {
            let arm_kont = || -> Kont<'_> {
                match &jump_to {
                    None => Kont::Ret,
                    Some((label, captured)) => {
                        let label = *label;
                        let captured = captured.clone();
                        Kont::Then(Box::new(move |_this, v| {
                            let mut args = captured;
                            args.push(v);
                            Ok(Expr::Jump { label, args })
                        }))
                    }
                }
            };
            match pat {
                SPat::Wild => {
                    if default.is_some() {
                        return Err(self.err("duplicate default arm"));
                    }
                    default = Some(Box::new(self.lower(body, arm_kont())?));
                }
                SPat::Bool(b) => {
                    let lowered = self.lower(body, arm_kont())?;
                    alts.push(Alt {
                        tag: *b as u32,
                        body: lowered,
                    });
                }
                SPat::Ctor(name, binders) => {
                    let info = self
                        .ctors
                        .get(name)
                        .ok_or_else(|| self.err(format!("unknown constructor `{name}`")))?
                        .clone();
                    if info.arity != binders.len() {
                        return Err(self.err(format!(
                            "pattern `{name}` expects {} fields, got {}",
                            info.arity,
                            binders.len()
                        )));
                    }
                    // Bind fields via projections.
                    let mut field_vars = Vec::new();
                    let scope_depth = self.scope.len();
                    for (i, b) in binders.iter().enumerate() {
                        let v = self.fresh();
                        if b != "_" {
                            self.scope.push((b.clone(), v));
                        }
                        field_vars.push((i as u32, v));
                    }
                    let inner = self.lower(body, arm_kont())?;
                    self.scope.truncate(scope_depth);
                    let mut armed = inner;
                    for &(idx, v) in field_vars.iter().rev() {
                        armed = build::let_(v, Value::Proj { var: sv, idx }, armed);
                    }
                    alts.push(Alt {
                        tag: info.tag,
                        body: armed,
                    });
                }
                SPat::Int(_) => unreachable!("int patterns desugared earlier"),
            }
        }
        alts.sort_by_key(|a| a.tag);
        Ok((alts, default))
    }

    /// Lowers a list of argument expressions left-to-right, then calls `f`
    /// with their variables.
    fn lower_args<'k>(
        &mut self,
        args: &[SExpr],
        f: impl FnOnce(&mut Lowerer<'_>, Vec<VarId>) -> Result<Expr, SurfaceError> + 'k,
    ) -> Result<Expr, SurfaceError> {
        self.lower_args_acc(args, Vec::new(), Box::new(f))
    }

    #[allow(clippy::type_complexity)]
    fn lower_args_acc<'k>(
        &mut self,
        rest: &[SExpr],
        mut acc: Vec<VarId>,
        f: Box<dyn FnOnce(&mut Lowerer<'_>, Vec<VarId>) -> Result<Expr, SurfaceError> + 'k>,
    ) -> Result<Expr, SurfaceError> {
        match rest.split_first() {
            None => f(self, acc),
            Some((first, tail)) => {
                let tail = tail.to_vec();
                self.lower(
                    first,
                    Kont::Then(Box::new(move |this, v| {
                        acc.push(v);
                        this.lower_args_acc(&tail, acc, f)
                    })),
                )
            }
        }
    }

    fn apply_kont(&mut self, k: Kont<'_>, v: VarId) -> Result<Expr, SurfaceError> {
        match k {
            Kont::Ret => Ok(Expr::Ret(v)),
            Kont::Then(f) => f(self, v),
        }
    }

    fn bind_value(&mut self, val: Value, k: Kont<'_>) -> Result<Expr, SurfaceError> {
        let v = self.fresh();
        let tail = self.apply_kont(k, v)?;
        Ok(build::let_(v, val, tail))
    }

    /// Returns a function that wraps an expression in `let v = val;`.
    fn bind_value_into(&mut self, v: VarId, val: Value) -> impl FnOnce(Expr) -> Expr {
        move |tail| build::let_(v, val, tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_length() {
        let src = r#"
inductive List := Nil | Cons(head, tail)

def length(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => 1 + length(t)
  end

def main() := length(Cons(1, Cons(2, Nil)))
"#;
        let p = parse_program(src).unwrap();
        assert_eq!(p.fns.len(), 2);
        let length = p.fn_by_name("length").unwrap();
        assert_eq!(length.arity(), 1);
        let text = length.body.to_string();
        assert!(text.contains("case x0 of"), "{text}");
        assert!(text.contains("proj_1(x0)"), "{text}");
        assert!(text.contains("call @length"), "{text}");
        assert!(text.contains("call @lean_nat_add"), "{text}");
    }

    #[test]
    fn value_position_case_creates_join_point() {
        let src = r#"
def f(b) :=
  let x := case b of | true => 1 | false => 2 end;
  x + 10
"#;
        let p = parse_program(src).unwrap();
        let f = p.fn_by_name("f").unwrap();
        let text = f.body.to_string();
        assert!(text.contains("join j0("), "{text}");
        assert!(text.contains("jump j0("), "{text}");
    }

    #[test]
    fn int_patterns_stage_through_dec_eq() {
        // Figure 4's intUsage.
        let src = r#"
def intUsage(n) :=
  case n of
  | 42 => 43
  | _ => 99999999
  end
"#;
        let p = parse_program(src).unwrap();
        let f = p.fn_by_name("intUsage").unwrap();
        let text = f.body.to_string();
        assert!(text.contains("lean_nat_dec_eq"), "{text}");
    }

    #[test]
    fn partial_application_lowered_to_pap() {
        // Figure 7's k10.
        let src = r#"
def k(x, y) := x
def k10() := k(10)
"#;
        let p = parse_program(src).unwrap();
        let k10 = p.fn_by_name("k10").unwrap();
        assert!(k10.body.to_string().contains("pap @k("));
    }

    #[test]
    fn bare_function_reference_is_closure() {
        let src = r#"
def k(x, y) := x
def ap42(f) := f(42)
def k42() := ap42(k)
"#;
        let p = parse_program(src).unwrap();
        let k42 = p.fn_by_name("k42").unwrap();
        assert!(k42.body.to_string().contains("pap @k()"), "{}", k42.body);
        let ap42 = p.fn_by_name("ap42").unwrap();
        assert!(ap42.body.to_string().contains("app x0("), "{}", ap42.body);
    }

    #[test]
    fn oversaturated_application_splits() {
        let src = r#"
def k(x, y) := x
def pair(a) := k
def use() := pair(1)(2, 3)
"#;
        let p = parse_program(src).unwrap();
        let u = p.fn_by_name("use").unwrap();
        let text = u.body.to_string();
        assert!(text.contains("call @pair"), "{text}");
        assert!(text.contains("app "), "{text}");
    }

    #[test]
    fn big_literal_becomes_bigint() {
        let src = "def big() := 99999999999999999999999999";
        let p = parse_program(src).unwrap();
        let f = p.fn_by_name("big").unwrap();
        assert!(f
            .body
            .to_string()
            .contains("big(99999999999999999999999999)"));
    }

    #[test]
    fn comparison_operators_desugar() {
        let src = "def f(a, b) := if a > b then a - b else b - a";
        let p = parse_program(src).unwrap();
        let text = p.fn_by_name("f").unwrap().body.to_string();
        assert!(text.contains("lean_nat_dec_lt"), "{text}");
        assert!(text.contains("lean_nat_sub"), "{text}");
    }

    #[test]
    fn at_builtins() {
        let src = "def f(a, b) := @int_add(a, @int_neg(b))";
        let p = parse_program(src).unwrap();
        let text = p.fn_by_name("f").unwrap().body.to_string();
        assert!(text.contains("lean_int_add"), "{text}");
        assert!(text.contains("lean_int_neg"), "{text}");
    }

    #[test]
    fn errors_are_reported() {
        assert!(parse_program("def f() := unknown_var").is_err());
        assert!(parse_program("def f() := Unknown").is_err());
        assert!(parse_program("def f() := case 1 of end").is_err());
        assert!(parse_program("inductive T := A | A").is_err());
        let e = parse_program("def f(\n\n!").unwrap_err();
        assert!(e.line >= 1);
    }

    #[test]
    fn wildcard_field_binders() {
        let src = r#"
inductive Pair := MkPair(a, b)
def fst(p) := case p of | MkPair(a, _) => a end
"#;
        let p = parse_program(src).unwrap();
        assert!(p.fn_by_name("fst").is_some());
    }

    #[test]
    fn nested_case_inside_arm() {
        let src = r#"
inductive List := Nil | Cons(head, tail)
def f(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) =>
    case t of
    | Nil => h
    | Cons(h2, t2) => h + h2
    end
  end
"#;
        let p = parse_program(src).unwrap();
        assert!(p.fn_by_name("f").is_some());
    }
}
