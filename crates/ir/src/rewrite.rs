//! Greedy pattern rewriting — the engine behind canonicalization.
//!
//! Patterns implement [`RewritePattern`]; [`apply_patterns_greedily`] walks
//! the op list to a fixpoint, like MLIR's `applyPatternsAndFoldGreedily`.
//! The `rgn` dialect's optimizations in `lssa-core` are expressed as
//! patterns over this same driver — that is the paper's point: region
//! transformations *are* classical SSA rewrites.

use crate::body::Body;
use crate::ids::OpId;
use crate::module::Module;

/// Context visible to patterns (module-level lookups).
#[derive(Debug, Clone, Copy)]
pub struct RewriteCtx<'a> {
    /// The enclosing module (function signatures, globals). The function
    /// currently being rewritten has its body detached.
    pub module: &'a Module,
}

/// A local rewrite.
pub trait RewritePattern {
    /// Pattern name (debugging/statistics).
    fn name(&self) -> &'static str;

    /// Attempts to rewrite `op`; returns `true` when IR changed. On `true`
    /// the driver re-enqueues everything, so a pattern may leave dead ops
    /// behind (DCE-style cleanup happens in the driver).
    fn match_and_rewrite(&self, body: &mut Body, op: OpId, ctx: &RewriteCtx<'_>) -> bool;
}

/// Applies `patterns` until no pattern fires anywhere.
///
/// Between sweeps, trivially-dead pure ops are erased (patterns routinely
/// strand constant or selector ops).
///
/// Returns whether anything changed.
///
/// # Panics
///
/// Panics after an excessive number of sweeps, which indicates a pattern
/// that reports "changed" without making progress.
pub fn apply_patterns_greedily(
    body: &mut Body,
    ctx: &RewriteCtx<'_>,
    patterns: &[Box<dyn RewritePattern>],
) -> bool {
    let mut changed_any = false;
    for sweep in 0.. {
        assert!(
            sweep < 1000,
            "pattern rewriting failed to converge after 1000 sweeps"
        );
        let mut changed = false;
        for op in body.walk_ops() {
            if body.ops[op.index()].dead || body.ops[op.index()].parent.is_none() {
                continue;
            }
            for p in patterns {
                if body.ops[op.index()].dead || body.ops[op.index()].parent.is_none() {
                    break;
                }
                if p.match_and_rewrite(body, op, ctx) {
                    changed = true;
                }
            }
        }
        changed |= erase_trivially_dead(body);
        changed_any |= changed;
        if !changed {
            break;
        }
    }
    changed_any
}

/// Erases pure/alloc ops whose results are all unused. Returns whether
/// anything was erased.
pub fn erase_trivially_dead(body: &mut Body) -> bool {
    use crate::opcode::Purity;
    let mut changed = false;
    loop {
        let counts = body.use_counts();
        let mut erased = false;
        for op in body.walk_ops() {
            let data = &body.ops[op.index()];
            if data.dead || data.opcode.purity() == Purity::Effect {
                continue;
            }
            let unused = data
                .results
                .iter()
                .all(|r| counts.get(r).copied().unwrap_or(0) == 0);
            if unused {
                body.erase_op(op);
                erased = true;
            }
        }
        changed |= erased;
        if !erased {
            break;
        }
    }
    changed
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::opcode::Opcode;
    use crate::types::Type;

    /// A toy pattern: replaces `x + 0` with `x`.
    struct AddZero;
    impl RewritePattern for AddZero {
        fn name(&self) -> &'static str {
            "add-zero"
        }
        fn match_and_rewrite(&self, body: &mut Body, op: OpId, _ctx: &RewriteCtx<'_>) -> bool {
            if body.ops[op.index()].opcode != Opcode::AddI {
                return false;
            }
            let [a, b] = body.ops[op.index()].operands[..] else {
                return false;
            };
            let is_zero = |body: &Body, v| {
                body.defining_op(v)
                    .map(|d| {
                        body.ops[d.index()].opcode == Opcode::ConstI
                            && body.ops[d.index()]
                                .attr(crate::attr::AttrKey::Value)
                                .and_then(|a| a.as_int())
                                == Some(0)
                    })
                    .unwrap_or(false)
            };
            let keep = if is_zero(body, b) {
                a
            } else if is_zero(body, a) {
                b
            } else {
                return false;
            };
            let result = body.ops[op.index()].result().unwrap();
            body.replace_all_uses(result, keep);
            body.erase_op(op);
            true
        }
    }

    #[test]
    fn greedy_driver_reaches_fixpoint_and_cleans_up() {
        let mut module = Module::new();
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let z = b.const_i(0, Type::I64);
        let s1 = b.addi(params[0], z);
        let s2 = b.addi(s1, z);
        b.ret(s2);
        let patterns: Vec<Box<dyn RewritePattern>> = vec![Box::new(AddZero)];
        let changed = {
            let ctx = RewriteCtx { module: &module };
            apply_patterns_greedily(&mut body, &ctx, &patterns)
        };
        assert!(changed);
        // Both adds and the constant should be gone; only return remains.
        assert_eq!(body.live_op_count(), 1);
        let ret = body.walk_ops()[0];
        assert_eq!(body.ops[ret.index()].operands, vec![params[0]]);
        module.add_function(
            "f",
            crate::types::Signature::new(vec![Type::I64], Type::I64),
            body,
        );
        crate::verifier::verify_module(&module).unwrap();
    }

    #[test]
    fn dead_alloc_ops_are_erased() {
        let mut module = Module::new();
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let _unused = b.lp_construct(0, vec![]);
        let v = b.lp_int(1);
        b.lp_ret(v);
        let patterns: Vec<Box<dyn RewritePattern>> = vec![];
        let ctx = RewriteCtx { module: &module };
        assert!(apply_patterns_greedily(&mut body, &ctx, &patterns));
        assert_eq!(body.live_op_count(), 2);
        module.add_function("f", crate::types::Signature::obj(0), body);
    }

    #[test]
    fn effectful_ops_survive() {
        let module = Module::new();
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        b.lp_ret(params[0]);
        let patterns: Vec<Box<dyn RewritePattern>> = vec![];
        let ctx = RewriteCtx { module: &module };
        assert!(!apply_patterns_greedily(&mut body, &ctx, &patterns));
        assert_eq!(body.live_op_count(), 2);
    }
}
