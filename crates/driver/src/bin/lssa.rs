//! The `lssa` command-line compiler driver.
//!
//! ```text
//! lssa run <file> [--backend leanc|mlir|rgn-only|none] [--pass-stats] [--vm-stats] [--print-ir-after-all]
//! lssa dump <file> [--stage lp|rgn|opt|cfg]
//! lssa diff <file>
//! lssa bench <name> [--scale test|bench|stress]
//! ```
//!
//! `--pass-stats` prints the backend's per-pass statistics table (runs,
//! changed flag, live-op counts before/after, wall time, per named
//! pipeline) after the program's result; `--vm-stats` prints the run-side
//! mirror — the VM's per-opcode-class table (executed counts, heap
//! allocations, frame-pool behaviour, max frame depth, wall time).
//! `--print-ir-after-all` dumps the module to stderr after every pass,
//! MLIR-style.

use lssa_driver::pipelines::{
    compile_and_run, compile_and_run_with_report, frontend, Backend, CompilerConfig,
};
use lssa_driver::workloads::{by_name, Scale};
use std::process::ExitCode;

const MAX_STEPS: u64 = 2_000_000_000;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("usage:");
            eprintln!(
                "  lssa run <file> [--backend leanc|mlir|rgn-only|none] [--pass-stats] [--vm-stats] [--print-ir-after-all]"
            );
            eprintln!("  lssa dump <file> [--stage lambda|lp|rgn|opt|cfg]");
            eprintln!("  lssa diff <file>");
            eprintln!("  lssa bench <name> [--scale test|bench|stress]");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], flag: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .map(|s| s.as_str())
}

fn has_flag(args: &[String], flag: &str) -> bool {
    args.iter().any(|a| a == flag)
}

fn config_of(name: &str) -> Result<CompilerConfig, String> {
    match name {
        "leanc" => Ok(CompilerConfig::leanc()),
        "mlir" => Ok(CompilerConfig::mlir()),
        "rgn-only" => Ok(CompilerConfig::rgn_only()),
        "none" => Ok(CompilerConfig::none()),
        other => Err(format!("unknown backend `{other}`")),
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "run" => {
            let file = args.get(1).ok_or("missing file")?;
            let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let mut config = config_of(flag_value(args, "--backend").unwrap_or("mlir"))?;
            let want_stats = has_flag(args, "--pass-stats");
            let want_vm_stats = has_flag(args, "--vm-stats");
            if has_flag(args, "--print-ir-after-all") {
                match config.backend {
                    Backend::Mlir(mut opts) => {
                        opts.print_ir_after_all = true;
                        config.backend = Backend::Mlir(opts);
                    }
                    Backend::Baseline => {
                        return Err(
                            "--print-ir-after-all requires an MLIR-style backend (not leanc)"
                                .to_string(),
                        )
                    }
                }
            }
            let (out, report) =
                compile_and_run_with_report(&src, config, MAX_STEPS).map_err(|e| e.to_string())?;
            println!("{}", out.rendered);
            eprintln!(
                "-- {} instructions, {} calls, peak {} live objects",
                out.stats.instructions, out.stats.calls, out.stats.heap.peak_live
            );
            if want_stats {
                match report {
                    Some(report) => {
                        print!("{}", report.render_table());
                        println!(
                            "total: {:.3}ms across {} pipelines",
                            report.total_duration().as_secs_f64() * 1e3,
                            report.phases.len()
                        );
                    }
                    None => eprintln!("-- no pass statistics: the leanc backend has no pipeline"),
                }
            }
            if want_vm_stats {
                print!("{}", out.vm_stats.render_table());
            }
            Ok(())
        }
        "dump" => {
            let file = args.get(1).ok_or("missing file")?;
            let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let stage = flag_value(args, "--stage").unwrap_or("cfg");
            let rc = frontend(&src, CompilerConfig::mlir()).map_err(|e| e.to_string())?;
            match stage {
                "lambda" => {
                    for f in &rc.fns {
                        println!("{f}");
                    }
                }
                "lp" => {
                    let m = lssa_core::lp::from_lambda::lower_program(&rc);
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                "rgn" => {
                    let mut m = lssa_core::lp::from_lambda::lower_program(&rc);
                    lssa_core::rgn::from_lp::lower_module(&mut m);
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                "opt" => {
                    let mut m = lssa_core::lp::from_lambda::lower_program(&rc);
                    lssa_core::rgn::from_lp::lower_module(&mut m);
                    // The exact pipeline `compile` runs, so the dump shows
                    // the IR the CFG lowering actually receives.
                    lssa_core::pipeline::rgn_opt_pipeline(lssa_core::PipelineOptions::full())
                        .run(&mut m);
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                "cfg" => {
                    let m = lssa_core::pipeline::compile(&rc, lssa_core::PipelineOptions::full());
                    print!("{}", lssa_ir::printer::print_module(&m));
                }
                other => return Err(format!("unknown stage `{other}`")),
            }
            Ok(())
        }
        "diff" => {
            let file = args.get(1).ok_or("missing file")?;
            let src = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
            let r = lssa_driver::diff::run_differential(file, &src, MAX_STEPS);
            match r.failure {
                None => {
                    println!("PASS: all pipelines agree on {:?}", r.rendered.unwrap());
                    Ok(())
                }
                Some(f) => Err(format!("differential mismatch: {f}")),
            }
        }
        "bench" => {
            let name = args.get(1).ok_or("missing benchmark name")?;
            let scale = match flag_value(args, "--scale").unwrap_or("test") {
                "test" => Scale::Test,
                "bench" => Scale::Bench,
                "stress" => Scale::Stress,
                other => return Err(format!("unknown scale `{other}`")),
            };
            let w = by_name(name, scale).ok_or_else(|| format!("unknown benchmark `{name}`"))?;
            for config in lssa_driver::diff::configs() {
                let start = std::time::Instant::now();
                let out = compile_and_run(&w.src, config, MAX_STEPS).map_err(|e| e.to_string())?;
                let elapsed = start.elapsed();
                println!(
                    "{:28} {:>12?} {:>14} instrs  result={}",
                    config.label(),
                    elapsed,
                    out.stats.instructions,
                    out.rendered
                );
            }
            Ok(())
        }
        other => Err(format!("unknown command `{other}`")),
    }
}
