//! Reusable dataflow analyses over the flat-CFG form.
//!
//! The pass pipeline (PR 8) made the compiler *rewrite* reference-count
//! traffic; this module makes it possible to *prove* facts about the result.
//! The pieces stack:
//!
//! - [`cfg::BlockGraph`] — a cached successor/predecessor/reverse-postorder
//!   view of one region's block graph (the raw [`crate::body::Body`] stores
//!   only successors, on terminators).
//! - [`dataflow`] — a direction-generic worklist solver: implement
//!   [`dataflow::Analysis`] (transfer + join over a fact lattice) and
//!   [`dataflow::solve`] computes the per-block fixpoint.
//! - [`liveness::Liveness`] — per-block live-in/live-out value sets, as a
//!   backward may-analysis on the solver.
//! - [`usedef::UseDefChains`] — every use site of every value (operand and
//!   successor-argument uses), the SSA form of reaching definitions.
//! - [`rc_summary`] — value ownership classes and composable per-block
//!   reference-count effect summaries (net delta + minimum prefix dip per
//!   value).
//! - [`rc_check`] — the RC-linearity checker built on all of the above: a
//!   forward walk proving every owned value is released exactly once on
//!   every path, with an explicit [`rc_check::RcVerdict::Unprovable`]
//!   verdict where aliasing defeats the per-value ledger (never a false
//!   positive).
//!
//! The checker is wired into [`crate::pass::PassManager::verify_rc`] (the
//! pipeline's `verify-rc` mode) and the `lssa lint` driver.

pub mod cfg;
pub mod dataflow;
pub mod liveness;
pub mod rc_check;
pub mod rc_summary;
pub mod usedef;

pub use cfg::BlockGraph;
pub use dataflow::{solve, Analysis, Direction, Solution};
pub use liveness::Liveness;
pub use rc_check::{check_function, check_module, RcVerdict};
pub use usedef::UseDefChains;
