//! Property-based fuzzing of the `.lssa` text frontend, driven by the same
//! program generator the conformance suite uses:
//!
//! - `parse(print(p)) == p` exactly (id bounds included) for generated
//!   λpure programs *and* their λrc forms,
//! - formatting is idempotent, also on simplified programs whose variable
//!   ids have gaps,
//! - whitespace mangling never changes what the formatter produces,
//! - (with `--features slow-tests`) reparsed text executes identically to
//!   the original program through the full compile-to-VM pipeline, both
//!   decode modes.

use lambda_ssa::driver::conformance::generated;
use lambda_ssa::lambda::ast::Program;
use lambda_ssa::lambda::{insert_rc, parse_program, simplify_program, SimplifyOptions};
use lambda_ssa::syntax;
use proptest::prelude::*;

/// One generated surface program, lowered to the AST.
fn surface(seed: u64) -> Program {
    let case = generated(1, seed).remove(0);
    parse_program(&case.src).expect("generated programs parse")
}

/// Strict parse that surfaces diagnostics in the proptest failure message.
fn reparse(text: &str) -> Result<Program, TestCaseError> {
    syntax::parse_program(text)
        .map_err(|d| TestCaseError::fail(format!("reparse failed: {d:?}\n---\n{text}")))
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(feature = "slow-tests") { 96 } else { 32 },
        .. ProptestConfig::default()
    })]

    /// The printer and parser are exact inverses on λpure programs.
    #[test]
    fn print_parse_roundtrips_lambda_pure(seed in any::<u32>()) {
        let p = surface(seed as u64);
        let text = syntax::print_program(&p);
        let back = reparse(&text)?;
        prop_assert_eq!(&back, &p, "round-trip changed the program:\n{}", text);
        // Generated programs are wellformed, so the checker must be silent.
        prop_assert!(syntax::check_source(&text).is_empty());
    }

    /// Same, after RC insertion — `inc`/`dec` survive the text form.
    #[test]
    fn print_parse_roundtrips_lambda_rc(seed in any::<u32>()) {
        let rc = insert_rc(&surface(seed as u64 ^ 0x0ff0_0ff0));
        let text = syntax::print_program(&rc);
        let back = reparse(&text)?;
        prop_assert_eq!(&back, &rc, "λrc round-trip changed the program:\n{}", text);
    }

    /// `fmt(fmt(s)) == fmt(s)`, including on simplified programs whose
    /// variable ids have gaps (those never round-trip the id *bounds*, but
    /// the printed text must still be a fixpoint).
    #[test]
    fn formatting_is_idempotent(seed in any::<u32>()) {
        let p = surface(seed as u64 ^ 0x5eed_cafe);
        let text = syntax::print_program(&p);
        prop_assert_eq!(syntax::format_source(&text).expect("canonical text formats"), text);
        let s = simplify_program(&p, SimplifyOptions::all());
        let stext = syntax::print_program(&s);
        prop_assert_eq!(syntax::format_source(&stext).expect("simplified text formats"), stext);
    }

    /// Collapsing all layout whitespace leaves the formatter's output
    /// unchanged. (Guarded on string literals, whose spaces are content.)
    #[test]
    fn formatting_normalises_mangled_whitespace(seed in any::<u32>()) {
        let text = syntax::print_program(&surface(seed as u64 ^ 0x77ab_cdef));
        if !text.contains('"') {
            let mangled = text.replace('\n', " \t  ");
            prop_assert_eq!(
                syntax::format_source(&mangled).expect("mangled text still parses"),
                text
            );
        }
    }
}

#[cfg(feature = "slow-tests")]
mod slow {
    use super::*;
    use lambda_ssa::driver::pipelines::{compile_and_run_ast_opts, CompilerConfig};
    use lambda_ssa::vm::DecodeOptions;

    const MAX_STEPS: u64 = 200_000_000;

    proptest! {
        #![proptest_config(ProptestConfig {
            cases: 24, // 4 configs × 2 decode modes × 2 programs per case
            .. ProptestConfig::default()
        })]

        /// Full-pipeline equivalence: a program that went text → parse must
        /// compile and run exactly like the programmatic original under
        /// every configuration and decode mode.
        #[test]
        fn reparsed_text_executes_identically(seed in any::<u32>()) {
            let p = surface(seed as u64 ^ 0x5107_7e57);
            let text = syntax::print_program(&p);
            let reparsed = reparse(&text)?;
            for config in [
                CompilerConfig::leanc(),
                CompilerConfig::mlir(),
                CompilerConfig::rgn_only(),
                CompilerConfig::none(),
            ] {
                for decode in [DecodeOptions::fused(), DecodeOptions::no_fuse()] {
                    let a = compile_and_run_ast_opts(&p, config, MAX_STEPS, decode)
                        .map_err(|e| TestCaseError::fail(format!("original: {e}")))?;
                    let b = compile_and_run_ast_opts(&reparsed, config, MAX_STEPS, decode)
                        .map_err(|e| TestCaseError::fail(format!("reparsed: {e}")))?;
                    prop_assert_eq!(&a.rendered, &b.rendered, "[{}]\n{}", config.label(), text);
                    prop_assert_eq!(a.stats.heap.live, 0);
                    prop_assert_eq!(b.stats.heap.live, 0);
                }
            }
        }
    }
}
