//! Global Region Numbering (§IV-B.2): CSE extended to region values.
//!
//! "For straight-line regions, the value number of the region is defined as
//! a rolling hash of the value numbers of all instructions within the
//! region. Two regions have the same value number iff the sequence of
//! instructions have the same value numbers in identical order."
//!
//! Values defined *outside* the region participate by identity (a
//! conservative value numbering); values defined *inside* participate by
//! position. A fingerprint match is confirmed by a full structural
//! comparison before merging, so hash collisions cannot miscompile.

use lssa_ir::body::Body;
use lssa_ir::dom::DomTree;
use lssa_ir::ids::{BlockId, OpId, RegionId, ValueId};
use lssa_ir::module::Module;
use lssa_ir::opcode::Opcode;
use lssa_ir::pass::{for_each_function, Pass};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// The GRN pass: merges structurally identical `rgn.val`s (region CSE).
#[derive(Debug, Default, Clone, Copy)]
pub struct GrnPass;

impl Pass for GrnPass {
    fn name(&self) -> &'static str {
        "global-region-numbering"
    }

    fn run_on(&self, module: &mut Module) -> bool {
        for_each_function(module, |_, body| run_on_body(body))
    }
}

/// Runs GRN on one body. Returns whether any regions were merged.
pub fn run_on_body(body: &mut Body) -> bool {
    let mut changed = false;
    // Process every containing region like classical dominance-scoped CSE.
    for ri in 0..body.regions.len() {
        let region = RegionId(ri as u32);
        if body.regions[ri].blocks.is_empty() {
            continue;
        }
        if ri != 0 && body.regions[ri].parent.is_none() {
            continue;
        }
        changed |= grn_region(body, region);
    }
    changed
}

fn grn_region(body: &mut Body, region: RegionId) -> bool {
    let tree = DomTree::compute(body, region);
    let blocks: Vec<BlockId> = body.regions[region.index()].blocks.clone();
    let mut table: HashMap<u64, Vec<(OpId, ValueId, BlockId)>> = HashMap::new();
    let mut changed = false;
    for &block in &blocks {
        if !tree.is_reachable(block) {
            continue;
        }
        let ops = body.blocks[block.index()].ops.clone();
        for op in ops {
            if body.ops[op.index()].dead || body.ops[op.index()].opcode != Opcode::RgnVal {
                continue;
            }
            let Some(fp) = region_fingerprint(body, body.ops[op.index()].regions[0]) else {
                continue;
            };
            let candidates = table.entry(fp).or_default();
            let mut merged = false;
            for &(prev_op, prev_val, prev_block) in candidates.iter() {
                if body.ops[prev_op.index()].dead {
                    continue;
                }
                let dominates = prev_block == block || tree.dominates(prev_block, block);
                if dominates
                    && regions_structurally_equal(
                        body,
                        body.ops[prev_op.index()].regions[0],
                        body.ops[op.index()].regions[0],
                    )
                {
                    let this_val = body.ops[op.index()].result().unwrap();
                    body.replace_all_uses(this_val, prev_val);
                    body.erase_op(op);
                    changed = true;
                    merged = true;
                    break;
                }
            }
            if !merged {
                let val = body.ops[op.index()].result().unwrap();
                candidates.push((op, val, block));
            }
        }
    }
    changed
}

/// The region's value number: a rolling hash over its instruction sequence.
/// Returns `None` for multi-block ("non-straight-line") regions.
pub fn region_fingerprint(body: &Body, region: RegionId) -> Option<u64> {
    let mut hasher = DefaultHasher::new();
    let mut numbering: HashMap<ValueId, u64> = HashMap::new();
    fingerprint_into(body, region, &mut hasher, &mut numbering)?;
    Some(hasher.finish())
}

fn fingerprint_into(
    body: &Body,
    region: RegionId,
    hasher: &mut DefaultHasher,
    numbering: &mut HashMap<ValueId, u64>,
) -> Option<()> {
    let blocks = &body.regions[region.index()].blocks;
    if blocks.len() != 1 {
        return None; // not a straight-line region
    }
    let block = blocks[0];
    let args = &body.blocks[block.index()].args;
    args.len().hash(hasher);
    for (i, &a) in args.iter().enumerate() {
        numbering.insert(a, (1 << 32) | i as u64);
        body.value_type(a).hash(hasher);
    }
    let mut next_local: u64 = 2 << 32;
    for &op in &body.blocks[block.index()].ops {
        let data = &body.ops[op.index()];
        data.opcode.hash(hasher);
        data.attrs.hash(hasher);
        for &o in &data.operands {
            match numbering.get(&o) {
                // Internal value: by position.
                Some(&n) => n.hash(hasher),
                // External value: by identity (conservative GVN).
                None => (u64::MAX ^ o.0 as u64).hash(hasher),
            }
        }
        for &r in &data.results {
            body.value_type(r).hash(hasher);
            numbering.insert(r, next_local);
            next_local += 1;
        }
        for &nested in &data.regions {
            fingerprint_into(body, nested, hasher, numbering)?;
        }
    }
    Some(())
}

/// Full structural equality of two straight-line regions (modulo internal
/// value names). External values must be identical.
pub fn regions_structurally_equal(body: &Body, r1: RegionId, r2: RegionId) -> bool {
    let mut map: HashMap<ValueId, ValueId> = HashMap::new();
    regions_eq_rec(body, r1, r2, &mut map)
}

fn regions_eq_rec(
    body: &Body,
    r1: RegionId,
    r2: RegionId,
    map: &mut HashMap<ValueId, ValueId>,
) -> bool {
    let b1 = &body.regions[r1.index()].blocks;
    let b2 = &body.regions[r2.index()].blocks;
    if b1.len() != 1 || b2.len() != 1 {
        return false;
    }
    let (b1, b2) = (b1[0], b2[0]);
    let a1 = &body.blocks[b1.index()].args;
    let a2 = &body.blocks[b2.index()].args;
    if a1.len() != a2.len() {
        return false;
    }
    for (&x, &y) in a1.iter().zip(a2) {
        if body.value_type(x) != body.value_type(y) {
            return false;
        }
        map.insert(x, y);
    }
    let o1 = &body.blocks[b1.index()].ops;
    let o2 = &body.blocks[b2.index()].ops;
    if o1.len() != o2.len() {
        return false;
    }
    for (&x, &y) in o1.iter().zip(o2) {
        let d1 = &body.ops[x.index()];
        let d2 = &body.ops[y.index()];
        if d1.opcode != d2.opcode
            || d1.attrs != d2.attrs
            || d1.operands.len() != d2.operands.len()
            || d1.results.len() != d2.results.len()
            || d1.regions.len() != d2.regions.len()
        {
            return false;
        }
        for (&p, &q) in d1.operands.iter().zip(&d2.operands) {
            let expected = map.get(&p).copied().unwrap_or(p);
            if expected != q {
                return false;
            }
        }
        for (&p, &q) in d1.results.iter().zip(&d2.results) {
            if body.value_type(p) != body.value_type(q) {
                return false;
            }
            map.insert(p, q);
        }
        for (&p, &q) in d1.regions.iter().zip(&d2.regions) {
            if !regions_eq_rec(body, p, q, map) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use lssa_ir::builder::Builder;
    use lssa_ir::prelude::*;

    /// Builds `%x = rgn.val { lp.int k; lp.ret }` and returns the value.
    fn mk_region_const(body: &mut Body, block: BlockId, k: i64) -> ValueId {
        let mut b = Builder::at_end(body, block);
        let (rv, inner) = b.rgn_val(&[]);
        let mut ib = Builder::at_end(body, inner);
        let v = ib.lp_int(k);
        ib.lp_ret(v);
        rv
    }

    #[test]
    fn identical_regions_share_a_number() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let x = mk_region_const(&mut body, entry, 7);
        let y = mk_region_const(&mut body, entry, 7);
        let rx = body.ops[body.defining_op(x).unwrap().index()].regions[0];
        let ry = body.ops[body.defining_op(y).unwrap().index()].regions[0];
        assert_eq!(region_fingerprint(&body, rx), region_fingerprint(&body, ry));
        assert!(regions_structurally_equal(&body, rx, ry));
    }

    #[test]
    fn different_constants_differ() {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let x = mk_region_const(&mut body, entry, 7);
        let y = mk_region_const(&mut body, entry, 8);
        let rx = body.ops[body.defining_op(x).unwrap().index()].regions[0];
        let ry = body.ops[body.defining_op(y).unwrap().index()].regions[0];
        assert_ne!(region_fingerprint(&body, rx), region_fingerprint(&body, ry));
        assert!(!regions_structurally_equal(&body, rx, ry));
    }

    #[test]
    fn external_values_compared_by_identity() {
        // Two regions returning different outer values must not merge.
        let (mut body, params) = Body::new(&[Type::Obj, Type::Obj]);
        let entry = body.entry_block();
        let mk = |body: &mut Body, v: ValueId| -> RegionId {
            let mut b = Builder::at_end(body, entry);
            let (rv, inner) = b.rgn_val(&[]);
            let mut ib = Builder::at_end(body, inner);
            ib.lp_ret(v);
            body.ops[body.defining_op(rv).unwrap().index()].regions[0]
        };
        let r1 = mk(&mut body, params[0]);
        let r2 = mk(&mut body, params[1]);
        let r3 = mk(&mut body, params[0]);
        assert_ne!(region_fingerprint(&body, r1), region_fingerprint(&body, r2));
        assert_eq!(region_fingerprint(&body, r1), region_fingerprint(&body, r3));
        assert!(!regions_structurally_equal(&body, r1, r2));
        assert!(regions_structurally_equal(&body, r1, r3));
    }

    #[test]
    fn grn_merges_and_enables_select_fold() {
        // The paper's §IV-B.2 example: case b of True => 7 | False => 7.
        let (mut body, params) = Body::new(&[Type::I1]);
        let entry = body.entry_block();
        let x = mk_region_const(&mut body, entry, 7);
        let y = mk_region_const(&mut body, entry, 7);
        let mut b = Builder::at_end(&mut body, entry);
        let sel = b.select(params[0], x, y);
        b.rgn_run(sel, vec![]);
        assert!(run_on_body(&mut body));
        // The select now sees the same region on both sides.
        let sel_op = body.defining_op(sel).unwrap();
        let ops = &body.ops[sel_op.index()].operands;
        assert_eq!(ops[1], ops[2], "both branches must be the merged region");
    }

    #[test]
    fn internal_renaming_is_ignored() {
        // Regions differing only in internal SSA names are equal. Build one
        // region with an extra dead-free shape: int, add-like chain via two
        // ints and construct.
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mk = |body: &mut Body| -> ValueId {
            let mut b = Builder::at_end(body, entry);
            let (rv, inner) = b.rgn_val(&[]);
            let mut ib = Builder::at_end(body, inner);
            let a = ib.lp_int(1);
            let c = ib.lp_construct(3, vec![a]);
            ib.lp_ret(c);
            rv
        };
        let x = mk(&mut body);
        let y = mk(&mut body);
        let rx = body.ops[body.defining_op(x).unwrap().index()].regions[0];
        let ry = body.ops[body.defining_op(y).unwrap().index()].regions[0];
        assert!(regions_structurally_equal(&body, rx, ry));
    }

    #[test]
    fn region_args_participate() {
        // Join-point-style regions with different arg counts differ.
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let (x, bx) = b.rgn_val(&[Type::Obj]);
        {
            let arg = b.body.blocks[bx.index()].args[0];
            let mut ib = Builder::at_end(b.body, bx);
            ib.lp_ret(arg);
        }
        let mut b = Builder::at_end(&mut body, entry);
        let (y, by) = b.rgn_val(&[]);
        {
            let mut ib = Builder::at_end(b.body, by);
            let v = ib.lp_int(0);
            ib.lp_ret(v);
        }
        let rx = body.ops[body.defining_op(x).unwrap().index()].regions[0];
        let ry = body.ops[body.defining_op(y).unwrap().index()].regions[0];
        assert_ne!(region_fingerprint(&body, rx), region_fingerprint(&body, ry));
    }
}
