//! End-to-end compiler configurations: the exact pipelines the paper's
//! evaluation compares.
//!
//! ```text
//! source ──parse──▶ λpure ──[simplifier]──▶ λpure ──insert_rc──▶ λrc
//!     λrc ──baseline──▶ CFG   (leanc model: direct lowering, heuristic TCO)
//!     λrc ──lp──▶ rgn ──[region opts]──▶ CFG   (the paper's backend)
//!                                 └──▶ bytecode ──▶ VM
//! ```

use lssa_core::pipeline::PipelineOptions;
use lssa_lambda::ast::Program;
use lssa_lambda::simplify::SimplifyOptions;
use lssa_vm::{CompiledProgram, RunOutcome};
use std::fmt;

/// Which backend lowers λrc to the flat CFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Direct lowering modelling the C backend (`lssa_driver::baseline`).
    Baseline,
    /// The lp+rgn MLIR-style backend with the given options.
    Mlir(PipelineOptions),
}

/// A full compiler configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompilerConfig {
    /// λpure simplifier to run before RC insertion (`None` = unoptimized
    /// λrc, the input of Figure 10's variants b/c).
    pub simplify: Option<SimplifyOptions>,
    /// The backend.
    pub backend: Backend,
}

impl CompilerConfig {
    /// The `leanc` model: λrc simplifier + direct C-style backend.
    pub fn leanc() -> CompilerConfig {
        CompilerConfig {
            simplify: Some(SimplifyOptions::all()),
            backend: Backend::Baseline,
        }
    }

    /// The paper's backend fed simplified λrc (Figure 10 variant a).
    pub fn mlir() -> CompilerConfig {
        CompilerConfig {
            simplify: Some(SimplifyOptions::all()),
            backend: Backend::Mlir(PipelineOptions::full()),
        }
    }

    /// Unoptimized λrc, rgn optimizations on (Figure 10 variant b: "we
    /// disable LEAN's simpcase pass which performs rgn style switch
    /// simplification" — here the λ simplifier is skipped entirely, so the
    /// rgn passes see raw λrc).
    pub fn rgn_only() -> CompilerConfig {
        CompilerConfig {
            simplify: None,
            backend: Backend::Mlir(PipelineOptions::full()),
        }
    }

    /// Unsimplified λrc, no optimization anywhere (Figure 10 variant c).
    pub fn none() -> CompilerConfig {
        CompilerConfig {
            simplify: None,
            backend: Backend::Mlir(PipelineOptions::no_opt()),
        }
    }

    /// Short label for reports.
    pub fn label(&self) -> String {
        let front = match self.simplify {
            Some(s) if s == SimplifyOptions::all() => "simplified",
            Some(_) => "partial-simplify",
            None => "raw",
        };
        let back = match self.backend {
            Backend::Baseline => "leanc".to_string(),
            Backend::Mlir(o) => format!(
                "mlir{}{}",
                if o.region_opts { "+rgn" } else { "" },
                if o.generic_opts { "+generic" } else { "" }
            ),
        };
        format!("{front}/{back}")
    }
}

/// A compilation failure anywhere along the pipeline.
#[derive(Debug, Clone)]
pub struct PipelineError {
    /// Which stage failed.
    pub stage: &'static str,
    /// Description.
    pub message: String,
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error: {}", self.stage, self.message)
    }
}

impl std::error::Error for PipelineError {}

/// Parses and front-lowers source into λrc under a config.
///
/// # Errors
///
/// Returns the first front-end failure.
pub fn frontend(src: &str, config: CompilerConfig) -> Result<Program, PipelineError> {
    let program = lssa_lambda::parse_program(src).map_err(|e| PipelineError {
        stage: "parse",
        message: e.to_string(),
    })?;
    lssa_lambda::check_program(&program).map_err(|errs| PipelineError {
        stage: "wellformedness",
        message: errs
            .iter()
            .map(|e| e.to_string())
            .collect::<Vec<_>>()
            .join("; "),
    })?;
    let program = match config.simplify {
        Some(opts) => lssa_lambda::simplify_program(&program, opts),
        None => program,
    };
    Ok(lssa_lambda::insert_rc(&program))
}

/// Compiles λrc to bytecode under a config's backend.
///
/// # Errors
///
/// Returns backend failures.
pub fn backend(rc: &Program, config: CompilerConfig) -> Result<CompiledProgram, PipelineError> {
    let module = match config.backend {
        Backend::Baseline => crate::baseline::lower_program(rc),
        Backend::Mlir(opts) => lssa_core::pipeline::compile(rc, opts),
    };
    if let Err(errs) = lssa_ir::verifier::verify_module(&module) {
        return Err(PipelineError {
            stage: "verify",
            message: errs
                .iter()
                .map(|e| e.to_string())
                .collect::<Vec<_>>()
                .join("; "),
        });
    }
    lssa_vm::compile_module(&module).map_err(|e| PipelineError {
        stage: "bytecode",
        message: e.to_string(),
    })
}

/// Compiles source end-to-end.
///
/// # Errors
///
/// Returns the first failure along the pipeline.
pub fn compile(src: &str, config: CompilerConfig) -> Result<CompiledProgram, PipelineError> {
    let rc = frontend(src, config)?;
    backend(&rc, config)
}

/// Compiles and runs `main`.
///
/// # Errors
///
/// Returns compilation or execution failures.
pub fn compile_and_run(
    src: &str,
    config: CompilerConfig,
    max_steps: u64,
) -> Result<RunOutcome, PipelineError> {
    let program = compile(src, config)?;
    lssa_vm::run_program(&program, "main", max_steps).map_err(|e| PipelineError {
        stage: "execution",
        message: e.to_string(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: &str = r#"
inductive List := Nil | Cons(h, t)
def build(n) := if n == 0 then Nil else Cons(n, build(n - 1))
def sum(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => h + sum(t)
  end
def main() := sum(build(50))
"#;

    #[test]
    fn all_configs_agree() {
        let configs = [
            CompilerConfig::leanc(),
            CompilerConfig::mlir(),
            CompilerConfig::rgn_only(),
            CompilerConfig::none(),
        ];
        for c in configs {
            let out = compile_and_run(SRC, c, 10_000_000)
                .unwrap_or_else(|e| panic!("{}: {e}", c.label()));
            assert_eq!(out.rendered, "1275", "{}", c.label());
            assert_eq!(out.stats.heap.live, 0, "{}: leak", c.label());
        }
    }

    #[test]
    fn labels_are_informative() {
        assert_eq!(CompilerConfig::leanc().label(), "simplified/leanc");
        assert_eq!(
            CompilerConfig::mlir().label(),
            "simplified/mlir+rgn+generic"
        );
        assert_eq!(CompilerConfig::none().label(), "raw/mlir");
    }

    #[test]
    fn parse_errors_reported() {
        let e = compile("def !", CompilerConfig::mlir()).unwrap_err();
        assert_eq!(e.stage, "parse");
    }

    #[test]
    fn wellformedness_errors_reported() {
        let e = compile("def f() := g(1)\ndef g(a, b) := a", CompilerConfig::mlir());
        // Over/under application of known functions is handled (pap), so
        // this actually compiles; use a genuinely ill-formed program:
        let _ = e;
        let e2 = compile("def f() := @nosuch(1)", CompilerConfig::mlir()).unwrap_err();
        assert_eq!(e2.stage, "wellformedness");
    }
}
