//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements exactly the API surface lambda-ssa uses — [`Rng::random_range`],
//! [`SeedableRng::seed_from_u64`], and [`rngs::StdRng`] — over a SplitMix64
//! generator. Deterministic for a given seed, which is all the conformance
//! corpus generator needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Types that can be sampled uniformly from a half-open `lo..hi` range.
pub trait UniformSample: Copy {
    /// Draws a value in `range` using `next` as the entropy source.
    fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self;
}

macro_rules! impl_uniform_unsigned {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "empty range in random_range");
                let span = (range.end - range.start) as u64;
                range.start + (next() % span) as $t
            }
        }
    )*};
}

macro_rules! impl_uniform_signed {
    ($($t:ty),*) => {$(
        impl UniformSample for $t {
            fn sample(range: Range<Self>, next: &mut dyn FnMut() -> u64) -> Self {
                assert!(range.start < range.end, "empty range in random_range");
                let span = (range.end as i64).wrapping_sub(range.start as i64) as u64;
                range.start.wrapping_add((next() % span) as $t)
            }
        }
    )*};
}

impl_uniform_unsigned!(u8, u16, u32, u64, usize);
impl_uniform_signed!(i8, i16, i32, i64, isize);

/// The subset of `rand::Rng` lambda-ssa relies on.
pub trait Rng {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from the half-open range `lo..hi`.
    fn random_range<T: UniformSample>(&mut self, range: Range<T>) -> T {
        let mut next = || self.next_u64();
        T::sample(range, &mut next)
    }

    /// Samples a uniformly random `bool`.
    fn random_bool(&mut self, p: f64) -> bool {
        (self.next_u64() as f64 / u64::MAX as f64) < p
    }
}

/// The subset of `rand::SeedableRng` lambda-ssa relies on.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Deterministic SplitMix64 generator standing in for `rand::rngs::StdRng`.
    ///
    /// SplitMix64 passes BigCrush and is more than adequate for generating
    /// random conformance programs; cryptographic quality is not a goal.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(0..12u32);
            assert!(v < 12);
            let s = rng.random_range(-5..5i64);
            assert!((-5..5).contains(&s));
            let ix = rng.random_range(0..6usize);
            assert!(ix < 6);
        }
    }
}
