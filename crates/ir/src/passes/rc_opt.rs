//! Reference-count optimization (paper §III).
//!
//! `insert_rc` makes a λrc program RC-correct with a *local* protocol:
//! every consumer takes its arguments owned, so a value that is still
//! needed afterwards gets an `lp.inc` first, and every owned value the
//! program is done with gets an `lp.dec`. That protocol is sound but
//! pessimistic — it never asks whether the intervening uses only *borrow*
//! the value. This pass recovers the paper's owned/borrowed distinction
//! after lowering, as a peephole dataflow over the CFG form:
//!
//! 1. **Dec sinking** (`sunk-decs`): each `lp.dec %v` is moved to its
//!    earliest safe point — immediately after the last operation that can
//!    touch `%v` or a pointer borrowed from it (`lp.project` chains,
//!    `select`/`switch_val` merges), and never across an operation with
//!    observable reference-count behaviour (`Purity::Effect`, region
//!    carriers, terminators). Earlier decs shorten the owned window,
//!    stack decs next to each other (where decode-time `Dec2` fusion
//!    picks them up), and park a dec directly behind a matching inc.
//! 2. **Borrow folding** (`borrowed-args`): an `lp.inc %v` that exists
//!    only to feed a downstream `func.call` of an *extern builtin* taking
//!    `%v` as an argument is deleted, and the argument position is
//!    recorded in a `borrow_mask` attribute on the call. The VM performs
//!    the retain as the first step of the `CallBuiltin` instruction
//!    itself, so the count trajectory at every observable point — in
//!    particular inside the builtin, which reads its arguments before
//!    consuming them — is bit-identical, but the separate dispatch cell
//!    for the inc is gone. The window between the inc and the call may
//!    contain only pure ops, allocations and other incs: nothing in it
//!    can decrement any count, so no free can be observed early, and
//!    nothing can read the (transiently one-lower) count of `%v`.
//! 3. **Pair elision** (`elided-pairs`): an `lp.inc %v` whose matching
//!    `lp.dec %v` follows in the same block with no *decrement-capable*
//!    operation in between (no dec of anything, no call, no
//!    `lp.papextend`, no global access, no region carrier) is deleted
//!    together with its dec. Inside such a window the count is merely
//!    `+1` with nobody able to observe it or free through it: every use
//!    in the window is pure or an allocation that moves the reference,
//!    and both behaviours depend only on the count *trajectory outside*
//!    the window, which the cancelling pair leaves untouched.
//!
//! The two steps run to a joint fixpoint per block: sinking creates
//! adjacent `inc/dec` pairs for elision, and each elided pair removes a
//! barrier that may unblock further sinking. Re-running the pass on its
//! own output therefore reports `changed == false` — the property the
//! pipeline's idempotence proptest pins.
//!
//! Soundness of the conservative barrier set: a dec may only cross
//! operations that (a) cannot read the count of any object (all
//! `Purity::Effect` ops are barriers, so allocation-profile observers
//! like the exclusivity check in `array_set` see unchanged counts),
//! (b) cannot reach `%v`'s object through any operand (checked against
//! the transitive borrow set of `%v`), and (c) do not define `%v`. The
//! heap-counter effect is that `lp.inc`/`lp.dec` totals drop while
//! allocation and free counts — and the entire live-object trajectory at
//! every allocation point — stay bit-identical.

use crate::attr::{Attr, AttrKey};
use crate::body::{Body, OpData};
use crate::ids::{OpId, Symbol, ValueId};
use crate::module::Module;
use crate::opcode::{Opcode, Purity};
use crate::pass::{for_each_function, Pass};
use std::cell::Cell;
use std::collections::HashSet;

/// Counters for one [`run_on_body`] call (or one whole-module run).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RcOptStats {
    /// `lp.inc`/`lp.dec` pairs deleted (two ops each).
    pub elided_pairs: u64,
    /// `lp.dec` ops moved to an earlier program point.
    pub sunk_decs: u64,
    /// `lp.inc` ops folded into a builtin call's `borrow_mask`.
    pub folded_incs: u64,
}

impl RcOptStats {
    /// Whether the body changed at all.
    pub fn changed(&self) -> bool {
        self.elided_pairs > 0 || self.sunk_decs > 0 || self.folded_incs > 0
    }
}

/// The reference-count optimization pass. See the module docs.
#[derive(Debug, Default)]
pub struct RcOptPass {
    elided_pairs: Cell<u64>,
    sunk_decs: Cell<u64>,
    folded_incs: Cell<u64>,
}

impl Pass for RcOptPass {
    fn name(&self) -> &'static str {
        "rc-opt"
    }

    fn run_on(&self, module: &mut Module) -> bool {
        let mut total = RcOptStats::default();
        // Collected up front: `for_each_function` detaches the body it is
        // visiting, so asking the module mid-visit would misreport a
        // recursive caller as extern.
        let externs: HashSet<Symbol> = module
            .funcs
            .iter()
            .filter(|f| f.is_extern())
            .map(|f| f.name)
            .collect();
        let changed = for_each_function(module, |_, body| {
            let stats = run_on_body(&externs, body);
            total.elided_pairs += stats.elided_pairs;
            total.sunk_decs += stats.sunk_decs;
            total.folded_incs += stats.folded_incs;
            stats.changed()
        });
        self.elided_pairs.set(total.elided_pairs);
        self.sunk_decs.set(total.sunk_decs);
        self.folded_incs.set(total.folded_incs);
        changed
    }

    fn stat_counters(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("elided-pairs", self.elided_pairs.get()),
            ("sunk-decs", self.sunk_decs.get()),
            ("borrowed-args", self.folded_incs.get()),
        ]
    }
}

/// Runs the optimization on one body, to a fixpoint. `externs` names the
/// module's extern (builtin) functions — borrow folding applies only to
/// calls targeting them. Returns the counters.
pub fn run_on_body(externs: &HashSet<Symbol>, body: &mut Body) -> RcOptStats {
    let mut stats = RcOptStats::default();
    // Immediate borrow sources per value: `lp.project` results borrow from
    // the projected object; `select`/`switch_val` results may alias any of
    // their operands. Indexed by value id; rebuilt only when ops are erased
    // (erasing never adds aliases, so reuse across rounds is sound — but a
    // stale entry could only make the check *more* conservative anyway).
    let sources = borrow_sources(body);
    for b in 0..body.blocks.len() {
        if body.blocks[b].parent.is_none() {
            continue;
        }
        loop {
            let mut round = false;
            round |= fold_borrows(externs, body, b, &mut stats);
            round |= sink_decs(body, b, &sources, &mut stats);
            round |= elide_pairs(body, b, &mut stats);
            if !round {
                break;
            }
        }
    }
    stats
}

/// For each value, the values it may borrow from (immediate, not
/// transitive). Dense over the value arena.
fn borrow_sources(body: &Body) -> Vec<Vec<ValueId>> {
    let mut sources: Vec<Vec<ValueId>> = vec![Vec::new(); body.values.len()];
    for op in body.walk_ops() {
        let d = &body.ops[op.index()];
        let aliasing = matches!(
            d.opcode,
            Opcode::LpProject | Opcode::Select | Opcode::SwitchVal
        );
        if !aliasing {
            continue;
        }
        for &r in d.results.as_slice() {
            for &o in d.operands.as_slice() {
                sources[r.index()].push(o);
            }
        }
    }
    sources
}

/// Whether `u` is `v` or (transitively) borrows from `v`.
fn borrows_from(u: ValueId, v: ValueId, sources: &[Vec<ValueId>]) -> bool {
    if u == v {
        return true;
    }
    let mut work = vec![u];
    let mut seen = vec![u];
    while let Some(x) = work.pop() {
        for &s in &sources[x.index()] {
            if s == v {
                return true;
            }
            if !seen.contains(&s) {
                seen.push(s);
                work.push(s);
            }
        }
    }
    false
}

/// Folds `lp.inc %v` ops into the `borrow_mask` of a downstream extern
/// builtin call taking `%v`, when nothing between them can decrement a
/// count (pure ops, allocations and other incs only). See the module docs.
fn fold_borrows(
    externs: &HashSet<Symbol>,
    body: &mut Body,
    b: usize,
    stats: &mut RcOptStats,
) -> bool {
    let mut changed = false;
    'restart: loop {
        let ops = body.blocks[b].ops.clone();
        for (k, &call) in ops.iter().enumerate() {
            let c = &body.ops[call.index()];
            if c.opcode != Opcode::Call {
                continue;
            }
            let callee = c.attr(AttrKey::Callee).and_then(Attr::as_sym);
            if !callee.is_some_and(|s| externs.contains(&s)) {
                continue;
            }
            let mask = c
                .attr(AttrKey::BorrowMask)
                .and_then(Attr::as_int)
                .unwrap_or(0);
            // The mask is a u8 on the VM side; positions past 8 stay owned.
            let args: Vec<ValueId> = c.operands.as_slice().iter().copied().take(8).collect();
            for (p, &v) in args.iter().enumerate() {
                if mask & (1 << p) != 0 {
                    continue;
                }
                for i in (0..k).rev() {
                    let w = &body.ops[ops[i].index()];
                    if w.opcode == Opcode::LpInc {
                        if w.operands.as_slice()[0] == v {
                            body.erase_op(ops[i]);
                            set_borrow_mask(body, call, mask | (1 << p));
                            stats.folded_incs += 1;
                            changed = true;
                            continue 'restart;
                        }
                        // Incs commute: crossing one reorders two retains.
                        continue;
                    }
                    if fold_barrier(w) {
                        break;
                    }
                }
            }
        }
        return changed;
    }
}

/// Whether an op ends a borrow-folding window: anything that could
/// decrement a count, or a control boundary.
fn fold_barrier(w: &OpData) -> bool {
    w.opcode.purity() == Purity::Effect
        || w.opcode.is_terminator()
        || w.opcode.has_successors()
        || !w.regions.is_empty()
}

/// Sets (or replaces) the `borrow_mask` attribute on `op`.
fn set_borrow_mask(body: &mut Body, op: OpId, mask: i64) {
    let attrs = &mut body.ops[op.index()].attrs;
    if let Some(slot) = attrs
        .as_mut_slice()
        .iter_mut()
        .find(|(k, _)| *k == AttrKey::BorrowMask)
    {
        slot.1 = Attr::Int(mask);
    } else {
        attrs.push((AttrKey::BorrowMask, Attr::Int(mask)));
    }
}

/// Moves every `lp.dec` in the block to its earliest safe point.
fn sink_decs(body: &mut Body, b: usize, sources: &[Vec<ValueId>], stats: &mut RcOptStats) -> bool {
    let mut ops = body.blocks[b].ops.clone();
    let mut changed = false;
    for i in 1..ops.len() {
        let d = &body.ops[ops[i].index()];
        if d.opcode != Opcode::LpDec {
            continue;
        }
        let v = d.operands.as_slice()[0];
        let mut j = i;
        while j > 0 && may_hop_above(body, ops[j - 1], v, sources) {
            j -= 1;
        }
        if j < i {
            ops[j..=i].rotate_right(1);
            stats.sunk_decs += 1;
            changed = true;
        }
    }
    if changed {
        body.blocks[b].ops = ops;
    }
    changed
}

/// Whether `lp.dec %v` may move from directly after `prev` to directly
/// before it.
fn may_hop_above(body: &Body, prev: OpId, v: ValueId, sources: &[Vec<ValueId>]) -> bool {
    let d = &body.ops[prev.index()];
    // Anything with observable reference-count behaviour pins the dec:
    // other inc/dec ops (a crossed dec could free an object this dec's
    // free would then touch, and vice versa), calls, papextend, globals.
    if d.opcode.purity() == Purity::Effect {
        return false;
    }
    // Region carriers and CFG ops are control boundaries.
    if !d.regions.is_empty() || d.opcode.is_terminator() || d.opcode.has_successors() {
        return false;
    }
    // The dec must stay below the definition of `%v` ...
    if d.results.as_slice().contains(&v) {
        return false;
    }
    // ... and below every read through `%v` or a borrow of it.
    !d.operands
        .as_slice()
        .iter()
        .any(|&u| borrows_from(u, v, sources))
}

/// Deletes `lp.inc %v` / `lp.dec %v` pairs whose window contains no
/// decrement-capable operation.
fn elide_pairs(body: &mut Body, b: usize, stats: &mut RcOptStats) -> bool {
    let mut changed = false;
    'restart: loop {
        let ops = body.blocks[b].ops.clone();
        for (j, &dec) in ops.iter().enumerate() {
            let d = &body.ops[dec.index()];
            if d.opcode != Opcode::LpDec {
                continue;
            }
            let v = d.operands.as_slice()[0];
            for i in (0..j).rev() {
                let w = &body.ops[ops[i].index()];
                if w.opcode == Opcode::LpInc {
                    if w.operands.as_slice()[0] == v {
                        body.erase_op(ops[i]);
                        body.erase_op(dec);
                        stats.elided_pairs += 1;
                        changed = true;
                        continue 'restart;
                    }
                    // An inc of another value neither frees nor reads.
                    continue;
                }
                if window_barrier(w.opcode) || !w.regions.is_empty() {
                    break;
                }
            }
        }
        return changed;
    }
}

/// Whether an opcode ends an elision window: anything that could
/// decrement a count (and so free, or observe the inflated count).
fn window_barrier(opcode: Opcode) -> bool {
    opcode.purity() == Purity::Effect || opcode.is_terminator() || opcode.has_successors()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::{Signature, Type};
    use crate::verifier::verify_module;

    fn obj_fn(build: impl FnOnce(&mut Builder<'_>, &[ValueId])) -> Module {
        let mut m = Module::new();
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        build(&mut b, &params);
        m.add_function("f", Signature::obj(1), body);
        m
    }

    fn opcodes(m: &Module) -> Vec<Opcode> {
        let body = m.func_by_name("f").unwrap().body.as_ref().unwrap();
        body.walk_ops()
            .iter()
            .map(|o| body.ops[o.index()].opcode)
            .collect()
    }

    #[test]
    fn adjacent_pair_is_elided() {
        let mut m = obj_fn(|b, p| {
            b.lp_inc(p[0]);
            b.lp_dec(p[0]);
            b.lp_ret(p[0]);
        });
        let pass = RcOptPass::default();
        assert!(pass.run_on(&mut m));
        assert_eq!(opcodes(&m), vec![Opcode::LpReturn]);
        assert_eq!(pass.stat_counters()[0], ("elided-pairs", 1));
        verify_module(&m).unwrap();
    }

    #[test]
    fn pair_across_pure_uses_is_elided() {
        // The window may contain pure reads of the value itself and an
        // allocation that moves the reference.
        let mut m = obj_fn(|b, p| {
            b.lp_inc(p[0]);
            let f0 = b.lp_project(p[0], 0);
            let c = b.lp_construct(3, vec![f0, p[0]]);
            b.lp_dec(p[0]);
            b.lp_ret(c);
        });
        assert!(RcOptPass::default().run_on(&mut m));
        assert_eq!(
            opcodes(&m),
            vec![Opcode::LpProject, Opcode::LpConstruct, Opcode::LpReturn]
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn call_blocks_elision() {
        // A call can decrement counts, so the pair must survive.
        let mut m = Module::new();
        let g = m.intern("g");
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        let r = b.call(g, vec![params[0]], Type::Obj);
        b.lp_dec(params[0]);
        b.lp_ret(r);
        m.add_function("f", Signature::obj(1), body);
        assert!(!RcOptPass::default().run_on(&mut m));
        assert_eq!(
            opcodes(&m),
            vec![Opcode::LpInc, Opcode::Call, Opcode::LpDec, Opcode::LpReturn]
        );
    }

    #[test]
    fn dec_of_other_value_blocks_elision() {
        // `dec c` sits between the pair on the parameter; decs never cross
        // other decs or incs, so everything stays put.
        let mut m = obj_fn(|b, p| {
            let c = b.lp_construct(0, vec![]);
            b.lp_inc(p[0]);
            b.lp_dec(c);
            b.lp_dec(p[0]);
            b.lp_ret(p[0]);
        });
        assert!(!RcOptPass::default().run_on(&mut m));
        assert_eq!(
            opcodes(&m),
            vec![
                Opcode::LpConstruct,
                Opcode::LpInc,
                Opcode::LpDec,
                Opcode::LpDec,
                Opcode::LpReturn
            ]
        );
    }

    #[test]
    fn sinking_stacks_decs_for_dec2_fusion() {
        // The second dec hops the unrelated pure op and parks directly
        // behind the first — the adjacency decode-time `Dec2` fusion needs.
        let mut m = obj_fn(|b, p| {
            let c = b.lp_construct(0, vec![]);
            b.lp_dec(c);
            let n = b.lp_int(5);
            b.lp_dec(p[0]);
            b.lp_ret(n);
        });
        let pass = RcOptPass::default();
        assert!(pass.run_on(&mut m));
        assert_eq!(pass.stat_counters()[1], ("sunk-decs", 1));
        assert_eq!(
            opcodes(&m),
            vec![
                Opcode::LpConstruct,
                Opcode::LpDec,
                Opcode::LpDec,
                Opcode::LpInt,
                Opcode::LpReturn
            ]
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn dec_sinks_to_last_borrowing_use() {
        // dec %arr must not cross the projection chain reading through it.
        let mut m = obj_fn(|b, p| {
            let f0 = b.lp_project(p[0], 0);
            let f1 = b.lp_project(f0, 1);
            let c = b.lp_construct(0, vec![]);
            let d = b.lp_construct(1, vec![c]);
            b.lp_dec(p[0]);
            b.lp_ret(d);
            let _ = f1;
        });
        let pass = RcOptPass::default();
        assert!(pass.run_on(&mut m));
        assert_eq!(pass.stat_counters()[1], ("sunk-decs", 1));
        let ops = opcodes(&m);
        // The dec lands after the last projection, before the allocations.
        assert_eq!(
            ops,
            vec![
                Opcode::LpProject,
                Opcode::LpProject,
                Opcode::LpDec,
                Opcode::LpConstruct,
                Opcode::LpConstruct,
                Opcode::LpReturn
            ]
        );
        verify_module(&m).unwrap();
    }

    #[test]
    fn second_run_reports_no_change() {
        let mut m = obj_fn(|b, p| {
            b.lp_inc(p[0]);
            let f0 = b.lp_project(p[0], 0);
            let c = b.lp_construct(2, vec![f0]);
            b.lp_dec(p[0]);
            b.lp_dec(c);
            b.lp_ret(p[0]);
        });
        let pass = RcOptPass::default();
        assert!(pass.run_on(&mut m));
        assert!(!pass.run_on(&mut m), "rc-opt must be idempotent");
        assert_eq!(
            pass.stat_counters(),
            vec![("elided-pairs", 0), ("sunk-decs", 0), ("borrowed-args", 0)]
        );
        verify_module(&m).unwrap();
    }

    fn mask_of(m: &Module) -> i64 {
        let body = m.func_by_name("f").unwrap().body.as_ref().unwrap();
        let call = body
            .walk_ops()
            .into_iter()
            .find(|o| body.ops[o.index()].opcode == Opcode::Call)
            .expect("call survives");
        body.ops[call.index()]
            .attr(AttrKey::BorrowMask)
            .and_then(Attr::as_int)
            .unwrap_or(0)
    }

    #[test]
    fn inc_folds_into_builtin_call() {
        let mut m = Module::new();
        let add = m.declare_extern("lean_nat_add", Signature::obj(2));
        let (mut body, params) = Body::new(&[Type::Obj, Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        let r = b.call(add, vec![params[0], params[1]], Type::Obj);
        b.lp_ret(r);
        m.add_function("f", Signature::obj(2), body);
        let pass = RcOptPass::default();
        assert!(pass.run_on(&mut m));
        assert_eq!(opcodes(&m), vec![Opcode::Call, Opcode::LpReturn]);
        assert_eq!(mask_of(&m), 0b01);
        assert_eq!(pass.stat_counters()[2], ("borrowed-args", 1));
        verify_module(&m).unwrap();
    }

    #[test]
    fn repeated_arg_folds_both_incs() {
        let mut m = Module::new();
        let mul = m.declare_extern("lean_nat_mul", Signature::obj(2));
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        b.lp_inc(params[0]);
        let r = b.call(mul, vec![params[0], params[0]], Type::Obj);
        b.lp_dec(params[0]);
        b.lp_ret(r);
        m.add_function("f", Signature::obj(1), body);
        let pass = RcOptPass::default();
        assert!(pass.run_on(&mut m));
        assert_eq!(
            opcodes(&m),
            vec![Opcode::Call, Opcode::LpDec, Opcode::LpReturn]
        );
        assert_eq!(mask_of(&m), 0b11, "each inc claims a distinct position");
        verify_module(&m).unwrap();
    }

    #[test]
    fn dec_in_window_blocks_borrow_fold() {
        // A dec between the inc and the call could free through the
        // one-lower transient count, so the inc must stay.
        let mut m = Module::new();
        let add = m.declare_extern("lean_nat_add", Signature::obj(2));
        let (mut body, params) = Body::new(&[Type::Obj, Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        b.lp_dec(params[1]);
        let r = b.call(add, vec![params[0], params[0]], Type::Obj);
        b.lp_ret(r);
        m.add_function("f", Signature::obj(2), body);
        assert!(!RcOptPass::default().run_on(&mut m));
        assert_eq!(mask_of(&m), 0);
        assert_eq!(
            opcodes(&m),
            vec![Opcode::LpInc, Opcode::LpDec, Opcode::Call, Opcode::LpReturn]
        );
    }

    #[test]
    fn inc_does_not_fold_into_defined_call() {
        // Calls to functions with bodies keep the owned protocol: the
        // mask is a CallBuiltin-cell mechanism.
        let mut m = Module::new();
        let (gbody, _) = Body::new(&[Type::Obj]);
        let g = m.add_function("g", Signature::obj(1), gbody);
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        let r = b.call(g, vec![params[0]], Type::Obj);
        b.lp_ret(r);
        m.add_function("f", Signature::obj(1), body);
        assert!(!RcOptPass::default().run_on(&mut m));
        assert_eq!(mask_of(&m), 0);
    }

    #[test]
    fn recursive_call_is_not_extern() {
        // While a pass visits a function its own body is detached from
        // the module, so a naive extern check misreports a recursive
        // callee as a builtin. The extern set is collected up front.
        let mut m = Module::new();
        let f = m.intern("f");
        let (mut body, params) = Body::new(&[Type::Obj]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        b.lp_inc(params[0]);
        let r = b.call(f, vec![params[0]], Type::Obj);
        b.lp_ret(r);
        m.add_function("f", Signature::obj(1), body);
        assert!(!RcOptPass::default().run_on(&mut m));
        assert_eq!(mask_of(&m), 0);
    }
}
