//! A conservative inliner.
//!
//! Inlines `func.call` sites whose callee is a small, single-block,
//! region-free function ending in `func.return` — exactly the shape produced
//! after the `rgn`→CFG lowering for leaf functions. This mirrors MLIR's
//! builtin inliner in the role Figure 11 assigns it; the restriction keeps
//! the transformation obviously sound (no block splitting required).

use crate::body::Body;
use crate::ids::{OpId, ValueId};
use crate::module::Module;
use crate::opcode::Opcode;
use crate::pass::Pass;
use crate::types::Type;
use std::collections::{HashMap, HashSet};

/// The inlining pass.
#[derive(Debug, Clone, Copy)]
pub struct InlinePass {
    /// Maximum callee size (live op count, excluding the return).
    pub max_callee_ops: usize,
}

impl Default for InlinePass {
    fn default() -> InlinePass {
        InlinePass { max_callee_ops: 24 }
    }
}

impl Pass for InlinePass {
    fn name(&self) -> &'static str {
        "inline"
    }

    fn run_on(&self, module: &mut Module) -> bool {
        let mut changed = false;
        // Snapshot which callees are inlinable, then rewrite call sites.
        let inlinable: Vec<Option<InlinableCallee>> = module
            .funcs
            .iter()
            .map(|f| InlinableCallee::extract(f.body.as_ref(), self.max_callee_ops))
            .collect();
        for i in 0..module.funcs.len() {
            let Some(mut body) = module.funcs[i].body.take() else {
                continue;
            };
            let caller = module.funcs[i].name;
            loop {
                let mut did = false;
                for op in body.walk_ops() {
                    if body.ops[op.index()].dead || body.ops[op.index()].opcode != Opcode::Call {
                        continue;
                    }
                    let Some(callee) = body.ops[op.index()]
                        .attr(crate::attr::AttrKey::Callee)
                        .and_then(|a| a.as_sym())
                    else {
                        continue;
                    };
                    if callee == caller {
                        continue; // no self-inlining
                    }
                    let Some(pos) = module.func_position(callee) else {
                        continue;
                    };
                    let Some(snippet) = &inlinable[pos] else {
                        continue;
                    };
                    if !inline_at(&mut body, op, snippet) {
                        continue; // malformed call site (arity/result shape)
                    }
                    did = true;
                    changed = true;
                    break; // op list changed; re-walk
                }
                if !did {
                    break;
                }
            }
            module.funcs[i].body = Some(body);
        }
        changed
    }
}

/// A callee captured in an inlinable form.
///
/// The snapshot is self-contained: op data plus the result *types* of every
/// op, captured at extraction time, so splicing never needs the callee's
/// `Body` (which used to be cloned wholesale just for `value_type` lookups).
#[derive(Debug, Clone)]
struct InlinableCallee {
    params: Vec<ValueId>,
    /// Ops in order, excluding the terminator.
    ops: Vec<crate::body::OpData>,
    /// Result types of each op, parallel to `ops`.
    result_tys: Vec<Vec<Type>>,
    /// The callee value returned by the terminator.
    returned: ValueId,
}

impl InlinableCallee {
    fn extract(body: Option<&Body>, max_ops: usize) -> Option<InlinableCallee> {
        let body = body?;
        let root = &body.regions[crate::body::ROOT_REGION.index()];
        if root.blocks.len() != 1 {
            return None;
        }
        let entry = root.blocks[0];
        let ops = &body.blocks[entry.index()].ops;
        if ops.is_empty() || ops.len() > max_ops + 1 {
            return None;
        }
        let term = *ops.last().unwrap();
        if body.ops[term.index()].opcode != Opcode::Return {
            return None;
        }
        // A void return has no value to substitute for the call's result —
        // bail rather than index into an empty operand list.
        let returned = *body.ops[term.index()].operands.first()?;
        // Every value the snippet mentions must be a parameter or a result
        // of an earlier snippet op; anything else (a use of a detached or
        // malformed value) would be unmappable at the call site.
        let mut known: HashSet<ValueId> = body.params().iter().copied().collect();
        let mut cloned = Vec::new();
        let mut result_tys = Vec::new();
        for &op in &ops[..ops.len() - 1] {
            let data = &body.ops[op.index()];
            if !data.regions.is_empty() || !data.successors.is_empty() {
                return None;
            }
            if !data.operands.iter().all(|v| known.contains(v)) {
                return None;
            }
            known.extend(data.results.iter().copied());
            result_tys.push(data.results.iter().map(|&r| body.value_type(r)).collect());
            cloned.push(data.clone());
        }
        if !known.contains(&returned) {
            return None;
        }
        Some(InlinableCallee {
            params: body.params().to_vec(),
            ops: cloned,
            result_tys,
            returned,
        })
    }
}

/// Splices `snippet` in place of `call`. Returns `false` — leaving the body
/// untouched — when the call site does not match the snapshot's shape: an
/// argument count different from the callee's parameter count (zipping
/// would silently mis-map values) or a call without exactly one result
/// (there would be nothing to substitute the returned value for).
fn inline_at(body: &mut Body, call: OpId, snippet: &InlinableCallee) -> bool {
    let args = body.ops[call.index()].operands.clone();
    if args.len() != snippet.params.len() {
        return false;
    }
    let Some(call_result) = body.ops[call.index()].result() else {
        return false;
    };
    let mut map: HashMap<ValueId, ValueId> = HashMap::new();
    for (&p, &a) in snippet.params.iter().zip(&args) {
        map.insert(p, a);
    }
    for (data, result_tys) in snippet.ops.iter().zip(&snippet.result_tys) {
        let operands: Vec<ValueId> = data
            .operands
            .iter()
            .map(|v| *map.get(v).expect("extract() checked every operand"))
            .collect();
        let new_op = body.create_op(data.opcode, operands, result_tys, data.attrs.clone());
        body.insert_op_before(call, new_op);
        for (i, &old_r) in data.results.iter().enumerate() {
            map.insert(old_r, body.ops[new_op.index()].results[i]);
        }
    }
    let returned = *map
        .get(&snippet.returned)
        .expect("extract() checked the returned value");
    body.replace_all_uses(call_result, returned);
    body.erase_op(call);
    true
}

/// Convenience entry point used by callees of this crate.
pub fn inline_module(module: &mut Module, max_callee_ops: usize) -> bool {
    InlinePass { max_callee_ops }.run_on(module)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::ids::Symbol;
    use crate::types::{Signature, Type};

    fn make_square(m: &mut Module) -> Symbol {
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let s = b.muli(params[0], params[0]);
        b.ret(s);
        m.add_function("square", Signature::new(vec![Type::I64], Type::I64), body)
    }

    #[test]
    fn small_leaf_is_inlined() {
        let mut m = Module::new();
        let square = make_square(&mut m);
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(square, vec![params[0]], Type::I64);
        let one = b.const_i(1, Type::I64);
        let s = b.addi(r, one);
        b.ret(s);
        m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);

        assert!(InlinePass::default().run(&mut m).changed);
        crate::verifier::verify_module(&m).unwrap();
        let body = m.func_by_name("f").unwrap().body.as_ref().unwrap();
        let has_call = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::Call);
        assert!(!has_call, "call must be inlined");
        let has_mul = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::MulI);
        assert!(has_mul, "callee body must be spliced in");
    }

    #[test]
    fn recursive_call_not_inlined() {
        let mut m = Module::new();
        // f calls itself — must not inline.
        let name = m.intern("selfrec");
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(name, vec![params[0]], Type::I64);
        b.ret(r);
        m.add_function("selfrec", Signature::new(vec![Type::I64], Type::I64), body);
        assert!(!InlinePass::default().run(&mut m).changed);
    }

    #[test]
    fn large_callee_not_inlined() {
        let mut m = Module::new();
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let mut acc = params[0];
        for _ in 0..40 {
            acc = b.addi(acc, params[0]);
        }
        b.ret(acc);
        let big = m.add_function("big", Signature::new(vec![Type::I64], Type::I64), body);

        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(big, vec![params[0]], Type::I64);
        b.ret(r);
        m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);

        assert!(!InlinePass::default().run(&mut m).changed);
    }

    #[test]
    fn extern_callee_not_inlined() {
        let mut m = Module::new();
        let ext = m.declare_extern("rt_fn", Signature::new(vec![Type::I64], Type::I64));
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(ext, vec![params[0]], Type::I64);
        b.ret(r);
        m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);
        assert!(!InlinePass::default().run(&mut m).changed);
    }

    #[test]
    fn zero_result_call_bails_instead_of_panicking() {
        use crate::attr::{Attr, AttrKey};
        let mut m = Module::new();
        let square = make_square(&mut m);
        // A call op with no results — nothing the returned value could
        // replace. The pass must skip it, not panic in result().unwrap().
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let call = body.create_op(
            Opcode::Call,
            vec![params[0]],
            &[],
            vec![(AttrKey::Callee, Attr::Sym(square))],
        );
        body.push_op(entry, call);
        let mut b = Builder::at_end(&mut body, entry);
        b.ret(params[0]);
        m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);

        assert!(!InlinePass::default().run(&mut m).changed);
        let body = m.func_by_name("f").unwrap().body.as_ref().unwrap();
        let has_call = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::Call);
        assert!(has_call, "the malformed call site must be left alone");
    }

    #[test]
    fn void_return_callee_bails_instead_of_panicking() {
        let mut m = Module::new();
        // A callee whose terminator returns no value — there is nothing to
        // substitute for the call result, so extract() must reject it.
        let (mut body, _params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let ret = body.create_op(Opcode::Return, vec![], &[], vec![]);
        body.push_op(entry, ret);
        let void = m.add_function("void", Signature::new(vec![Type::I64], Type::I64), body);

        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(void, vec![params[0]], Type::I64);
        b.ret(r);
        m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);

        assert!(!InlinePass::default().run(&mut m).changed);
    }

    #[test]
    fn arity_mismatch_call_bails_instead_of_mismapping() {
        use crate::attr::{Attr, AttrKey};
        let mut m = Module::new();
        let square = make_square(&mut m);
        // square takes one parameter; call it with two arguments. Zipping
        // params against args used to silently drop the extra argument.
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let call = body.create_op(
            Opcode::Call,
            vec![params[0], params[0]],
            &[Type::I64],
            vec![(AttrKey::Callee, Attr::Sym(square))],
        );
        body.push_op(entry, call);
        let result = body.ops[call.index()].result().unwrap();
        let mut b = Builder::at_end(&mut body, entry);
        b.ret(result);
        m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);

        assert!(!InlinePass::default().run(&mut m).changed);
        let body = m.func_by_name("f").unwrap().body.as_ref().unwrap();
        let has_call = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::Call);
        assert!(has_call, "the mis-arity call site must be left alone");
    }

    #[test]
    fn transitive_chain_inlines_fully() {
        let mut m = Module::new();
        let square = make_square(&mut m);
        // g(x) = square(x) + 1, f(x) = g(x) — f should end up call-free
        // (inliner fixpoints per function but callee snapshots are pre-pass,
        // so run the pass twice).
        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(square, vec![params[0]], Type::I64);
        let one = b.const_i(1, Type::I64);
        let s = b.addi(r, one);
        b.ret(s);
        let g = m.add_function("g", Signature::new(vec![Type::I64], Type::I64), body);

        let (mut body, params) = Body::new(&[Type::I64]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.call(g, vec![params[0]], Type::I64);
        b.ret(r);
        m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);

        InlinePass::default().run(&mut m);
        InlinePass::default().run(&mut m);
        crate::verifier::verify_module(&m).unwrap();
        let body = m.func_by_name("f").unwrap().body.as_ref().unwrap();
        let has_call = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::Call);
        assert!(!has_call);
    }
}
