//! Pass management.
//!
//! Mirrors MLIR's pass manager at the granularity we need: module passes run
//! in sequence, with optional verification between passes. Function-scoped
//! passes use [`for_each_function`], which temporarily detaches a function's
//! body so the pass can read module-level context (callee signatures,
//! globals) while mutating the body.

use crate::body::Body;
use crate::module::Module;
use crate::verifier::verify_module;

/// A module-level transformation.
pub trait Pass {
    /// Pass name (diagnostics, pipeline dumps).
    fn name(&self) -> &'static str;
    /// Runs the pass; returns whether anything changed.
    fn run(&self, module: &mut Module) -> bool;
}

/// Runs `f` on every function body, with the module visible (minus the body
/// being transformed). Returns whether any function changed.
pub fn for_each_function(
    module: &mut Module,
    mut f: impl FnMut(&Module, &mut Body) -> bool,
) -> bool {
    let mut changed = false;
    for i in 0..module.funcs.len() {
        let Some(mut body) = module.funcs[i].body.take() else {
            continue;
        };
        changed |= f(module, &mut body);
        module.funcs[i].body = Some(body);
    }
    changed
}

/// A sequence of passes with optional inter-pass verification.
#[derive(Default)]
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    verify_each: bool,
}

impl std::fmt::Debug for PassManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PassManager")
            .field(
                "passes",
                &self.passes.iter().map(|p| p.name()).collect::<Vec<_>>(),
            )
            .field("verify_each", &self.verify_each)
            .finish()
    }
}

impl PassManager {
    /// Creates an empty pipeline.
    pub fn new() -> PassManager {
        PassManager::default()
    }

    /// Enables verification after every pass.
    pub fn verify_each(mut self, yes: bool) -> PassManager {
        self.verify_each = yes;
        self
    }

    /// Appends a pass.
    #[allow(clippy::should_implement_trait)] // builder-style `add`, not ops::Add
    pub fn add(mut self, pass: impl Pass + 'static) -> PassManager {
        self.passes.push(Box::new(pass));
        self
    }

    /// Pass names in order.
    pub fn pipeline(&self) -> Vec<&'static str> {
        self.passes.iter().map(|p| p.name()).collect()
    }

    /// Runs the pipeline.
    ///
    /// # Panics
    ///
    /// Panics if `verify_each` is enabled and a pass breaks the IR — that is
    /// a compiler bug, and the panic message names the offending pass.
    pub fn run(&self, module: &mut Module) -> bool {
        let mut changed = false;
        for pass in &self.passes {
            changed |= pass.run(module);
            if self.verify_each {
                if let Err(errs) = verify_module(module) {
                    let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
                    panic!(
                        "verification failed after pass `{}`:\n{}",
                        pass.name(),
                        msgs.join("\n")
                    );
                }
            }
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::{Signature, Type};

    struct CountingPass(std::cell::Cell<usize>);
    impl Pass for CountingPass {
        fn name(&self) -> &'static str {
            "counting"
        }
        fn run(&self, _m: &mut Module) -> bool {
            self.0.set(self.0.get() + 1);
            false
        }
    }

    fn tiny_module() -> Module {
        let mut m = Module::new();
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let mut b = Builder::at_end(&mut body, entry);
        let c = b.const_i(0, Type::I64);
        b.ret(c);
        m.add_function("f", Signature::new(vec![], Type::I64), body);
        m
    }

    #[test]
    fn passes_run_in_order() {
        let mut m = tiny_module();
        let pm = PassManager::new()
            .verify_each(true)
            .add(CountingPass(std::cell::Cell::new(0)));
        assert_eq!(pm.pipeline(), vec!["counting"]);
        assert!(!pm.run(&mut m));
    }

    #[test]
    fn for_each_function_sees_module() {
        let mut m = tiny_module();
        m.declare_extern("rt", Signature::obj(1));
        let mut names = Vec::new();
        for_each_function(&mut m, |module, _body| {
            names.push(module.funcs.len());
            false
        });
        // One function with a body; externs skipped. The module still lists
        // both functions while the body is detached.
        assert_eq!(names, vec![2]);
    }
}
