//! Byte spans and the line index used to render them as `line:col`.

use std::fmt;

/// A half-open byte range `[start, end)` into one source file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Hash)]
pub struct Span {
    /// Byte offset of the first byte.
    pub start: u32,
    /// Byte offset one past the last byte.
    pub end: u32,
}

impl Span {
    /// A span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Span {
        Span { start, end }
    }

    /// A zero-width span at `at`.
    pub fn point(at: u32) -> Span {
        Span { start: at, end: at }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn to(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Span length in bytes.
    pub fn len(self) -> u32 {
        self.end.saturating_sub(self.start)
    }

    /// Whether the span is zero-width.
    pub fn is_empty(self) -> bool {
        self.len() == 0
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// Maps byte offsets to 1-based `(line, column)` pairs.
///
/// Built once per source file; lookups are a binary search over the line
/// starts. Columns are byte columns (the corpus is ASCII; multi-byte
/// characters count their bytes).
#[derive(Debug, Clone)]
pub struct LineIndex {
    line_starts: Vec<u32>,
}

impl LineIndex {
    /// Indexes `src`.
    pub fn new(src: &str) -> LineIndex {
        let mut line_starts = vec![0u32];
        for (i, b) in src.bytes().enumerate() {
            if b == b'\n' {
                line_starts.push(i as u32 + 1);
            }
        }
        LineIndex { line_starts }
    }

    /// 1-based line and column of a byte offset.
    pub fn line_col(&self, offset: u32) -> (u32, u32) {
        let line = match self.line_starts.binary_search(&offset) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        let col = offset - self.line_starts[line];
        (line as u32 + 1, col + 1)
    }

    /// The span of the whole 1-based `line` (without its newline), if it
    /// exists.
    pub fn line_span(&self, line: u32, src_len: u32) -> Option<Span> {
        let idx = line.checked_sub(1)? as usize;
        let start = *self.line_starts.get(idx)?;
        let end = self
            .line_starts
            .get(idx + 1)
            .map(|&next| next.saturating_sub(1))
            .unwrap_or(src_len);
        Some(Span::new(start, end.max(start)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_merge_and_measure() {
        let a = Span::new(2, 5);
        let b = Span::new(4, 9);
        assert_eq!(a.to(b), Span::new(2, 9));
        assert_eq!(a.len(), 3);
        assert!(!a.is_empty());
        assert!(Span::point(7).is_empty());
    }

    #[test]
    fn line_index_maps_offsets() {
        let src = "ab\ncde\n\nf";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_col(0), (1, 1));
        assert_eq!(idx.line_col(1), (1, 2));
        assert_eq!(idx.line_col(3), (2, 1));
        assert_eq!(idx.line_col(5), (2, 3));
        assert_eq!(idx.line_col(7), (3, 1));
        assert_eq!(idx.line_col(8), (4, 1));
    }

    #[test]
    fn line_span_covers_lines() {
        let src = "ab\ncde\n";
        let idx = LineIndex::new(src);
        assert_eq!(idx.line_span(1, src.len() as u32), Some(Span::new(0, 2)));
        assert_eq!(idx.line_span(2, src.len() as u32), Some(Span::new(3, 6)));
        assert_eq!(idx.line_span(0, src.len() as u32), None);
    }
}
