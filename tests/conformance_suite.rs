//! §V-A: the full conformance run — the analogue of "100% tests passed,
//! 0 tests failed out of 648" on the LEAN test suite.
//!
//! Every corpus program is executed by the reference interpreter and by all
//! four compiled pipelines; all five must agree and release every object.
//!
//! Cases are independent (each differential run owns its interpreter
//! environment and VM heap), so the corpus is sharded across threads with
//! `std::thread::scope`, one contiguous chunk per core — the same pattern
//! as the workload smoke oracle. Workers report failures as strings; a
//! panic inside a worker propagates through the join.

use lambda_ssa::driver::conformance::full_corpus;
use lambda_ssa::driver::diff::run_differential;

const MAX_STEPS: u64 = 500_000_000;

#[test]
fn full_corpus_all_pipelines_agree() {
    let corpus = full_corpus(648, 0x5e5a_2022);
    assert!(corpus.len() >= 648, "corpus must match the paper's scale");
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let chunk = corpus.len().div_ceil(threads);
    let failures: Vec<String> = std::thread::scope(|s| {
        let handles: Vec<_> = corpus
            .chunks(chunk)
            .enumerate()
            .map(|(i, cases)| {
                std::thread::Builder::new()
                    .name(format!("conformance-{i}"))
                    .spawn_scoped(s, move || {
                        cases
                            .iter()
                            .filter_map(|case| {
                                let r = run_differential(&case.name, &case.src, MAX_STEPS);
                                (!r.passed()).then(|| {
                                    format!(
                                        "{}: {}\n--- source ---\n{}",
                                        case.name,
                                        r.failure.unwrap(),
                                        case.src
                                    )
                                })
                            })
                            .collect::<Vec<String>>()
                    })
                    .expect("spawn conformance shard")
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("conformance shard panicked"))
            .collect()
    });
    assert!(
        failures.is_empty(),
        "{} of {} conformance cases failed:\n{}",
        failures.len(),
        corpus.len(),
        failures.join("\n\n")
    );
}
