//! Criterion bench regenerating Figure 9's data series: each benchmark
//! compiled by the leanc-style baseline and by the lp+rgn pipeline.
//!
//! `cargo bench -p lssa-bench --bench fig9_speedup`

use criterion::{criterion_group, criterion_main, Criterion};
use lssa_bench::{build, MAX_STEPS};
use lssa_driver::pipelines::CompilerConfig;
use lssa_driver::workloads::{all, Scale};
use std::time::Duration;

fn fig9(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig9");
    group
        .sample_size(10)
        .measurement_time(Duration::from_secs(3))
        .warm_up_time(Duration::from_millis(500));
    for w in all(Scale::Bench) {
        let base = build(&w, CompilerConfig::leanc());
        let mlir = build(&w, CompilerConfig::mlir());
        group.bench_function(format!("{}/leanc", w.name), |b| {
            b.iter(|| lssa_vm::run_program(&base, "main", MAX_STEPS).unwrap())
        });
        group.bench_function(format!("{}/mlir", w.name), |b| {
            b.iter(|| lssa_vm::run_program(&mlir, "main", MAX_STEPS).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, fig9);
criterion_main!(benches);
