//! The uniform boxed value representation.
//!
//! LEAN's runtime represents every value as a `lean_object*`: either a tagged
//! pointer holding a small scalar in the pointer bits, or a pointer to a
//! heap-allocated, reference-counted object. [`ObjRef`] mirrors that scheme:
//! the low bit distinguishes *scalars* (bit set; payload is a 63-bit signed
//! integer) from *heap references* (bit clear; payload is a heap slot index).

use crate::bignum::Int;
use std::fmt;

/// Identifies a compiled function in the program's function table.
///
/// Closures store a `FuncId` rather than a code pointer; the execution engine
/// resolves it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FuncId(pub u32);

impl fmt::Display for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@fn{}", self.0)
    }
}

/// A uniform runtime value: tagged scalar or heap reference.
///
/// # Examples
///
/// ```
/// use lssa_rt::object::ObjRef;
/// let s = ObjRef::scalar(-7);
/// assert!(s.is_scalar());
/// assert_eq!(s.as_scalar(), Some(-7));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct ObjRef(u64);

/// Largest scalar magnitude representable without boxing (62-bit payload,
/// leaving headroom so arithmetic on two scalars cannot silently wrap).
pub const MAX_SMALL_NAT: u64 = (1 << 62) - 1;

/// Smallest/largest boxed-free signed scalar.
pub const MIN_SMALL_INT: i64 = -(1 << 62);
/// See [`MIN_SMALL_INT`].
pub const MAX_SMALL_INT: i64 = (1 << 62) - 1;

impl ObjRef {
    /// Creates a scalar (unboxed) value.
    ///
    /// # Panics
    ///
    /// Panics if `v` does not fit in 63 bits.
    pub fn scalar(v: i64) -> ObjRef {
        debug_assert!(
            (-(1i64 << 62)..(1i64 << 62)).contains(&v),
            "scalar out of range: {v}"
        );
        ObjRef(((v as u64) << 1) | 1)
    }

    /// Creates a heap reference to `slot`.
    pub fn heap(slot: u32) -> ObjRef {
        ObjRef((slot as u64) << 1)
    }

    /// Whether this is a tagged scalar.
    pub fn is_scalar(&self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this is a heap reference.
    pub fn is_heap(&self) -> bool {
        !self.is_scalar()
    }

    /// The scalar payload, if this is a scalar.
    pub fn as_scalar(&self) -> Option<i64> {
        if self.is_scalar() {
            Some((self.0 as i64) >> 1)
        } else {
            None
        }
    }

    /// The heap slot, if this is a heap reference.
    pub fn as_heap(&self) -> Option<u32> {
        if self.is_heap() {
            Some((self.0 >> 1) as u32)
        } else {
            None
        }
    }

    /// Raw bit pattern (for the VM's uniform registers).
    pub fn to_bits(self) -> u64 {
        self.0
    }

    /// Rebuilds from a raw bit pattern produced by [`ObjRef::to_bits`].
    pub fn from_bits(bits: u64) -> ObjRef {
        ObjRef(bits)
    }
}

impl fmt::Debug for ObjRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(v) = self.as_scalar() {
            write!(f, "#{v}")
        } else {
            write!(f, "&{}", self.0 >> 1)
        }
    }
}

/// Payload of a heap object.
#[derive(Debug, Clone, PartialEq)]
pub enum ObjData {
    /// A data-constructor cell: variant tag plus field values.
    Ctor {
        /// Which variant of the (erased) inductive type this is.
        tag: u32,
        /// The constructor's fields.
        fields: Box<[ObjRef]>,
    },
    /// A boxed arbitrary-precision integer (used when the value exceeds the
    /// scalar range).
    BigInt(Int),
    /// A partial application: a function waiting for more arguments.
    Closure {
        /// The function to invoke once saturated.
        func: FuncId,
        /// Total number of parameters the function takes.
        arity: u16,
        /// Arguments captured so far (`args.len() < arity`).
        args: Vec<ObjRef>,
    },
    /// A mutable array (LEAN `Array`); updated in place when the reference
    /// count is 1, copied otherwise.
    Array(Vec<ObjRef>),
    /// A string.
    Str(String),
    /// A slot on the free list (not a live object). Holds the next free slot.
    Free(u32),
}

/// A heap slot: reference count plus payload.
#[derive(Debug, Clone)]
pub struct Object {
    /// Current reference count. A live object always has `rc >= 1`.
    pub rc: u32,
    /// The payload.
    pub data: ObjData,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trip() {
        for v in [0i64, 1, -1, 42, -42, MAX_SMALL_INT, MIN_SMALL_INT] {
            let r = ObjRef::scalar(v);
            assert!(r.is_scalar());
            assert_eq!(r.as_scalar(), Some(v));
            assert_eq!(r.as_heap(), None);
            assert_eq!(ObjRef::from_bits(r.to_bits()), r);
        }
    }

    #[test]
    fn heap_round_trip() {
        for s in [0u32, 1, 12345, u32::MAX] {
            let r = ObjRef::heap(s);
            assert!(r.is_heap());
            assert_eq!(r.as_heap(), Some(s));
            assert_eq!(r.as_scalar(), None);
        }
    }

    #[test]
    fn scalar_and_heap_never_collide() {
        assert_ne!(ObjRef::scalar(0).to_bits(), ObjRef::heap(0).to_bits());
        assert_ne!(ObjRef::scalar(1).to_bits(), ObjRef::heap(1).to_bits());
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", ObjRef::scalar(-3)), "#-3");
        assert_eq!(format!("{:?}", ObjRef::heap(7)), "&7");
        assert_eq!(format!("{}", FuncId(3)), "@fn3");
    }
}
