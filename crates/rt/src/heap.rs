//! The reference-counted heap.
//!
//! Stand-in for `libleanrt`'s allocator: a slot arena with an intrusive free
//! list, explicit `inc`/`dec` reference-count operations (the targets of
//! `lp.inc`/`lp.dec`), and allocation statistics used by the evaluation
//! harness to report memory behaviour.

use crate::bignum::{Int, Nat};
use crate::object::{ObjData, ObjRef, Object, MAX_SMALL_INT, MAX_SMALL_NAT, MIN_SMALL_INT};

/// Allocation and reference-count statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct HeapStats {
    /// Number of objects allocated over the heap's lifetime.
    pub allocs: u64,
    /// Constructor cells allocated.
    pub ctor_allocs: u64,
    /// Closures allocated.
    pub closure_allocs: u64,
    /// Arrays allocated.
    pub array_allocs: u64,
    /// Strings allocated.
    pub str_allocs: u64,
    /// Boxed big integers allocated.
    pub bigint_allocs: u64,
    /// Number of objects freed.
    pub frees: u64,
    /// Number of `inc` operations executed.
    pub incs: u64,
    /// Number of `dec` operations executed.
    pub decs: u64,
    /// Current number of live objects.
    pub live: u64,
    /// High-water mark of live objects.
    pub peak_live: u64,
    /// Approximate bytes held by live objects (see [`obj_bytes`] for the
    /// size model — a header charge plus payload words).
    pub live_bytes: u64,
    /// High-water mark of `live_bytes`.
    pub peak_bytes: u64,
}

impl HeapStats {
    /// Folds the statistics of an independent heap into this record:
    /// counts sum, the high-water mark takes the maximum.
    pub fn absorb(&mut self, other: &HeapStats) {
        self.allocs += other.allocs;
        self.ctor_allocs += other.ctor_allocs;
        self.closure_allocs += other.closure_allocs;
        self.array_allocs += other.array_allocs;
        self.str_allocs += other.str_allocs;
        self.bigint_allocs += other.bigint_allocs;
        self.frees += other.frees;
        self.incs += other.incs;
        self.decs += other.decs;
        self.live += other.live;
        self.peak_live = self.peak_live.max(other.peak_live);
        self.live_bytes += other.live_bytes;
        self.peak_bytes = self.peak_bytes.max(other.peak_bytes);
    }
}

/// Approximate size in bytes of one heap object under a fixed cost model:
/// a 16-byte header (rc + discriminant) plus 8 bytes per payload word
/// (ctor fields, closure captures, array elements), the byte length for
/// strings, and a flat 32 bytes for boxed big integers. The model is
/// deliberately platform-independent so byte budgets trip at the same
/// allocation on every host.
pub fn obj_bytes(data: &ObjData) -> u64 {
    const HEADER: u64 = 16;
    HEADER
        + match data {
            ObjData::Ctor { fields, .. } => 8 * fields.len() as u64,
            ObjData::Closure { args, .. } => 8 + 8 * args.len() as u64,
            ObjData::Array(elems) => 8 * elems.len() as u64,
            ObjData::Str(s) => s.len() as u64,
            ObjData::BigInt(_) => 32,
            ObjData::Free(_) => 0,
        }
}

/// A reference-counted slot heap.
///
/// # Examples
///
/// ```
/// use lssa_rt::heap::Heap;
/// let mut heap = Heap::new();
/// let nil = heap.alloc_ctor(0, vec![]);
/// let one = lssa_rt::object::ObjRef::scalar(1);
/// let cons = heap.alloc_ctor(1, vec![one, nil]);
/// assert_eq!(heap.ctor_tag(cons), 1);
/// heap.dec(cons); // frees cons and nil
/// assert_eq!(heap.stats().live, 0);
/// ```
#[derive(Debug, Default)]
pub struct Heap {
    slots: Vec<Object>,
    free_head: Option<u32>,
    stats: HeapStats,
    /// Reused worklist for transitive frees ([`Heap::dec`]): a dec that
    /// frees nothing — the overwhelmingly common case — and even most
    /// frees cost no allocation.
    dec_scratch: Vec<ObjRef>,
    /// Live-byte cap (`None` = unlimited). Exceeding it sets `tripped`;
    /// allocation itself never fails, so the VM observes the trip at its
    /// next budget checkpoint and aborts with a structured error.
    byte_limit: Option<u64>,
    /// Fault injection: force a budget trip at the Nth allocation.
    trip_alloc: Option<u64>,
    /// Sticky budget-exceeded flag, polled via [`Heap::over_budget`].
    tripped: bool,
}

impl Heap {
    /// Creates an empty heap.
    pub fn new() -> Heap {
        Heap::default()
    }

    /// Returns accumulated statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    /// Resets the statistics counters (the heap contents are untouched).
    pub fn reset_stats(&mut self) {
        let live = self.stats.live;
        let live_bytes = self.stats.live_bytes;
        self.stats = HeapStats {
            live,
            peak_live: live,
            live_bytes,
            peak_bytes: live_bytes,
            ..HeapStats::default()
        };
    }

    // ---- resource governance --------------------------------------------

    /// Caps live heap bytes (`None` lifts the cap). The cap is advisory:
    /// crossing it sets a sticky flag ([`Heap::over_budget`]) rather than
    /// failing the allocation, so in-flight operations complete and the VM
    /// aborts cleanly at its next checkpoint.
    pub fn set_byte_limit(&mut self, limit: Option<u64>) {
        self.byte_limit = limit;
    }

    /// Fault injection: trip the budget flag at the `at`-th allocation
    /// (counted over the heap's lifetime), as if a byte cap had been hit.
    pub fn set_trip_alloc(&mut self, at: Option<u64>) {
        self.trip_alloc = at;
    }

    /// Whether any byte cap or allocation trip is armed (used by the VM to
    /// decide if budget checkpoints need to poll the heap at all).
    pub fn has_byte_budget(&self) -> bool {
        self.byte_limit.is_some() || self.trip_alloc.is_some()
    }

    /// Whether the byte cap (or an injected allocation trip) has been hit.
    /// Sticky until [`Heap::clear_budget_trip`] or [`Heap::free_all`].
    pub fn over_budget(&self) -> bool {
        self.tripped
    }

    /// Clears the sticky budget-exceeded flag.
    pub fn clear_budget_trip(&mut self) {
        self.tripped = false;
    }

    /// Counts live objects by scanning the arena — the ground truth the
    /// abort-path leak checks compare against `stats().live`.
    pub fn live_objects(&self) -> u64 {
        self.slots
            .iter()
            .filter(|o| !matches!(o.data, ObjData::Free(_)))
            .count() as u64
    }

    /// Frees every live object unconditionally and rebuilds the free list —
    /// the drop-all sweep an aborted run uses to reclaim objects still owned
    /// by abandoned frames. Child references need no recursive dec: the
    /// sweep visits every slot exactly once. Returns the number of objects
    /// freed; afterwards `stats().live == 0` and, when the refcount
    /// machinery was balanced, `stats().allocs == stats().frees`.
    pub fn free_all(&mut self) -> u64 {
        let mut freed = 0u64;
        let mut next = u32::MAX;
        for slot in (0..self.slots.len()).rev() {
            let obj = &mut self.slots[slot];
            if !matches!(obj.data, ObjData::Free(_)) {
                freed += 1;
                obj.rc = 0;
            }
            obj.data = ObjData::Free(next);
            next = slot as u32;
        }
        self.free_head = (next != u32::MAX).then_some(next);
        // Set the ledgers directly rather than decrementing per object: if
        // bookkeeping had drifted, decrements could underflow and mask the
        // very imbalance the caller is about to assert on via allocs/frees.
        self.stats.frees += freed;
        self.stats.live = 0;
        self.stats.live_bytes = 0;
        self.tripped = false;
        freed
    }

    /// Objects allocated so far (cheap accessor: the VM samples this around
    /// allocating instructions to attribute allocations per opcode class).
    pub fn alloc_count(&self) -> u64 {
        self.stats.allocs
    }

    fn alloc(&mut self, data: ObjData) -> ObjRef {
        self.stats.allocs += 1;
        match data {
            ObjData::Ctor { .. } => self.stats.ctor_allocs += 1,
            ObjData::Closure { .. } => self.stats.closure_allocs += 1,
            ObjData::Array(_) => self.stats.array_allocs += 1,
            ObjData::Str(_) => self.stats.str_allocs += 1,
            ObjData::BigInt(_) => self.stats.bigint_allocs += 1,
            ObjData::Free(_) => unreachable!("allocating a free slot marker"),
        }
        self.stats.live += 1;
        self.stats.peak_live = self.stats.peak_live.max(self.stats.live);
        self.stats.live_bytes += obj_bytes(&data);
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        if self.byte_limit.is_some_and(|l| self.stats.live_bytes > l)
            || self.trip_alloc.is_some_and(|k| self.stats.allocs >= k)
        {
            self.tripped = true;
        }
        let obj = Object { rc: 1, data };
        match self.free_head.take() {
            Some(slot) => {
                let next = match self.slots[slot as usize].data {
                    ObjData::Free(next) => next,
                    _ => unreachable!("free list points at live object"),
                };
                self.free_head = if next == u32::MAX { None } else { Some(next) };
                self.slots[slot as usize] = obj;
                ObjRef::heap(slot)
            }
            None => {
                let slot = u32::try_from(self.slots.len()).expect("heap exhausted");
                self.slots.push(obj);
                ObjRef::heap(slot)
            }
        }
    }

    fn obj(&self, r: ObjRef) -> &Object {
        let slot = r.as_heap().expect("expected heap reference, got scalar");
        let o = &self.slots[slot as usize];
        debug_assert!(
            !matches!(o.data, ObjData::Free(_)),
            "use after free of slot {slot}"
        );
        o
    }

    fn obj_mut(&mut self, r: ObjRef) -> &mut Object {
        let slot = r.as_heap().expect("expected heap reference, got scalar");
        let o = &mut self.slots[slot as usize];
        debug_assert!(
            !matches!(o.data, ObjData::Free(_)),
            "use after free of slot {slot}"
        );
        o
    }

    /// Reads the payload of a heap object.
    ///
    /// # Panics
    ///
    /// Panics if `r` is a scalar.
    pub fn data(&self, r: ObjRef) -> &ObjData {
        &self.obj(r).data
    }

    /// Current reference count of a heap object.
    pub fn rc(&self, r: ObjRef) -> u32 {
        self.obj(r).rc
    }

    /// Whether the object is uniquely referenced (enables in-place update).
    pub fn is_exclusive(&self, r: ObjRef) -> bool {
        r.is_heap() && self.obj(r).rc == 1
    }

    // ---- allocation -----------------------------------------------------

    /// Allocates a constructor cell. Ownership of `fields` transfers to the
    /// new object (no `inc` is performed).
    pub fn alloc_ctor(&mut self, tag: u32, fields: Vec<ObjRef>) -> ObjRef {
        self.alloc(ObjData::Ctor {
            tag,
            fields: fields.into_boxed_slice(),
        })
    }

    /// Allocates a closure capturing `args`.
    pub fn alloc_closure(
        &mut self,
        func: crate::object::FuncId,
        arity: u16,
        args: Vec<ObjRef>,
    ) -> ObjRef {
        debug_assert!(args.len() < arity as usize || arity == 0);
        self.alloc(ObjData::Closure { func, arity, args })
    }

    /// Allocates an array.
    pub fn alloc_array(&mut self, elems: Vec<ObjRef>) -> ObjRef {
        self.alloc(ObjData::Array(elems))
    }

    /// Allocates a string.
    pub fn alloc_str(&mut self, s: String) -> ObjRef {
        self.alloc(ObjData::Str(s))
    }

    /// Boxes an arbitrary-precision integer, or returns a scalar if it fits.
    pub fn mk_int(&mut self, v: Int) -> ObjRef {
        match v.to_i64() {
            Some(s) if (MIN_SMALL_INT..=MAX_SMALL_INT).contains(&s) => ObjRef::scalar(s),
            _ => self.alloc(ObjData::BigInt(v)),
        }
    }

    /// Boxes a natural number, or returns a scalar if it fits.
    pub fn mk_nat(&mut self, v: Nat) -> ObjRef {
        match v.to_u64() {
            Some(s) if s <= MAX_SMALL_NAT => ObjRef::scalar(s as i64),
            _ => self.alloc(ObjData::BigInt(Int::from_nat(v))),
        }
    }

    /// Decodes a value known to be an integer (scalar or boxed bigint).
    ///
    /// # Panics
    ///
    /// Panics if `r` refers to a non-integer heap object.
    pub fn get_int(&self, r: ObjRef) -> Int {
        match r.as_scalar() {
            Some(v) => Int::from_i64(v),
            None => match self.data(r) {
                ObjData::BigInt(i) => i.clone(),
                other => panic!("expected integer object, found {other:?}"),
            },
        }
    }

    /// Decodes a value known to be a natural number.
    ///
    /// # Panics
    ///
    /// Panics if the value is negative or not an integer object.
    pub fn get_nat(&self, r: ObjRef) -> Nat {
        let i = self.get_int(r);
        assert!(!i.is_neg(), "expected natural, found negative {i}");
        i.magnitude().clone()
    }

    // ---- constructor access ---------------------------------------------

    /// The tag of a constructor value. Scalars are treated as zero-field
    /// constructors whose tag is the scalar value (LEAN's representation of
    /// enum-like inductives such as `Bool`).
    pub fn ctor_tag(&self, r: ObjRef) -> u32 {
        match r.as_scalar() {
            Some(v) => u32::try_from(v).expect("scalar ctor tag out of range"),
            None => match self.data(r) {
                ObjData::Ctor { tag, .. } => *tag,
                other => panic!("getlabel on non-constructor {other:?}"),
            },
        }
    }

    /// Projects field `idx` out of a constructor (no refcount change).
    ///
    /// # Panics
    ///
    /// Panics if `r` is not a constructor or `idx` is out of bounds.
    pub fn ctor_field(&self, r: ObjRef, idx: usize) -> ObjRef {
        match self.data(r) {
            ObjData::Ctor { fields, .. } => fields[idx],
            other => panic!("project on non-constructor {other:?}"),
        }
    }

    /// Number of fields of a constructor (0 for scalars).
    pub fn ctor_num_fields(&self, r: ObjRef) -> usize {
        if r.is_scalar() {
            return 0;
        }
        match self.data(r) {
            ObjData::Ctor { fields, .. } => fields.len(),
            other => panic!("num_fields on non-constructor {other:?}"),
        }
    }

    /// Overwrites field `idx` of an exclusively-owned constructor.
    ///
    /// # Panics
    ///
    /// Panics if the object is shared (`rc > 1`).
    pub fn ctor_set_field(&mut self, r: ObjRef, idx: usize, v: ObjRef) {
        assert!(self.is_exclusive(r), "ctor_set_field on shared object");
        match &mut self.obj_mut(r).data {
            ObjData::Ctor { fields, .. } => fields[idx] = v,
            other => panic!("set_field on non-constructor {other:?}"),
        }
    }

    // ---- reference counting ----------------------------------------------

    /// Increments the reference count (no-op on scalars), like `lean_inc`.
    pub fn inc(&mut self, r: ObjRef) {
        self.stats.incs += 1;
        if r.is_heap() {
            self.obj_mut(r).rc += 1;
        }
    }

    /// Increments the reference count by `n`.
    pub fn inc_n(&mut self, r: ObjRef, n: u32) {
        self.stats.incs += n as u64;
        if r.is_heap() && n > 0 {
            self.obj_mut(r).rc += n;
        }
    }

    /// Decrements the reference count, freeing (recursively, without using
    /// the machine stack) when it reaches zero. Like `lean_dec`.
    pub fn dec(&mut self, r: ObjRef) {
        self.stats.decs += 1;
        self.dec_no_stat(r);
    }

    fn dec_no_stat(&mut self, r: ObjRef) {
        let Some(slot) = r.as_heap() else {
            return;
        };
        let obj = &mut self.slots[slot as usize];
        debug_assert!(
            !matches!(obj.data, ObjData::Free(_)),
            "dec on freed slot {slot}"
        );
        debug_assert!(obj.rc >= 1, "dec on rc 0");
        obj.rc -= 1;
        if obj.rc == 0 {
            self.free_transitively(slot);
        }
    }

    /// Frees `slot` and — iteratively, without using the machine stack —
    /// every transitively-owned child whose refcount reaches zero. The
    /// worklist buffer persists on the heap (`dec_scratch`), so the free
    /// path itself does not allocate.
    fn free_transitively(&mut self, slot: u32) {
        let mut worklist = std::mem::take(&mut self.dec_scratch);
        debug_assert!(worklist.is_empty());
        self.free_one(slot, &mut worklist);
        while let Some(r) = worklist.pop() {
            let slot = r.as_heap().expect("worklist holds heap refs");
            let obj = &mut self.slots[slot as usize];
            debug_assert!(
                !matches!(obj.data, ObjData::Free(_)),
                "dec on freed slot {slot}"
            );
            debug_assert!(obj.rc >= 1, "dec on rc 0");
            obj.rc -= 1;
            if obj.rc == 0 {
                self.free_one(slot, &mut worklist);
            }
        }
        self.dec_scratch = worklist;
    }

    /// Frees one object: threads the slot onto the free list and queues
    /// its heap children for a deferred dec on `worklist`.
    fn free_one(&mut self, slot: u32, worklist: &mut Vec<ObjRef>) {
        let obj = &mut self.slots[slot as usize];
        let next_free = self.free_head.unwrap_or(u32::MAX);
        let data = std::mem::replace(&mut obj.data, ObjData::Free(next_free));
        self.free_head = Some(slot);
        self.stats.frees += 1;
        self.stats.live -= 1;
        self.stats.live_bytes -= obj_bytes(&data);
        match data {
            ObjData::Ctor { fields, .. } => {
                worklist.extend(fields.iter().copied().filter(|f| f.is_heap()));
            }
            ObjData::Closure { args, .. } => {
                worklist.extend(args.iter().copied().filter(|a| a.is_heap()));
            }
            ObjData::Array(elems) => {
                worklist.extend(elems.iter().copied().filter(|e| e.is_heap()));
            }
            ObjData::BigInt(_) | ObjData::Str(_) => {}
            ObjData::Free(_) => unreachable!(),
        }
    }

    // ---- arrays ------------------------------------------------------------

    /// Array length, or `None` when `r` is not a heap array — the cheap
    /// guard the VM's array fast paths branch on before touching elements.
    pub fn try_array_len(&self, r: ObjRef) -> Option<usize> {
        if !r.is_heap() {
            return None;
        }
        match self.data(r) {
            ObjData::Array(v) => Some(v.len()),
            _ => None,
        }
    }

    /// Array length.
    pub fn array_len(&self, r: ObjRef) -> usize {
        match self.data(r) {
            ObjData::Array(v) => v.len(),
            other => panic!("array_len on non-array {other:?}"),
        }
    }

    /// Reads an array element (no refcount change).
    pub fn array_get(&self, r: ObjRef, idx: usize) -> ObjRef {
        match self.data(r) {
            ObjData::Array(v) => v[idx],
            other => panic!("array_get on non-array {other:?}"),
        }
    }

    /// Functional array update with LEAN's exclusivity optimization: updates
    /// in place when `rc == 1`, otherwise copies. Consumes one reference to
    /// `arr` and takes ownership of `v`; returns the resulting array.
    pub fn array_set(&mut self, arr: ObjRef, idx: usize, v: ObjRef) -> ObjRef {
        if self.is_exclusive(arr) {
            let old = match &mut self.obj_mut(arr).data {
                ObjData::Array(elems) => std::mem::replace(&mut elems[idx], v),
                other => panic!("array_set on non-array {other:?}"),
            };
            self.dec(old);
            arr
        } else {
            let mut elems = match self.data(arr) {
                ObjData::Array(elems) => elems.clone(),
                other => panic!("array_set on non-array {other:?}"),
            };
            for &e in &elems {
                self.inc(e);
            }
            // Release the reference the caller handed us, and the +1 we gave
            // the element we are about to overwrite.
            self.dec(elems[idx]);
            elems[idx] = v;
            self.dec(arr);
            self.alloc_array(elems)
        }
    }

    /// Appends to an array with the same exclusivity optimization.
    pub fn array_push(&mut self, arr: ObjRef, v: ObjRef) -> ObjRef {
        if self.is_exclusive(arr) {
            match &mut self.obj_mut(arr).data {
                ObjData::Array(elems) => elems.push(v),
                other => panic!("array_push on non-array {other:?}"),
            }
            // The in-place push grew the array by one element word — the
            // only mutation path that changes an object's size after alloc.
            self.stats.live_bytes += 8;
            self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
            if self.byte_limit.is_some_and(|l| self.stats.live_bytes > l) {
                self.tripped = true;
            }
            arr
        } else {
            let mut elems = match self.data(arr) {
                ObjData::Array(elems) => elems.clone(),
                other => panic!("array_push on non-array {other:?}"),
            };
            for &e in &elems {
                self.inc(e);
            }
            elems.push(v);
            self.dec(arr);
            self.alloc_array(elems)
        }
    }

    // ---- strings -----------------------------------------------------------

    /// Reads a string object.
    pub fn get_str(&self, r: ObjRef) -> &str {
        match self.data(r) {
            ObjData::Str(s) => s,
            other => panic!("get_str on non-string {other:?}"),
        }
    }

    // ---- structural helpers -------------------------------------------------

    /// Deep structural equality of two values (used by the differential test
    /// harness to compare program results across pipelines).
    pub fn deep_eq(&self, a: ObjRef, b: ObjRef) -> bool {
        let mut stack = vec![(a, b)];
        while let Some((a, b)) = stack.pop() {
            if a == b {
                continue;
            }
            match (a.as_scalar(), b.as_scalar()) {
                (Some(x), Some(y)) => {
                    if x != y {
                        return false;
                    }
                }
                (None, None) => match (self.data(a), self.data(b)) {
                    (
                        ObjData::Ctor {
                            tag: t1,
                            fields: f1,
                        },
                        ObjData::Ctor {
                            tag: t2,
                            fields: f2,
                        },
                    ) => {
                        if t1 != t2 || f1.len() != f2.len() {
                            return false;
                        }
                        stack.extend(f1.iter().copied().zip(f2.iter().copied()));
                    }
                    (ObjData::BigInt(x), ObjData::BigInt(y)) => {
                        if x != y {
                            return false;
                        }
                    }
                    (ObjData::Array(x), ObjData::Array(y)) => {
                        if x.len() != y.len() {
                            return false;
                        }
                        stack.extend(x.iter().copied().zip(y.iter().copied()));
                    }
                    (ObjData::Str(x), ObjData::Str(y)) => {
                        if x != y {
                            return false;
                        }
                    }
                    (
                        ObjData::Closure {
                            func: fa, args: aa, ..
                        },
                        ObjData::Closure {
                            func: fb, args: ab, ..
                        },
                    ) => {
                        if fa != fb || aa.len() != ab.len() {
                            return false;
                        }
                        stack.extend(aa.iter().copied().zip(ab.iter().copied()));
                    }
                    _ => return false,
                },
                // Scalar vs boxed bigint holding the same value can only
                // happen if boxing discipline was violated; treat by value.
                _ => {
                    let (s, h) = if a.is_scalar() { (a, b) } else { (b, a) };
                    match self.data(h) {
                        ObjData::BigInt(i) => {
                            if i.to_i64() != s.as_scalar() {
                                return false;
                            }
                        }
                        ObjData::Ctor { tag, fields } => {
                            // Scalar-encoded enum constructor vs boxed ctor.
                            if !fields.is_empty() || s.as_scalar() != Some(*tag as i64) {
                                return false;
                            }
                        }
                        _ => return false,
                    }
                }
            }
        }
        true
    }

    /// Renders a value for display/debugging (a stable textual form used to
    /// compare outputs across pipelines).
    pub fn render(&self, r: ObjRef) -> String {
        match r.as_scalar() {
            Some(v) => v.to_string(),
            None => match self.data(r) {
                ObjData::Ctor { tag, fields } => {
                    if fields.is_empty() {
                        format!("ctor{tag}")
                    } else {
                        let fs: Vec<String> = fields.iter().map(|&f| self.render(f)).collect();
                        format!("ctor{tag}({})", fs.join(", "))
                    }
                }
                ObjData::BigInt(i) => i.to_string(),
                ObjData::Closure { func, arity, args } => {
                    format!("closure<{func}/{arity}:{}>", args.len())
                }
                ObjData::Array(elems) => {
                    let es: Vec<String> = elems.iter().map(|&e| self.render(e)).collect();
                    format!("#[{}]", es.join(", "))
                }
                ObjData::Str(s) => format!("{s:?}"),
                ObjData::Free(_) => "<freed>".to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::object::FuncId;

    #[test]
    fn alloc_and_free_reuses_slots() {
        let mut h = Heap::new();
        let a = h.alloc_ctor(0, vec![]);
        let slot_a = a.as_heap().unwrap();
        h.dec(a);
        assert_eq!(h.stats().live, 0);
        let b = h.alloc_ctor(1, vec![]);
        assert_eq!(b.as_heap().unwrap(), slot_a, "slot should be reused");
        assert_eq!(h.ctor_tag(b), 1);
    }

    #[test]
    fn dec_frees_transitively() {
        let mut h = Heap::new();
        let mut list = h.alloc_ctor(0, vec![]);
        for i in 0..100 {
            list = h.alloc_ctor(1, vec![ObjRef::scalar(i), list]);
        }
        assert_eq!(h.stats().live, 101);
        h.dec(list);
        assert_eq!(h.stats().live, 0);
        assert_eq!(h.stats().frees, 101);
    }

    #[test]
    fn shared_child_survives_parent_free() {
        let mut h = Heap::new();
        let child = h.alloc_ctor(7, vec![]);
        h.inc(child); // one ref for us, one for parent
        let parent = h.alloc_ctor(1, vec![child]);
        h.dec(parent);
        assert_eq!(h.stats().live, 1);
        assert_eq!(h.ctor_tag(child), 7);
        h.dec(child);
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn deep_list_free_does_not_overflow_stack() {
        let mut h = Heap::new();
        let mut list = h.alloc_ctor(0, vec![]);
        for _ in 0..1_000_000 {
            list = h.alloc_ctor(1, vec![ObjRef::scalar(0), list]);
        }
        h.dec(list);
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn mk_nat_boxes_only_large() {
        let mut h = Heap::new();
        let small = h.mk_nat(Nat::from_u64(12345));
        assert!(small.is_scalar());
        let big = h.mk_nat(Nat::from_u64(u64::MAX));
        assert!(big.is_heap());
        assert_eq!(h.get_nat(big).to_u64(), Some(u64::MAX));
    }

    #[test]
    fn mk_int_negative_scalars() {
        let mut h = Heap::new();
        let v = h.mk_int(Int::from_i64(-5));
        assert_eq!(v.as_scalar(), Some(-5));
        let big = h.mk_int(Int::from_i64(i64::MIN));
        assert!(big.is_heap());
        assert_eq!(h.get_int(big).to_i64(), Some(i64::MIN));
    }

    #[test]
    fn array_set_exclusive_in_place() {
        let mut h = Heap::new();
        let arr = h.alloc_array(vec![ObjRef::scalar(1), ObjRef::scalar(2)]);
        let arr2 = h.array_set(arr, 0, ObjRef::scalar(9));
        assert_eq!(arr, arr2, "exclusive update must be in place");
        assert_eq!(h.array_get(arr2, 0).as_scalar(), Some(9));
        assert_eq!(h.stats().allocs, 1);
    }

    #[test]
    fn array_set_shared_copies() {
        let mut h = Heap::new();
        let arr = h.alloc_array(vec![ObjRef::scalar(1), ObjRef::scalar(2)]);
        h.inc(arr); // simulate sharing
        let arr2 = h.array_set(arr, 0, ObjRef::scalar(9));
        assert_ne!(arr, arr2, "shared update must copy");
        assert_eq!(h.array_get(arr, 0).as_scalar(), Some(1));
        assert_eq!(h.array_get(arr2, 0).as_scalar(), Some(9));
        h.dec(arr);
        h.dec(arr2);
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn array_set_shared_preserves_heap_elements() {
        let mut h = Heap::new();
        let elem = h.alloc_ctor(3, vec![]);
        let arr = h.alloc_array(vec![elem, ObjRef::scalar(0)]);
        h.inc(arr);
        let arr2 = h.array_set(arr, 1, ObjRef::scalar(5));
        // `elem` is now referenced by both arrays.
        assert_eq!(h.rc(elem), 2);
        h.dec(arr);
        h.dec(arr2);
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn array_push_shared_and_exclusive() {
        let mut h = Heap::new();
        let arr = h.alloc_array(vec![]);
        let arr = h.array_push(arr, ObjRef::scalar(1));
        let arr = h.array_push(arr, ObjRef::scalar(2));
        assert_eq!(h.array_len(arr), 2);
        h.inc(arr);
        let arr2 = h.array_push(arr, ObjRef::scalar(3));
        assert_ne!(arr, arr2);
        assert_eq!(h.array_len(arr), 2);
        assert_eq!(h.array_len(arr2), 3);
        h.dec(arr);
        h.dec(arr2);
        assert_eq!(h.stats().live, 0);
    }

    #[test]
    fn deep_eq_structures() {
        let mut h = Heap::new();
        let n1 = h.alloc_ctor(0, vec![]);
        let n2 = h.alloc_ctor(0, vec![]);
        let l1 = h.alloc_ctor(1, vec![ObjRef::scalar(5), n1]);
        let l2 = h.alloc_ctor(1, vec![ObjRef::scalar(5), n2]);
        assert!(h.deep_eq(l1, l2));
        let l3 = h.alloc_ctor(1, vec![ObjRef::scalar(6), l1]);
        assert!(!h.deep_eq(l2, l3));
    }

    #[test]
    fn deep_eq_scalar_vs_boxed_ctor() {
        let mut h = Heap::new();
        let boxed_true = h.alloc_ctor(1, vec![]);
        assert!(h.deep_eq(ObjRef::scalar(1), boxed_true));
        assert!(!h.deep_eq(ObjRef::scalar(0), boxed_true));
    }

    #[test]
    fn render_values() {
        let mut h = Heap::new();
        let nil = h.alloc_ctor(0, vec![]);
        let cons = h.alloc_ctor(1, vec![ObjRef::scalar(3), nil]);
        assert_eq!(h.render(cons), "ctor1(3, ctor0)");
        let arr = h.alloc_array(vec![ObjRef::scalar(1)]);
        assert_eq!(h.render(arr), "#[1]");
        let clos = h.alloc_closure(FuncId(2), 3, vec![ObjRef::scalar(0)]);
        assert_eq!(h.render(clos), "closure<@fn2/3:1>");
    }

    #[test]
    fn byte_accounting_tracks_alloc_free_and_push() {
        let mut h = Heap::new();
        let arr = h.alloc_array(vec![ObjRef::scalar(1)]);
        assert_eq!(h.stats().live_bytes, 16 + 8);
        let arr = h.array_push(arr, ObjRef::scalar(2));
        assert_eq!(h.stats().live_bytes, 16 + 16, "in-place push adds a word");
        let s = h.alloc_str("hello".to_string());
        assert_eq!(h.stats().live_bytes, 16 + 16 + 16 + 5);
        assert_eq!(h.stats().peak_bytes, h.stats().live_bytes);
        h.dec(s);
        h.dec(arr);
        assert_eq!(h.stats().live_bytes, 0);
        assert_eq!(h.stats().peak_bytes, 16 + 16 + 16 + 5);
    }

    #[test]
    fn byte_limit_trips_sticky() {
        let mut h = Heap::new();
        h.set_byte_limit(Some(64));
        let mut keep = Vec::new();
        for i in 0..4 {
            keep.push(h.alloc_ctor(0, vec![ObjRef::scalar(i)]));
        }
        assert!(h.over_budget(), "4 * 24 bytes must exceed the 64-byte cap");
        // Freeing below the cap does not clear the trip: it is sticky so the
        // VM's checkpoint can observe it after the fact.
        for r in keep {
            h.dec(r);
        }
        assert!(h.over_budget());
        h.clear_budget_trip();
        assert!(!h.over_budget());
    }

    #[test]
    fn trip_alloc_fault_injection() {
        let mut h = Heap::new();
        h.set_trip_alloc(Some(3));
        h.alloc_ctor(0, vec![]);
        h.alloc_ctor(0, vec![]);
        assert!(!h.over_budget());
        h.alloc_ctor(0, vec![]);
        assert!(h.over_budget(), "third allocation must trip the fault");
    }

    #[test]
    fn free_all_reclaims_everything_and_balances() {
        let mut h = Heap::new();
        let keep = h.alloc_ctor(0, vec![]);
        let mut list = h.alloc_ctor(0, vec![]);
        for i in 0..10 {
            list = h.alloc_ctor(1, vec![ObjRef::scalar(i), list]);
        }
        h.dec(keep); // one slot already on the free list
        assert_eq!(h.live_objects(), h.stats().live);
        let freed = h.free_all();
        assert_eq!(freed, 11);
        assert_eq!(h.stats().live, 0);
        assert_eq!(h.live_objects(), 0);
        assert_eq!(h.stats().allocs, h.stats().frees);
        assert_eq!(h.stats().live_bytes, 0);
        // The arena is fully reusable afterwards.
        let again = h.alloc_ctor(9, vec![]);
        assert_eq!(h.ctor_tag(again), 9);
        assert_eq!(h.stats().live, 1);
    }

    #[test]
    fn peak_live_tracking() {
        let mut h = Heap::new();
        let a = h.alloc_ctor(0, vec![]);
        let b = h.alloc_ctor(0, vec![]);
        h.dec(a);
        h.dec(b);
        let _c = h.alloc_ctor(0, vec![]);
        assert_eq!(h.stats().peak_live, 2);
        assert_eq!(h.stats().live, 1);
    }
}
