//! The pre-decoded compact instruction stream the VM actually executes.
//!
//! [`crate::bytecode::Instr`] is the backend's *interchange* form: explicit,
//! printable, easy to construct — and expensive to interpret, because the
//! wide enum drags `Vec`s through every `Construct`/`Call`/`TailCall` and
//! forces the dispatch loop to clone instructions to appease the borrow
//! checker. This module lowers a [`CompiledProgram`] once, ahead of
//! execution, into [`DecodedProgram`]:
//!
//! - every instruction becomes a fixed-size, `Copy` [`DecodedInstr`] with
//!   **no per-instruction heap data** (asserted at compile time to stay
//!   within 16 bytes);
//! - variable-length register lists live in one shared side pool per
//!   function ([`DecodedFn::args`]), referenced by `(u32 offset, u16 len)`
//!   [`ArgSlice`]s; switch tables live in a second pool
//!   ([`DecodedFn::cases`]);
//! - jump targets shrink to `u32`.
//!
//! Decoding is lossless: [`DecodedFn::encode`] reconstructs the original
//! enum instruction exactly (the round-trip the unit tests pin down), so
//! the decoded form executes identically by construction.
//!
//! ## Superinstruction fusion
//!
//! On top of the base lowering, [`decode_program_with`] runs a peephole
//! **fusion pass** (on by default, disabled by
//! [`DecodeOptions::no_fuse`] / `--no-fuse`) that combines adjacent cells
//! into *superinstructions* — single cells executing what used to be two or
//! three dispatches. The fused shapes are the ones the compiled workloads
//! actually run hottest (see the dispatch arms in [`crate::exec`]):
//!
//! | superinstruction | replaces | dispatches saved |
//! |------------------|----------|------------------|
//! | [`DecodedInstr::CmpBr`] | `Cmp` + `Branch` | 1 |
//! | [`DecodedInstr::ConstCmpBr`] | `ConstInt` + `Cmp` + `Branch` | 2 |
//! | [`DecodedInstr::ConstBin`] | `ConstInt` + `Bin` | 1 |
//! | [`DecodedInstr::BinRet`] | `Bin` + `Ret` | 1 |
//! | [`DecodedInstr::MovRet`] | `Move` + `Ret` | 1 |
//! | [`DecodedInstr::ConstRet`] | `LpInt` + `Ret` | 1 |
//! | [`DecodedInstr::ProjInc`] | `Project` + `Inc` | 1 |
//! | [`DecodedInstr::CallBuiltinRet`] | `CallBuiltin` + `Ret` | 1 |
//! | [`DecodedInstr::ConstructRet`] | `Construct` + `Ret` | 1 |
//! | [`DecodedInstr::SwitchDense`] | `Switch` (contiguous keys) | scan → O(1) |
//! | [`DecodedInstr::Dec2`] | `Dec` + `Dec` | 1 |
//! | [`DecodedInstr::ProjInc2`] | `Project` + `Inc` + `Project` + `Inc` | 3 |
//! | [`DecodedInstr::Dec4`] | `Dec` × 4 | 3 |
//! | [`DecodedInstr::ProjInc2Dec`] | `Project` + `Inc` + `Project` + `Inc` + `Dec` | 4 |
//!
//! `Dec2` and `ProjInc2` came out of the `--pairs` histogram in
//! `examples/dump_decoded.rs`: `dec+dec` and `projinc+projinc` were the
//! two most frequent fusible adjacencies left in the fused streams of the
//! benchmark suite (RC-heavy constructor code releases fields in bursts,
//! and pattern matches project-and-retain consecutive fields). A later
//! round of the same mining found `dec2+dec2` and `projinc2+dec` on top —
//! the rc-opt pass's dec sinking stacks releases even deeper, and a
//! pattern match that peels two fields immediately releases the
//! scrutinee — hence `Dec4` and `ProjInc2Dec`.
//!
//! Fusion **bails** conservatively: a pair is only combined when the
//! swallowed instruction is not a jump target (control never enters the
//! middle of a fused cell) and any intermediate register the fusion stops
//! writing is read nowhere else in the function (whole-function read
//! counts, so register reuse across blocks is handled). Jump targets are
//! remapped over the shortened stream; `SwitchDense` additionally requires
//! the case keys to form a contiguous range (duplicates or gaps fall back
//! to the scanning `Switch`). Fused and unfused streams are differentially
//! tested to produce byte-identical results on every workload.

use crate::bytecode::{BinOp, CmpPred, CompiledFn, CompiledProgram, Instr, Reg};
use lssa_rt::{Builtin, Nat};

/// Options controlling [`decode_program_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeOptions {
    /// Run the superinstruction fusion pass (the default; `--no-fuse`
    /// disables it for fused-vs-unfused measurements).
    pub fuse: bool,
    /// Run the register-renumbering compaction pass (the default;
    /// `--no-renumber` disables it for ablation): every function's
    /// referenced registers are renumbered to a dense prefix, shrinking
    /// the pooled frames' register files.
    pub renumber: bool,
}

impl Default for DecodeOptions {
    fn default() -> DecodeOptions {
        DecodeOptions {
            fuse: true,
            renumber: true,
        }
    }
}

impl DecodeOptions {
    /// The default: fusion and renumbering on.
    pub fn fused() -> DecodeOptions {
        DecodeOptions::default()
    }

    /// Everything off — the pre-PR-5 decoded stream, byte-for-byte (this
    /// is the mode the encode round-trip is defined on, so renumbering is
    /// off here too).
    pub fn no_fuse() -> DecodeOptions {
        DecodeOptions {
            fuse: false,
            renumber: false,
        }
    }

    /// Same options with the fusion pass toggled.
    pub fn with_fuse(self, fuse: bool) -> DecodeOptions {
        DecodeOptions { fuse, ..self }
    }

    /// Same options with the renumbering pass toggled.
    pub fn with_renumber(self, renumber: bool) -> DecodeOptions {
        DecodeOptions { renumber, ..self }
    }

    /// Cache-slot index for [`crate::bytecode::DecodeCache`] (one slot per
    /// option combination).
    pub(crate) fn cache_index(self) -> usize {
        usize::from(self.fuse) | (usize::from(self.renumber) << 1)
    }

    /// Number of distinct option combinations ([`Self::cache_index`] range).
    pub(crate) const CACHE_SLOTS: usize = 4;
}

/// Sentinel for call-shaped instructions without an inline-cache slot
/// (functions with more than `u16::MAX - 1` call sites stop allocating).
pub const NO_CACHE: u16 = u16::MAX;

/// A `(offset, len)` window into a function's shared register pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgSlice {
    /// Offset into [`DecodedFn::args`] (or [`DecodedFn::cases`]).
    pub off: u32,
    /// Number of entries.
    pub len: u16,
}

impl ArgSlice {
    /// The corresponding `Range` for indexing the pool.
    pub fn range(self) -> std::ops::Range<usize> {
        let off = self.off as usize;
        off..off + self.len as usize
    }
}

/// Coarse instruction classes for per-opcode-class execution statistics
/// (the VM-side analogue of `lssa-ir`'s per-pass `PassStatistics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpClass {
    /// Constant materialization (`ConstInt`, `LpInt`).
    Const = 0,
    /// Heap-allocating data constructors (`LpBig`, `LpStr`, `Construct`).
    Alloc,
    /// Reads of constructor cells (`GetLabel`, `Project`).
    Project,
    /// Closure creation/extension (`Pap`, `PapExtend`).
    Closure,
    /// Reference counting (`Inc`, `Dec`).
    Rc,
    /// Direct calls of user functions.
    Call,
    /// Calls of runtime builtins.
    CallBuiltin,
    /// Guaranteed tail calls (frame-reusing).
    TailCall,
    /// Returns.
    Ret,
    /// Control flow (`Jump`, `Branch`, `Switch`).
    Branch,
    /// Raw-word arithmetic (`Bin`, `Cmp`, `Select`, `Mask`).
    Arith,
    /// Register copies.
    Move,
    /// Module-global loads/stores.
    Global,
    /// `Trap`.
    Trap,
    /// Fused `Cmp` + `Branch`.
    FusedCmpBr,
    /// Fused `ConstInt` + `Cmp` + `Branch`.
    FusedConstCmpBr,
    /// Fused `ConstInt` + `Bin`.
    FusedConstBin,
    /// Fused `Bin` + `Ret`.
    FusedBinRet,
    /// Fused `Move` + `Ret`.
    FusedMovRet,
    /// Fused `LpInt` + `Ret`.
    FusedConstRet,
    /// Fused `Project` + `Inc`.
    FusedProjInc,
    /// Fused `CallBuiltin` + `Ret`.
    FusedCallBuiltinRet,
    /// Fused `Construct` + `Ret`.
    FusedConstructRet,
    /// Dense-range `Switch` (direct jump-table lookup).
    FusedSwitchDense,
    /// Fused `Dec` + `Dec`.
    FusedDec2,
    /// Fused `Project` + `Inc` + `Project` + `Inc`.
    FusedProjInc2,
    /// Fused `Dec` × 4.
    FusedDec4,
    /// Fused `Project` + `Inc` + `Project` + `Inc` + `Dec`.
    FusedProjInc2Dec,
}

impl OpClass {
    /// Number of classes (sizes the statistics arrays).
    pub const COUNT: usize = 28;

    /// All classes in display order.
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::Const,
        OpClass::Alloc,
        OpClass::Project,
        OpClass::Closure,
        OpClass::Rc,
        OpClass::Call,
        OpClass::CallBuiltin,
        OpClass::TailCall,
        OpClass::Ret,
        OpClass::Branch,
        OpClass::Arith,
        OpClass::Move,
        OpClass::Global,
        OpClass::Trap,
        OpClass::FusedCmpBr,
        OpClass::FusedConstCmpBr,
        OpClass::FusedConstBin,
        OpClass::FusedBinRet,
        OpClass::FusedMovRet,
        OpClass::FusedConstRet,
        OpClass::FusedProjInc,
        OpClass::FusedCallBuiltinRet,
        OpClass::FusedConstructRet,
        OpClass::FusedSwitchDense,
        OpClass::FusedDec2,
        OpClass::FusedProjInc2,
        OpClass::FusedDec4,
        OpClass::FusedProjInc2Dec,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Const => "const",
            OpClass::Alloc => "alloc",
            OpClass::Project => "project",
            OpClass::Closure => "closure",
            OpClass::Rc => "rc",
            OpClass::Call => "call",
            OpClass::CallBuiltin => "call-builtin",
            OpClass::TailCall => "tail-call",
            OpClass::Ret => "ret",
            OpClass::Branch => "branch",
            OpClass::Arith => "arith",
            OpClass::Move => "move",
            OpClass::Global => "global",
            OpClass::Trap => "trap",
            OpClass::FusedCmpBr => "fused cmp+br",
            OpClass::FusedConstCmpBr => "fused const+cmp+br",
            OpClass::FusedConstBin => "fused const+bin",
            OpClass::FusedBinRet => "fused bin+ret",
            OpClass::FusedMovRet => "fused mov+ret",
            OpClass::FusedConstRet => "fused const+ret",
            OpClass::FusedProjInc => "fused proj+inc",
            OpClass::FusedCallBuiltinRet => "fused builtin+ret",
            OpClass::FusedConstructRet => "fused construct+ret",
            OpClass::FusedSwitchDense => "fused switch-dense",
            OpClass::FusedDec2 => "fused dec+dec",
            OpClass::FusedProjInc2 => "fused proj+inc x2",
            OpClass::FusedDec4 => "fused dec x4",
            OpClass::FusedProjInc2Dec => "fused proj+inc x2+dec",
        }
    }

    /// Whether this class is a superinstruction produced by the fusion
    /// pass (the fused rows of `--vm-stats` / `ablation`).
    pub fn is_fused(self) -> bool {
        self as usize >= OpClass::FusedCmpBr as usize
    }
}

/// One pre-decoded instruction: fixed operands only, `Copy`, no heap data.
///
/// Mirrors [`Instr`] variant-for-variant; variable-length payloads are
/// [`ArgSlice`]s into the owning [`DecodedFn`]'s pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedInstr {
    /// `dst ← raw constant`.
    ConstInt {
        /// Destination.
        dst: Reg,
        /// The value.
        v: i64,
    },
    /// `dst ← scalar object`.
    LpInt {
        /// Destination.
        dst: Reg,
        /// The (small) integer.
        v: i64,
    },
    /// `dst ← boxed bignum` from the constant pool.
    LpBig {
        /// Destination.
        dst: Reg,
        /// Pool index.
        idx: u32,
    },
    /// `dst ← string object` from the pool.
    LpStr {
        /// Destination.
        dst: Reg,
        /// Pool index.
        idx: u32,
    },
    /// `dst ← ctor{tag}(args…)`.
    Construct {
        /// Destination.
        dst: Reg,
        /// Variant tag.
        tag: u32,
        /// Field registers (pool slice).
        args: ArgSlice,
    },
    /// `dst ← tag(src)` as a raw word.
    GetLabel {
        /// Destination (raw).
        dst: Reg,
        /// Source object.
        src: Reg,
    },
    /// `dst ← field idx of src`.
    Project {
        /// Destination.
        dst: Reg,
        /// Source object.
        src: Reg,
        /// Field index.
        idx: u32,
    },
    /// Build a closure. The argument slice is flattened into `args_off`/
    /// `args_len` (an [`ArgSlice`]'s padding would push this variant past
    /// the 16-byte cell).
    Pap {
        /// Destination.
        dst: Reg,
        /// Target function (VM index).
        func: u32,
        /// Its arity.
        arity: u16,
        /// Captured arguments: offset into the pool.
        args_off: u32,
        /// Captured arguments: count.
        args_len: u16,
    },
    /// Extend a closure, possibly invoking it.
    PapExtend {
        /// Destination.
        dst: Reg,
        /// The closure.
        closure: Reg,
        /// Arguments to add (pool slice).
        args: ArgSlice,
        /// Inline-cache slot (function-local; [`NO_CACHE`] when absent).
        cache: u16,
    },
    /// Retain.
    Inc {
        /// The object.
        src: Reg,
    },
    /// Release.
    Dec {
        /// The object.
        src: Reg,
    },
    /// Direct call of a user function. The argument slice is flattened
    /// (like [`DecodedInstr::Pap`]) to make room for the cache slot within
    /// the 16-byte cell.
    Call {
        /// Destination for the result.
        dst: Reg,
        /// VM function index.
        func: u32,
        /// Arguments: offset into the pool.
        args_off: u32,
        /// Arguments: count.
        args_len: u16,
        /// Inline-cache slot (function-local; [`NO_CACHE`] when absent).
        cache: u16,
    },
    /// Call of a runtime builtin.
    CallBuiltin {
        /// Destination.
        dst: Reg,
        /// The builtin.
        builtin: Builtin,
        /// Arguments (pool slice).
        args: ArgSlice,
        /// Borrowed argument positions (bit *i* = argument *i*): retained
        /// as the first step of the call (a folded `lp.inc`).
        mask: u8,
    },
    /// Guaranteed tail call: reuses the current frame in place. Flattened
    /// argument slice, as in [`DecodedInstr::Call`].
    TailCall {
        /// VM function index.
        func: u32,
        /// Arguments: offset into the pool.
        args_off: u32,
        /// Arguments: count.
        args_len: u16,
        /// Inline-cache slot (function-local; [`NO_CACHE`] when absent).
        cache: u16,
    },
    /// Return `src` to the caller.
    Ret {
        /// The result.
        src: Reg,
    },
    /// Unconditional jump.
    Jump {
        /// Absolute target.
        target: u32,
    },
    /// Two-way branch on a raw word.
    Branch {
        /// Condition (0 = false).
        cond: Reg,
        /// Target when non-zero.
        then_t: u32,
        /// Target when zero.
        else_t: u32,
    },
    /// Jump table on a raw word; `(value, target)` pairs live in
    /// [`DecodedFn::cases`].
    Switch {
        /// Scrutinee.
        idx: Reg,
        /// Cases (slice of the case pool).
        cases: ArgSlice,
        /// Fallback target.
        default: u32,
    },
    /// `dst ← op(a, b)` on raw words.
    Bin {
        /// The operation.
        op: BinOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst ← pred(a, b)` as 0/1.
    Cmp {
        /// The predicate.
        pred: CmpPred,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst ← c ? a : b`.
    Select {
        /// Destination.
        dst: Reg,
        /// Condition (raw).
        c: Reg,
        /// Taken when non-zero.
        a: Reg,
        /// Taken when zero.
        b: Reg,
    },
    /// `dst ← src & mask`.
    Mask {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
        /// Bit mask.
        mask: u64,
    },
    /// Register copy.
    Move {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// Read a module global.
    GlobalLoad {
        /// Destination.
        dst: Reg,
        /// Global slot index.
        idx: u32,
    },
    /// Write a module global.
    GlobalStore {
        /// Global slot index.
        idx: u32,
        /// Source.
        src: Reg,
    },
    /// Executing this is a bug.
    Trap,

    // ---- superinstructions (emitted only by the fusion pass) ----
    /// Fused `Cmp` + `Branch`: branch directly on `pred(a, b)`.
    CmpBr {
        /// The predicate.
        pred: CmpPred,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
        /// Target when the predicate holds.
        then_t: u32,
        /// Target when it does not.
        else_t: u32,
    },
    /// Fused `ConstInt` + `Cmp` + `Branch`: branch on `pred(a, imm)`.
    /// When the constant was the *left* comparison operand the stored
    /// predicate is the swapped one, so the semantics stay `pred(a, imm)`.
    ConstCmpBr {
        /// The (possibly swapped) predicate.
        pred: CmpPred,
        /// The register operand.
        a: Reg,
        /// The immediate operand (fusion bails when it exceeds `i32`).
        imm: i32,
        /// Target when the predicate holds.
        then_t: u32,
        /// Target when it does not.
        else_t: u32,
    },
    /// Fused `ConstInt` + `Bin`: `dst ← op(src, imm)` (or `op(imm, src)`
    /// when `imm_rhs` is false).
    ConstBin {
        /// The operation.
        op: BinOp,
        /// Whether the immediate is the right operand.
        imm_rhs: bool,
        /// Destination.
        dst: Reg,
        /// The register operand.
        src: Reg,
        /// The immediate operand.
        imm: i64,
    },
    /// Fused `Bin` + `Ret`: return `op(a, b)`.
    BinRet {
        /// The operation.
        op: BinOp,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Fused `Move` + `Ret`: return `src`.
    MovRet {
        /// The result.
        src: Reg,
    },
    /// Fused `LpInt` + `Ret`: return the scalar object `v`.
    ConstRet {
        /// The (small) integer.
        v: i64,
    },
    /// Fused `Project` + `Inc`: `dst ← field idx of src`, then retain it.
    ProjInc {
        /// Destination.
        dst: Reg,
        /// Source object.
        src: Reg,
        /// Field index.
        idx: u32,
    },
    /// Fused `CallBuiltin` + `Ret`: return the builtin's result.
    CallBuiltinRet {
        /// The builtin.
        builtin: Builtin,
        /// Arguments (pool slice).
        args: ArgSlice,
        /// Borrowed argument positions, as in [`DecodedInstr::CallBuiltin`].
        mask: u8,
    },
    /// Fused `Construct` + `Ret`: return `ctor{tag}(args…)`.
    ConstructRet {
        /// Variant tag.
        tag: u32,
        /// Field registers (pool slice).
        args: ArgSlice,
    },
    /// `Switch` whose case keys form a contiguous range: the (sorted) run
    /// in [`DecodedFn::cases`] is indexed directly by `value - first_key`
    /// instead of scanned.
    SwitchDense {
        /// Scrutinee.
        idx: Reg,
        /// Sorted contiguous cases (slice of the case pool).
        cases: ArgSlice,
        /// Fallback target.
        default: u32,
    },
    /// Fused `Dec` + `Dec`: release two objects in one dispatch.
    Dec2 {
        /// First object released.
        a: Reg,
        /// Second object released.
        b: Reg,
    },
    /// Fused `Project` + `Inc` + `Project` + `Inc`: two project-and-retain
    /// groups (pattern matches peel consecutive constructor fields this
    /// way). Field indices are narrowed to `u16` to fit the cell — fusion
    /// falls back to two [`DecodedInstr::ProjInc`]s on overflow. Executes
    /// strictly in order: `dst1 ← src1[idx1]`, retain, `dst2 ← src2[idx2]`,
    /// retain — so `src2` may name `dst1`.
    ProjInc2 {
        /// First destination.
        dst1: Reg,
        /// First source object.
        src1: Reg,
        /// First field index.
        idx1: u16,
        /// Second destination.
        dst2: Reg,
        /// Second source object.
        src2: Reg,
        /// Second field index.
        idx2: u16,
    },
    /// Fused `Dec` × 4: four releases in one dispatch. The rc-opt pass's
    /// dec sinking stacks a block's releases back to back, so runs of
    /// four and more are common ([`DecodedInstr::Dec2`] pairs showed up
    /// adjacent in the `--pairs` histogram more often than any other
    /// fused/rc mix).
    Dec4 {
        /// First object released.
        a: Reg,
        /// Second object released.
        b: Reg,
        /// Third object released.
        c: Reg,
        /// Fourth object released.
        d: Reg,
    },
    /// Fused `Project` + `Inc` + `Project` + `Inc` + `Dec`: a pattern
    /// match peeling two constructor fields and immediately releasing the
    /// scrutinee (the `Cons(h, t)` arm's canonical shape). Field order as
    /// in [`DecodedInstr::ProjInc2`]; the release runs last, so `dec` may
    /// name `src1`/`src2` but not `dst1`/`dst2` in well-formed streams.
    ProjInc2Dec {
        /// First destination.
        dst1: Reg,
        /// First source object.
        src1: Reg,
        /// First field index.
        idx1: u16,
        /// Second destination.
        dst2: Reg,
        /// Second source object.
        src2: Reg,
        /// Second field index.
        idx2: u16,
        /// Object released after both projections.
        dec: Reg,
    },
}

// The whole point of the decoded form: every instruction is one compact,
// pointer-free cell. A grown variant breaks this at compile time.
const _: () = assert!(std::mem::size_of::<DecodedInstr>() <= 16);

impl DecodedInstr {
    /// The statistics class of this instruction.
    pub fn class(self) -> OpClass {
        match self {
            DecodedInstr::ConstInt { .. } | DecodedInstr::LpInt { .. } => OpClass::Const,
            DecodedInstr::LpBig { .. }
            | DecodedInstr::LpStr { .. }
            | DecodedInstr::Construct { .. } => OpClass::Alloc,
            DecodedInstr::GetLabel { .. } | DecodedInstr::Project { .. } => OpClass::Project,
            DecodedInstr::Pap { .. } | DecodedInstr::PapExtend { .. } => OpClass::Closure,
            DecodedInstr::Inc { .. } | DecodedInstr::Dec { .. } => OpClass::Rc,
            DecodedInstr::Call { .. } => OpClass::Call,
            DecodedInstr::CallBuiltin { .. } => OpClass::CallBuiltin,
            DecodedInstr::TailCall { .. } => OpClass::TailCall,
            DecodedInstr::Ret { .. } => OpClass::Ret,
            DecodedInstr::Jump { .. }
            | DecodedInstr::Branch { .. }
            | DecodedInstr::Switch { .. } => OpClass::Branch,
            DecodedInstr::Bin { .. }
            | DecodedInstr::Cmp { .. }
            | DecodedInstr::Select { .. }
            | DecodedInstr::Mask { .. } => OpClass::Arith,
            DecodedInstr::Move { .. } => OpClass::Move,
            DecodedInstr::GlobalLoad { .. } | DecodedInstr::GlobalStore { .. } => OpClass::Global,
            DecodedInstr::Trap => OpClass::Trap,
            DecodedInstr::CmpBr { .. } => OpClass::FusedCmpBr,
            DecodedInstr::ConstCmpBr { .. } => OpClass::FusedConstCmpBr,
            DecodedInstr::ConstBin { .. } => OpClass::FusedConstBin,
            DecodedInstr::BinRet { .. } => OpClass::FusedBinRet,
            DecodedInstr::MovRet { .. } => OpClass::FusedMovRet,
            DecodedInstr::ConstRet { .. } => OpClass::FusedConstRet,
            DecodedInstr::ProjInc { .. } => OpClass::FusedProjInc,
            DecodedInstr::CallBuiltinRet { .. } => OpClass::FusedCallBuiltinRet,
            DecodedInstr::ConstructRet { .. } => OpClass::FusedConstructRet,
            DecodedInstr::SwitchDense { .. } => OpClass::FusedSwitchDense,
            DecodedInstr::Dec2 { .. } => OpClass::FusedDec2,
            DecodedInstr::ProjInc2 { .. } => OpClass::FusedProjInc2,
            DecodedInstr::Dec4 { .. } => OpClass::FusedDec4,
            DecodedInstr::ProjInc2Dec { .. } => OpClass::FusedProjInc2Dec,
        }
    }
}

/// What the fusion pass did to a function (or, summed, to a program):
/// superinstructions emitted per kind, plus the net shrink of the stream.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FusionStats {
    /// `Cmp`+`Branch` pairs fused.
    pub cmp_br: u32,
    /// `ConstInt`+`Cmp`+`Branch` triples fused.
    pub const_cmp_br: u32,
    /// `ConstInt`+`Bin` pairs fused.
    pub const_bin: u32,
    /// `Bin`+`Ret` pairs fused.
    pub bin_ret: u32,
    /// `Move`+`Ret` pairs fused.
    pub mov_ret: u32,
    /// `LpInt`+`Ret` pairs fused.
    pub const_ret: u32,
    /// `Project`+`Inc` pairs fused.
    pub proj_inc: u32,
    /// `CallBuiltin`+`Ret` pairs fused.
    pub call_builtin_ret: u32,
    /// `Construct`+`Ret` pairs fused.
    pub construct_ret: u32,
    /// Dense-range `Switch` rewrites (same cell count, O(1) dispatch).
    pub switch_dense: u32,
    /// `Dec`+`Dec` pairs fused.
    pub dec2: u32,
    /// `Project`+`Inc`+`Project`+`Inc` quads fused.
    pub proj_inc2: u32,
    /// `Dec` quad runs fused.
    pub dec4: u32,
    /// `Project`+`Inc`+`Project`+`Inc`+`Dec` groups fused.
    pub proj_inc2_dec: u32,
    /// Original cells eliminated by fusion (static code shrink).
    pub cells_saved: u32,
}

impl FusionStats {
    /// Total superinstruction cells emitted.
    pub fn superinstructions(&self) -> u64 {
        u64::from(self.cmp_br)
            + u64::from(self.const_cmp_br)
            + u64::from(self.const_bin)
            + u64::from(self.bin_ret)
            + u64::from(self.mov_ret)
            + u64::from(self.const_ret)
            + u64::from(self.proj_inc)
            + u64::from(self.call_builtin_ret)
            + u64::from(self.construct_ret)
            + u64::from(self.switch_dense)
            + u64::from(self.dec2)
            + u64::from(self.proj_inc2)
            + u64::from(self.dec4)
            + u64::from(self.proj_inc2_dec)
    }

    /// Folds another function's statistics into this record.
    pub fn absorb(&mut self, other: &FusionStats) {
        self.cmp_br += other.cmp_br;
        self.const_cmp_br += other.const_cmp_br;
        self.const_bin += other.const_bin;
        self.bin_ret += other.bin_ret;
        self.mov_ret += other.mov_ret;
        self.const_ret += other.const_ret;
        self.proj_inc += other.proj_inc;
        self.call_builtin_ret += other.call_builtin_ret;
        self.construct_ret += other.construct_ret;
        self.switch_dense += other.switch_dense;
        self.dec2 += other.dec2;
        self.proj_inc2 += other.proj_inc2;
        self.dec4 += other.dec4;
        self.proj_inc2_dec += other.proj_inc2_dec;
        self.cells_saved += other.cells_saved;
    }
}

/// What the register-renumbering pass did (per function, or summed over a
/// program): register-file sizes before/after compaction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RenumberStats {
    /// Σ register-file sizes before compaction.
    pub regs_before: u64,
    /// Σ register-file sizes after compaction.
    pub regs_after: u64,
    /// Functions whose register file actually shrank.
    pub fns_compacted: u32,
}

impl RenumberStats {
    /// Folds another function's statistics into this record.
    pub fn absorb(&mut self, other: &RenumberStats) {
        self.regs_before += other.regs_before;
        self.regs_after += other.regs_after;
        self.fns_compacted += other.fns_compacted;
    }

    /// Register-file words eliminated by compaction.
    pub fn regs_saved(&self) -> u64 {
        self.regs_before.saturating_sub(self.regs_after)
    }
}

/// A function in decoded form: flat code plus its two side pools.
#[derive(Debug, Clone)]
pub struct DecodedFn {
    /// Source-level name.
    pub name: String,
    /// Number of parameters (passed in registers `0..arity`).
    pub arity: u16,
    /// Size of the register file. After renumbering
    /// ([`DecodeOptions::renumber`]) this is the *referenced* register
    /// count, not the compiler's maximum register id.
    pub n_regs: u16,
    /// The code.
    pub code: Vec<DecodedInstr>,
    /// Shared register-list pool (`Construct`/`Pap`/`Call`/… operands).
    pub args: Vec<Reg>,
    /// Shared switch-table pool: `(value, target)` pairs.
    pub cases: Vec<(i64, u32)>,
    /// Per-cell [`OpClass`] discriminants, parallel to `code` — the
    /// "decoded opcode" byte the threaded dispatcher indexes its handler
    /// table (and the statistics arrays) with.
    pub classes: Vec<u8>,
    /// This function's first slot in the program-wide inline-cache pool;
    /// a call site's global slot is `cache_base + its local cache id`.
    pub cache_base: u32,
    /// Number of inline-cache slots this function owns.
    pub cache_sites: u16,
}

impl DecodedFn {
    /// The registers of an [`ArgSlice`].
    pub fn arg_regs(&self, s: ArgSlice) -> &[Reg] {
        &self.args[s.range()]
    }

    /// Lowers one [`CompiledFn`].
    fn decode(f: &CompiledFn) -> DecodedFn {
        let mut d = DecodedFn {
            name: f.name.clone(),
            arity: f.arity,
            n_regs: f.n_regs,
            code: Vec::with_capacity(f.code.len()),
            args: Vec::new(),
            cases: Vec::new(),
            classes: Vec::new(),
            cache_base: 0,
            cache_sites: 0,
        };
        assert!(
            u32::try_from(f.code.len()).is_ok(),
            "@{}: function body too large to decode",
            f.name
        );
        // The frame-pool calling convention writes `arity` argument words
        // then resizes to `n_regs`; a malformed function would silently
        // truncate its arguments there, so reject it while decoding.
        assert!(
            f.arity <= f.n_regs,
            "@{}: arity {} exceeds register file size {}",
            f.name,
            f.arity,
            f.n_regs
        );
        for instr in &f.code {
            let decoded = d.decode_instr(instr);
            d.code.push(decoded);
        }
        d
    }

    /// Per-register read counts over the whole function (pool operand
    /// lists included). The fusion pass uses these to prove an intermediate
    /// register dead: a register read exactly once — by the instruction
    /// that swallows its def — can safely stop being written, whatever
    /// block structure or register reuse surrounds the pair.
    fn count_reads(&self) -> Vec<u32> {
        let mut reads = vec![0u32; self.n_regs as usize];
        for instr in &self.code {
            let mut singles: [Option<Reg>; 4] = [None, None, None, None];
            let mut slice: Option<ArgSlice> = None;
            match *instr {
                DecodedInstr::ConstInt { .. }
                | DecodedInstr::LpInt { .. }
                | DecodedInstr::LpBig { .. }
                | DecodedInstr::LpStr { .. }
                | DecodedInstr::Jump { .. }
                | DecodedInstr::GlobalLoad { .. }
                | DecodedInstr::ConstRet { .. }
                | DecodedInstr::Trap => {}
                DecodedInstr::GetLabel { src, .. }
                | DecodedInstr::Project { src, .. }
                | DecodedInstr::ProjInc { src, .. }
                | DecodedInstr::Inc { src }
                | DecodedInstr::Dec { src }
                | DecodedInstr::Ret { src }
                | DecodedInstr::MovRet { src }
                | DecodedInstr::Mask { src, .. }
                | DecodedInstr::Move { src, .. }
                | DecodedInstr::GlobalStore { src, .. } => singles[0] = Some(src),
                DecodedInstr::Construct { args, .. }
                | DecodedInstr::CallBuiltin { args, .. }
                | DecodedInstr::CallBuiltinRet { args, .. }
                | DecodedInstr::ConstructRet { args, .. } => slice = Some(args),
                DecodedInstr::Pap {
                    args_off, args_len, ..
                }
                | DecodedInstr::Call {
                    args_off, args_len, ..
                }
                | DecodedInstr::TailCall {
                    args_off, args_len, ..
                } => {
                    slice = Some(ArgSlice {
                        off: args_off,
                        len: args_len,
                    });
                }
                DecodedInstr::PapExtend { closure, args, .. } => {
                    singles[0] = Some(closure);
                    slice = Some(args);
                }
                DecodedInstr::Branch { cond, .. } => singles[0] = Some(cond),
                DecodedInstr::Switch { idx, .. } | DecodedInstr::SwitchDense { idx, .. } => {
                    singles[0] = Some(idx);
                }
                DecodedInstr::Bin { a, b, .. }
                | DecodedInstr::Cmp { a, b, .. }
                | DecodedInstr::BinRet { a, b, .. }
                | DecodedInstr::CmpBr { a, b, .. } => {
                    singles[0] = Some(a);
                    singles[1] = Some(b);
                }
                DecodedInstr::ConstCmpBr { a, .. } => singles[0] = Some(a),
                DecodedInstr::ConstBin { src, .. } => singles[0] = Some(src),
                DecodedInstr::Select { c, a, b, .. } => singles = [Some(c), Some(a), Some(b), None],
                DecodedInstr::Dec2 { a, b } => {
                    singles[0] = Some(a);
                    singles[1] = Some(b);
                }
                DecodedInstr::ProjInc2 { src1, src2, .. } => {
                    singles[0] = Some(src1);
                    singles[1] = Some(src2);
                }
                DecodedInstr::Dec4 { a, b, c, d } => {
                    singles = [Some(a), Some(b), Some(c), Some(d)];
                }
                DecodedInstr::ProjInc2Dec {
                    src1, src2, dec, ..
                } => {
                    singles[0] = Some(src1);
                    singles[1] = Some(src2);
                    singles[2] = Some(dec);
                }
            }
            // Malformed code may reference registers beyond `n_regs`
            // (decodable; a runtime failure only if executed) — grow the
            // table rather than panic during decode.
            let bump = |reads: &mut Vec<u32>, r: Reg| {
                let i = r.0 as usize;
                if i >= reads.len() {
                    reads.resize(i + 1, 0);
                }
                reads[i] += 1;
            };
            for r in singles.into_iter().flatten() {
                bump(&mut reads, r);
            }
            if let Some(s) = slice {
                for &r in self.arg_regs(s) {
                    bump(&mut reads, r);
                }
            }
        }
        reads
    }

    /// Whether any jump target points past the end of the code (legal to
    /// decode; a recoverable error if executed).
    fn has_out_of_range_target(&self) -> bool {
        let n = self.code.len() as u32;
        self.code.iter().any(|instr| match *instr {
            DecodedInstr::Jump { target } => target >= n,
            DecodedInstr::Branch { then_t, else_t, .. } => then_t >= n || else_t >= n,
            DecodedInstr::Switch { cases, default, .. } => {
                default >= n || self.cases[cases.range()].iter().any(|&(_, t)| t >= n)
            }
            _ => false,
        })
    }

    /// Which instruction indices are jump targets. Control can only enter
    /// the *first* cell of a fused group, so fusion bails when a would-be
    /// swallowed instruction appears here. Public so fusion-tuning tools
    /// (`examples/dump_decoded.rs --pairs`) can apply the same fusibility
    /// filter the pass itself uses.
    pub fn jump_targets(&self) -> Vec<bool> {
        let mut targets = vec![false; self.code.len()];
        for instr in &self.code {
            match *instr {
                DecodedInstr::Jump { target } => targets[target as usize] = true,
                DecodedInstr::Branch { then_t, else_t, .. }
                | DecodedInstr::CmpBr { then_t, else_t, .. }
                | DecodedInstr::ConstCmpBr { then_t, else_t, .. } => {
                    targets[then_t as usize] = true;
                    targets[else_t as usize] = true;
                }
                DecodedInstr::Switch { cases, default, .. }
                | DecodedInstr::SwitchDense { cases, default, .. } => {
                    targets[default as usize] = true;
                    for &(_, t) in &self.cases[cases.range()] {
                        targets[t as usize] = true;
                    }
                }
                _ => {}
            }
        }
        targets
    }

    /// The peephole fusion pass: combines adjacent cells into the
    /// superinstructions documented at module level, rewrites contiguous
    /// switches to dense dispatch, and remaps every jump target over the
    /// shortened stream. Swallowed pool runs stay in the pools (they are
    /// small and decode happens once per program).
    fn fuse(&mut self) -> FusionStats {
        let mut stats = FusionStats::default();
        // A malformed function can carry out-of-range jump targets; the
        // unfused VM reports those as a recoverable "pc out of range"
        // error when (and if) they execute. Skip fusion rather than
        // introduce a decode-time panic for them.
        if self.has_out_of_range_target() {
            return stats;
        }
        let reads = self.count_reads();
        let targets = self.jump_targets();
        let old = std::mem::take(&mut self.code);
        let mut map = vec![0u32; old.len()];
        let mut code: Vec<DecodedInstr> = Vec::with_capacity(old.len());
        let mut i = 0usize;
        while i < old.len() {
            let ni = u32::try_from(code.len()).expect("fused stream too large");
            let (cell, consumed) = self
                .try_fuse(&old, i, &targets, &reads)
                .unwrap_or((old[i], 1));
            // Swallowed cells map to the fused cell; nothing jumps at them
            // (guaranteed by the `targets` bail), this is belt and braces.
            for slot in &mut map[i..i + consumed] {
                *slot = ni;
            }
            match cell {
                DecodedInstr::CmpBr { .. } => stats.cmp_br += 1,
                DecodedInstr::ConstCmpBr { .. } => stats.const_cmp_br += 1,
                DecodedInstr::ConstBin { .. } => stats.const_bin += 1,
                DecodedInstr::BinRet { .. } => stats.bin_ret += 1,
                DecodedInstr::MovRet { .. } => stats.mov_ret += 1,
                DecodedInstr::ConstRet { .. } => stats.const_ret += 1,
                DecodedInstr::ProjInc { .. } => stats.proj_inc += 1,
                DecodedInstr::CallBuiltinRet { .. } => stats.call_builtin_ret += 1,
                DecodedInstr::ConstructRet { .. } => stats.construct_ret += 1,
                DecodedInstr::SwitchDense { .. } => stats.switch_dense += 1,
                DecodedInstr::Dec2 { .. } => stats.dec2 += 1,
                DecodedInstr::ProjInc2 { .. } => stats.proj_inc2 += 1,
                DecodedInstr::Dec4 { .. } => stats.dec4 += 1,
                DecodedInstr::ProjInc2Dec { .. } => stats.proj_inc2_dec += 1,
                _ => {}
            }
            stats.cells_saved += consumed as u32 - 1;
            code.push(cell);
            i += consumed;
        }
        self.code = code;
        // Remap jump targets onto the shortened stream. Case-pool runs are
        // remapped through the one instruction referencing them (decode and
        // `densify` both append a fresh run per switch, so no run is shared
        // or visited twice).
        for instr in &mut self.code {
            match instr {
                DecodedInstr::Jump { target } => *target = map[*target as usize],
                DecodedInstr::Branch { then_t, else_t, .. }
                | DecodedInstr::CmpBr { then_t, else_t, .. }
                | DecodedInstr::ConstCmpBr { then_t, else_t, .. } => {
                    *then_t = map[*then_t as usize];
                    *else_t = map[*else_t as usize];
                }
                DecodedInstr::Switch { cases, default, .. }
                | DecodedInstr::SwitchDense { cases, default, .. } => {
                    *default = map[*default as usize];
                    for (_, t) in &mut self.cases[cases.range()] {
                        *t = map[*t as usize];
                    }
                }
                _ => {}
            }
        }
        stats
    }

    /// Tries to fuse the instruction group starting at `i` of the unfused
    /// stream `old`. Returns the superinstruction and how many original
    /// cells it consumes.
    fn try_fuse(
        &mut self,
        old: &[DecodedInstr],
        i: usize,
        targets: &[bool],
        reads: &[u32],
    ) -> Option<(DecodedInstr, usize)> {
        // "Dead": read exactly once in the whole function — by the
        // consuming instruction of the group under inspection. (`get`:
        // malformed code may name registers the read table never saw.)
        let dead = |r: Reg| reads.get(r.0 as usize).copied().unwrap_or(0) == 1;
        let next = old.get(i + 1).copied();
        let next_free = i + 1 < old.len() && !targets[i + 1];
        match old[i] {
            DecodedInstr::ConstInt { dst: c, v } if dead(c) => {
                // Triple: ConstInt + Cmp + Branch → ConstCmpBr.
                if i + 2 < old.len() && !targets[i + 1] && !targets[i + 2] {
                    if let (
                        DecodedInstr::Cmp { pred, dst, a, b },
                        DecodedInstr::Branch {
                            cond,
                            then_t,
                            else_t,
                        },
                    ) = (old[i + 1], old[i + 2])
                    {
                        if cond == dst && dead(dst) && (a == c) != (b == c) {
                            if let Ok(imm) = i32::try_from(v) {
                                // Keep the register operand on the left,
                                // swapping the predicate when the constant
                                // was the left operand.
                                let (pred, a) = if b == c {
                                    (pred, a)
                                } else {
                                    (pred.swapped(), b)
                                };
                                return Some((
                                    DecodedInstr::ConstCmpBr {
                                        pred,
                                        a,
                                        imm,
                                        then_t,
                                        else_t,
                                    },
                                    3,
                                ));
                            }
                        }
                    }
                }
                // Pair: ConstInt + Bin → ConstBin.
                if next_free {
                    if let Some(DecodedInstr::Bin { op, dst, a, b }) = next {
                        if (a == c) != (b == c) {
                            let (imm_rhs, src) = if b == c { (true, a) } else { (false, b) };
                            return Some((
                                DecodedInstr::ConstBin {
                                    op,
                                    imm_rhs,
                                    dst,
                                    src,
                                    imm: v,
                                },
                                2,
                            ));
                        }
                    }
                }
                None
            }
            DecodedInstr::Cmp { pred, dst, a, b } if next_free && dead(dst) => match next {
                Some(DecodedInstr::Branch {
                    cond,
                    then_t,
                    else_t,
                }) if cond == dst => Some((
                    DecodedInstr::CmpBr {
                        pred,
                        a,
                        b,
                        then_t,
                        else_t,
                    },
                    2,
                )),
                _ => None,
            },
            // For every `*Ret` tail shape the group ends the frame's life:
            // registers do not survive a return, so the swallowed def needs
            // no dead-register proof (unlike the branch-ending fusions
            // above, whose targets could observe the eliminated write).
            DecodedInstr::Bin { op, dst, a, b } if next_free => match next {
                Some(DecodedInstr::Ret { src }) if src == dst => {
                    Some((DecodedInstr::BinRet { op, a, b }, 2))
                }
                _ => None,
            },
            DecodedInstr::Move { dst, src } if next_free => match next {
                Some(DecodedInstr::Ret { src: ret }) if ret == dst => {
                    Some((DecodedInstr::MovRet { src }, 2))
                }
                _ => None,
            },
            DecodedInstr::LpInt { dst, v } if next_free => match next {
                Some(DecodedInstr::Ret { src }) if src == dst => {
                    Some((DecodedInstr::ConstRet { v }, 2))
                }
                _ => None,
            },
            // Project + Inc keeps both effects (the projected value is
            // still written), so no dead-register requirement applies.
            // When *two* project-and-retain groups sit back to back (the
            // shape pattern matches compile to when peeling consecutive
            // constructor fields), fuse all four into one quad cell.
            DecodedInstr::Project { dst, src, idx } if next_free => match next {
                Some(DecodedInstr::Inc { src: inced }) if inced == dst => {
                    if i + 3 < old.len() && !targets[i + 2] && !targets[i + 3] {
                        if let (
                            DecodedInstr::Project {
                                dst: dst2,
                                src: src2,
                                idx: idx2,
                            },
                            DecodedInstr::Inc { src: inced2 },
                        ) = (old[i + 2], old[i + 3])
                        {
                            if inced2 == dst2 {
                                if let (Ok(idx1), Ok(idx2)) =
                                    (u16::try_from(idx), u16::try_from(idx2))
                                {
                                    // A trailing release (the scrutinee of
                                    // the match whose fields were just
                                    // peeled) rides along in the same cell.
                                    if i + 4 < old.len() && !targets[i + 4] {
                                        if let DecodedInstr::Dec { src: rel } = old[i + 4] {
                                            return Some((
                                                DecodedInstr::ProjInc2Dec {
                                                    dst1: dst,
                                                    src1: src,
                                                    idx1,
                                                    dst2,
                                                    src2,
                                                    idx2,
                                                    dec: rel,
                                                },
                                                5,
                                            ));
                                        }
                                    }
                                    return Some((
                                        DecodedInstr::ProjInc2 {
                                            dst1: dst,
                                            src1: src,
                                            idx1,
                                            dst2,
                                            src2,
                                            idx2,
                                        },
                                        4,
                                    ));
                                }
                            }
                        }
                    }
                    Some((DecodedInstr::ProjInc { dst, src, idx }, 2))
                }
                _ => None,
            },
            // Releases in one dispatch; pure effects, no liveness
            // concerns. RC-heavy code drops a constructor's fields in
            // bursts (and rc-opt's dec sinking stacks them deeper), so
            // fuse runs of four when the whole run is fusible, else two.
            DecodedInstr::Dec { src: a } if next_free => match next {
                Some(DecodedInstr::Dec { src: b }) => {
                    if i + 3 < old.len() && !targets[i + 2] && !targets[i + 3] {
                        if let (DecodedInstr::Dec { src: c }, DecodedInstr::Dec { src: d }) =
                            (old[i + 2], old[i + 3])
                        {
                            return Some((DecodedInstr::Dec4 { a, b, c, d }, 4));
                        }
                    }
                    Some((DecodedInstr::Dec2 { a, b }, 2))
                }
                _ => None,
            },
            DecodedInstr::CallBuiltin {
                dst,
                builtin,
                args,
                mask,
            } if next_free => match next {
                Some(DecodedInstr::Ret { src }) if src == dst => Some((
                    DecodedInstr::CallBuiltinRet {
                        builtin,
                        args,
                        mask,
                    },
                    2,
                )),
                _ => None,
            },
            DecodedInstr::Construct { dst, tag, args } if next_free => match next {
                Some(DecodedInstr::Ret { src }) if src == dst => {
                    Some((DecodedInstr::ConstructRet { tag, args }, 2))
                }
                _ => None,
            },
            DecodedInstr::Switch {
                idx,
                cases,
                default,
            } => self.densify(idx, cases, default).map(|cell| (cell, 1)),
            _ => None,
        }
    }

    /// Rewrites a `Switch` whose case keys form a contiguous range into
    /// [`DecodedInstr::SwitchDense`], appending a key-sorted copy of the
    /// run to the case pool. Returns `None` — keep the scanning `Switch` —
    /// on gaps, duplicate keys, or fewer than two cases.
    fn densify(&mut self, idx: Reg, cases: ArgSlice, default: u32) -> Option<DecodedInstr> {
        let run = &self.cases[cases.range()];
        if run.len() < 2 {
            return None;
        }
        let min = run.iter().map(|&(v, _)| v).min()?;
        let max = run.iter().map(|&(v, _)| v).max()?;
        // Span == len - 1 with no duplicates ⇔ keys are contiguous.
        if max.checked_sub(min) != Some(run.len() as i64 - 1) {
            return None;
        }
        let mut sorted = run.to_vec();
        sorted.sort_by_key(|&(v, _)| v);
        if sorted.windows(2).any(|w| w[0].0 == w[1].0) {
            return None;
        }
        let off = u32::try_from(self.cases.len()).expect("case pool exhausted");
        self.cases.extend_from_slice(&sorted);
        Some(DecodedInstr::SwitchDense {
            idx,
            cases: ArgSlice {
                off,
                len: cases.len,
            },
            default,
        })
    }

    /// Applies `f` to every register operand of every instruction,
    /// including the pool runs they reference. Orphaned pool runs (left
    /// behind by fusion-swallowed cells) are not visited: each live run is
    /// reached through the single instruction referencing it.
    fn for_each_reg_mut(&mut self, mut f: impl FnMut(&mut Reg)) {
        for i in 0..self.code.len() {
            let mut instr = self.code[i];
            let mut slice: Option<ArgSlice> = None;
            match &mut instr {
                DecodedInstr::ConstInt { dst, .. }
                | DecodedInstr::LpInt { dst, .. }
                | DecodedInstr::LpBig { dst, .. }
                | DecodedInstr::LpStr { dst, .. }
                | DecodedInstr::GlobalLoad { dst, .. } => f(dst),
                DecodedInstr::Construct { dst, args, .. } => {
                    f(dst);
                    slice = Some(*args);
                }
                DecodedInstr::GetLabel { dst, src }
                | DecodedInstr::Project { dst, src, .. }
                | DecodedInstr::ProjInc { dst, src, .. }
                | DecodedInstr::Move { dst, src }
                | DecodedInstr::Mask { dst, src, .. }
                | DecodedInstr::ConstBin { dst, src, .. } => {
                    f(dst);
                    f(src);
                }
                DecodedInstr::Pap {
                    dst,
                    args_off,
                    args_len,
                    ..
                } => {
                    f(dst);
                    slice = Some(ArgSlice {
                        off: *args_off,
                        len: *args_len,
                    });
                }
                DecodedInstr::Call {
                    dst,
                    args_off,
                    args_len,
                    ..
                } => {
                    f(dst);
                    slice = Some(ArgSlice {
                        off: *args_off,
                        len: *args_len,
                    });
                }
                DecodedInstr::TailCall {
                    args_off, args_len, ..
                } => {
                    slice = Some(ArgSlice {
                        off: *args_off,
                        len: *args_len,
                    });
                }
                DecodedInstr::PapExtend {
                    dst, closure, args, ..
                } => {
                    f(dst);
                    f(closure);
                    slice = Some(*args);
                }
                DecodedInstr::CallBuiltin { dst, args, .. } => {
                    f(dst);
                    slice = Some(*args);
                }
                DecodedInstr::CallBuiltinRet { args, .. }
                | DecodedInstr::ConstructRet { args, .. } => slice = Some(*args),
                DecodedInstr::Inc { src }
                | DecodedInstr::Dec { src }
                | DecodedInstr::Ret { src }
                | DecodedInstr::MovRet { src }
                | DecodedInstr::GlobalStore { src, .. } => f(src),
                DecodedInstr::Jump { .. } | DecodedInstr::Trap | DecodedInstr::ConstRet { .. } => {}
                DecodedInstr::Branch { cond, .. } => f(cond),
                DecodedInstr::Switch { idx, .. } | DecodedInstr::SwitchDense { idx, .. } => f(idx),
                DecodedInstr::Bin { dst, a, b, .. } | DecodedInstr::Cmp { dst, a, b, .. } => {
                    f(dst);
                    f(a);
                    f(b);
                }
                DecodedInstr::Select { dst, c, a, b } => {
                    f(dst);
                    f(c);
                    f(a);
                    f(b);
                }
                DecodedInstr::BinRet { a, b, .. } | DecodedInstr::CmpBr { a, b, .. } => {
                    f(a);
                    f(b);
                }
                DecodedInstr::ConstCmpBr { a, .. } => f(a),
                DecodedInstr::Dec2 { a, b } => {
                    f(a);
                    f(b);
                }
                DecodedInstr::ProjInc2 {
                    dst1,
                    src1,
                    dst2,
                    src2,
                    ..
                } => {
                    f(dst1);
                    f(src1);
                    f(dst2);
                    f(src2);
                }
                DecodedInstr::Dec4 { a, b, c, d } => {
                    f(a);
                    f(b);
                    f(c);
                    f(d);
                }
                DecodedInstr::ProjInc2Dec {
                    dst1,
                    src1,
                    dst2,
                    src2,
                    dec,
                    ..
                } => {
                    f(dst1);
                    f(src1);
                    f(dst2);
                    f(src2);
                    f(dec);
                }
            }
            self.code[i] = instr;
            if let Some(s) = slice {
                for r in &mut self.args[s.range()] {
                    f(r);
                }
            }
        }
    }

    /// Decode-time register renumbering: compacts the registers this
    /// function actually references onto a dense prefix (parameters keep
    /// `0..arity` — the frame-pool calling convention depends on it),
    /// shrinking the pooled frame's register file. Post-fusion streams
    /// profit most: every register whose only read was swallowed by a
    /// superinstruction stops occupying a frame word.
    fn renumber(&mut self) -> RenumberStats {
        let n = self.n_regs as usize;
        let mut stats = RenumberStats {
            regs_before: n as u64,
            regs_after: n as u64,
            fns_compacted: 0,
        };
        let mut used = vec![false; n];
        let mut out_of_range = false;
        self.for_each_reg_mut(|r| match used.get_mut(r.0 as usize) {
            Some(u) => *u = true,
            None => out_of_range = true,
        });
        // Malformed code may reference registers beyond `n_regs` — a
        // recoverable runtime error if executed. Renumbering would
        // silently legalise such an access, so leave the function alone.
        if out_of_range {
            return stats;
        }
        // Parameters are live on entry whether or not the body reads them
        // (`decode` asserts `arity <= n_regs`).
        for u in used.iter_mut().take(self.arity as usize) {
            *u = true;
        }
        let live = used.iter().filter(|&&u| u).count();
        if live == n {
            return stats;
        }
        let mut map = vec![Reg(0); n];
        let mut next: u16 = 0;
        for (i, &u) in used.iter().enumerate() {
            if u {
                map[i] = Reg(next);
                next += 1;
            }
        }
        self.for_each_reg_mut(|r| *r = map[r.0 as usize]);
        self.n_regs = next;
        stats.regs_after = u64::from(next);
        stats.fns_compacted = 1;
        stats
    }

    /// Assigns function-local inline-cache slot ids to the call-shaped
    /// cells ([`DecodedInstr::Call`]/[`DecodedInstr::PapExtend`]).
    /// Tail-call cells are deliberately left at [`NO_CACHE`]: a
    /// `TailCall`'s target is a static function index, so all a hit ever
    /// bought was skipping one bounds-checked `fns` lookup and an arity
    /// compare — on `binarytrees` the tail sites hit 94% of the time for
    /// zero measurable payoff, leaving the probe itself as pure overhead
    /// (and each skipped site also saves a pool slot per VM instance).
    /// Sites past `u16::MAX - 1` keep the [`NO_CACHE`] sentinel and
    /// execute uncached.
    fn assign_cache_slots(&mut self) {
        let mut next: u32 = 0;
        for instr in &mut self.code {
            if let DecodedInstr::Call { cache, .. } | DecodedInstr::PapExtend { cache, .. } = instr
            {
                *cache = if next < u32::from(NO_CACHE) {
                    next as u16
                } else {
                    NO_CACHE
                };
                next = next.saturating_add(1);
            }
        }
        self.cache_sites = next.min(u32::from(NO_CACHE)) as u16;
    }

    fn intern_args(&mut self, regs: &[Reg]) -> ArgSlice {
        let off = u32::try_from(self.args.len()).expect("argument pool exhausted");
        let len = u16::try_from(regs.len()).expect("argument list too long");
        self.args.extend_from_slice(regs);
        ArgSlice { off, len }
    }

    fn decode_instr(&mut self, instr: &Instr) -> DecodedInstr {
        let t32 = |t: usize| u32::try_from(t).expect("jump target out of range");
        match *instr {
            Instr::ConstInt { dst, v } => DecodedInstr::ConstInt { dst, v },
            Instr::LpInt { dst, v } => DecodedInstr::LpInt { dst, v },
            Instr::LpBig { dst, idx } => DecodedInstr::LpBig { dst, idx },
            Instr::LpStr { dst, idx } => DecodedInstr::LpStr { dst, idx },
            Instr::Construct { dst, tag, ref args } => DecodedInstr::Construct {
                dst,
                tag,
                args: self.intern_args(args),
            },
            Instr::GetLabel { dst, src } => DecodedInstr::GetLabel { dst, src },
            Instr::Project { dst, src, idx } => DecodedInstr::Project { dst, src, idx },
            Instr::Pap {
                dst,
                func,
                arity,
                ref args,
            } => {
                let s = self.intern_args(args);
                DecodedInstr::Pap {
                    dst,
                    func,
                    arity,
                    args_off: s.off,
                    args_len: s.len,
                }
            }
            Instr::PapExtend {
                dst,
                closure,
                ref args,
            } => DecodedInstr::PapExtend {
                dst,
                closure,
                args: self.intern_args(args),
                cache: NO_CACHE,
            },
            Instr::Inc { src } => DecodedInstr::Inc { src },
            Instr::Dec { src } => DecodedInstr::Dec { src },
            Instr::Call {
                dst,
                func,
                ref args,
            } => {
                let s = self.intern_args(args);
                DecodedInstr::Call {
                    dst,
                    func,
                    args_off: s.off,
                    args_len: s.len,
                    cache: NO_CACHE,
                }
            }
            Instr::CallBuiltin {
                dst,
                builtin,
                ref args,
                mask,
            } => DecodedInstr::CallBuiltin {
                dst,
                builtin,
                args: self.intern_args(args),
                mask,
            },
            Instr::TailCall { func, ref args } => {
                let s = self.intern_args(args);
                DecodedInstr::TailCall {
                    func,
                    args_off: s.off,
                    args_len: s.len,
                    cache: NO_CACHE,
                }
            }
            Instr::Ret { src } => DecodedInstr::Ret { src },
            Instr::Jump { target } => DecodedInstr::Jump {
                target: t32(target),
            },
            Instr::Branch {
                cond,
                then_t,
                else_t,
            } => DecodedInstr::Branch {
                cond,
                then_t: t32(then_t),
                else_t: t32(else_t),
            },
            Instr::Switch {
                idx,
                ref cases,
                default,
            } => {
                let off = u32::try_from(self.cases.len()).expect("case pool exhausted");
                let len = u16::try_from(cases.len()).expect("switch too wide");
                self.cases.extend(cases.iter().map(|&(v, t)| (v, t32(t))));
                DecodedInstr::Switch {
                    idx,
                    cases: ArgSlice { off, len },
                    default: t32(default),
                }
            }
            Instr::Bin { op, dst, a, b } => DecodedInstr::Bin { op, dst, a, b },
            Instr::Cmp { pred, dst, a, b } => DecodedInstr::Cmp { pred, dst, a, b },
            Instr::Select { dst, c, a, b } => DecodedInstr::Select { dst, c, a, b },
            Instr::Mask { dst, src, mask } => DecodedInstr::Mask { dst, src, mask },
            Instr::Move { dst, src } => DecodedInstr::Move { dst, src },
            Instr::GlobalLoad { dst, idx } => DecodedInstr::GlobalLoad { dst, idx },
            Instr::GlobalStore { idx, src } => DecodedInstr::GlobalStore { idx, src },
            Instr::Trap => DecodedInstr::Trap,
        }
    }

    /// Reconstructs the enum form of instruction `i` — the inverse of
    /// decoding, used by the round-trip tests and for disassembly.
    ///
    /// # Panics
    ///
    /// Panics on superinstructions, which have no single enum counterpart:
    /// encoding is defined on unfused streams ([`DecodeOptions::no_fuse`]).
    pub fn encode(&self, i: usize) -> Instr {
        let regs = |s: ArgSlice| self.arg_regs(s).to_vec();
        match self.code[i] {
            DecodedInstr::ConstInt { dst, v } => Instr::ConstInt { dst, v },
            DecodedInstr::LpInt { dst, v } => Instr::LpInt { dst, v },
            DecodedInstr::LpBig { dst, idx } => Instr::LpBig { dst, idx },
            DecodedInstr::LpStr { dst, idx } => Instr::LpStr { dst, idx },
            DecodedInstr::Construct { dst, tag, args } => Instr::Construct {
                dst,
                tag,
                args: regs(args),
            },
            DecodedInstr::GetLabel { dst, src } => Instr::GetLabel { dst, src },
            DecodedInstr::Project { dst, src, idx } => Instr::Project { dst, src, idx },
            DecodedInstr::Pap {
                dst,
                func,
                arity,
                args_off,
                args_len,
            } => Instr::Pap {
                dst,
                func,
                arity,
                args: regs(ArgSlice {
                    off: args_off,
                    len: args_len,
                }),
            },
            DecodedInstr::PapExtend {
                dst, closure, args, ..
            } => Instr::PapExtend {
                dst,
                closure,
                args: regs(args),
            },
            DecodedInstr::Inc { src } => Instr::Inc { src },
            DecodedInstr::Dec { src } => Instr::Dec { src },
            DecodedInstr::Call {
                dst,
                func,
                args_off,
                args_len,
                ..
            } => Instr::Call {
                dst,
                func,
                args: regs(ArgSlice {
                    off: args_off,
                    len: args_len,
                }),
            },
            DecodedInstr::CallBuiltin {
                dst,
                builtin,
                args,
                mask,
            } => Instr::CallBuiltin {
                dst,
                builtin,
                args: regs(args),
                mask,
            },
            DecodedInstr::TailCall {
                func,
                args_off,
                args_len,
                ..
            } => Instr::TailCall {
                func,
                args: regs(ArgSlice {
                    off: args_off,
                    len: args_len,
                }),
            },
            DecodedInstr::Ret { src } => Instr::Ret { src },
            DecodedInstr::Jump { target } => Instr::Jump {
                target: target as usize,
            },
            DecodedInstr::Branch {
                cond,
                then_t,
                else_t,
            } => Instr::Branch {
                cond,
                then_t: then_t as usize,
                else_t: else_t as usize,
            },
            DecodedInstr::Switch {
                idx,
                cases,
                default,
            } => Instr::Switch {
                idx,
                cases: self.cases[cases.range()]
                    .iter()
                    .map(|&(v, t)| (v, t as usize))
                    .collect(),
                default: default as usize,
            },
            DecodedInstr::Bin { op, dst, a, b } => Instr::Bin { op, dst, a, b },
            DecodedInstr::Cmp { pred, dst, a, b } => Instr::Cmp { pred, dst, a, b },
            DecodedInstr::Select { dst, c, a, b } => Instr::Select { dst, c, a, b },
            DecodedInstr::Mask { dst, src, mask } => Instr::Mask { dst, src, mask },
            DecodedInstr::Move { dst, src } => Instr::Move { dst, src },
            DecodedInstr::GlobalLoad { dst, idx } => Instr::GlobalLoad { dst, idx },
            DecodedInstr::GlobalStore { idx, src } => Instr::GlobalStore { idx, src },
            DecodedInstr::Trap => Instr::Trap,
            DecodedInstr::CmpBr { .. }
            | DecodedInstr::ConstCmpBr { .. }
            | DecodedInstr::ConstBin { .. }
            | DecodedInstr::BinRet { .. }
            | DecodedInstr::MovRet { .. }
            | DecodedInstr::ConstRet { .. }
            | DecodedInstr::ProjInc { .. }
            | DecodedInstr::CallBuiltinRet { .. }
            | DecodedInstr::ConstructRet { .. }
            | DecodedInstr::SwitchDense { .. }
            | DecodedInstr::Dec2 { .. }
            | DecodedInstr::ProjInc2 { .. }
            | DecodedInstr::Dec4 { .. }
            | DecodedInstr::ProjInc2Dec { .. } => panic!(
                "cannot encode superinstruction {:?}; decode with fusion disabled",
                self.code[i]
            ),
        }
    }
}

/// A whole program in decoded form. Owns copies of the constant pools so
/// it is self-contained (a [`CompiledProgram`] can be dropped after
/// decoding).
#[derive(Debug, Clone, Default)]
pub struct DecodedProgram {
    /// Functions; closure [`lssa_rt::FuncId`]s index into this.
    pub fns: Vec<DecodedFn>,
    /// Big-integer constant pool.
    pub big_pool: Vec<Nat>,
    /// String constant pool.
    pub str_pool: Vec<String>,
    /// Global slot names.
    pub globals: Vec<String>,
    /// What the fusion pass did, summed over all functions (all zeros for
    /// an unfused decode).
    pub fusion: FusionStats,
    /// What the register-renumbering pass did, summed over all functions
    /// (all zeros when [`DecodeOptions::renumber`] is off).
    pub renumber: RenumberStats,
    /// Total inline-cache slots across all functions (sizes the VM's
    /// per-instance cache pool).
    pub cache_slots: u32,
}

impl DecodedProgram {
    /// Looks up a function index by name.
    pub fn fn_index(&self, name: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.name == name)
    }
}

/// Lowers a compiled program to the decoded execution form under the given
/// options. Linear in code size; done once per program, not once per
/// executed instruction (see [`CompiledProgram::decoded`] for the memoized
/// entry point).
pub fn decode_program_with(program: &CompiledProgram, opts: DecodeOptions) -> DecodedProgram {
    let mut fusion = FusionStats::default();
    let mut renumber = RenumberStats::default();
    let mut cache_slots: u32 = 0;
    let fns = program
        .fns
        .iter()
        .map(|f| {
            let mut d = DecodedFn::decode(f);
            if opts.fuse {
                fusion.absorb(&d.fuse());
            }
            if opts.renumber {
                renumber.absorb(&d.renumber());
            }
            d.assign_cache_slots();
            d.cache_base = cache_slots;
            cache_slots = cache_slots
                .checked_add(u32::from(d.cache_sites))
                .expect("inline-cache pool exhausted");
            d.classes = d.code.iter().map(|i| i.class() as u8).collect();
            d
        })
        .collect();
    DecodedProgram {
        fns,
        big_pool: program.big_pool.clone(),
        str_pool: program.str_pool.clone(),
        globals: program.globals.clone(),
        fusion,
        renumber,
        cache_slots,
    }
}

/// [`decode_program_with`] under the default options (fusion on).
pub fn decode_program(program: &CompiledProgram) -> DecodedProgram {
    decode_program_with(program, DecodeOptions::default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoded_instr_is_compact() {
        assert!(std::mem::size_of::<DecodedInstr>() <= 16);
        // The enum interchange form is strictly wider (it carries `Vec`s).
        assert!(std::mem::size_of::<DecodedInstr>() < std::mem::size_of::<Instr>());
    }

    #[test]
    fn arg_slices_share_one_pool() {
        let f = CompiledFn {
            name: "f".into(),
            arity: 3,
            n_regs: 4,
            code: vec![
                Instr::Construct {
                    dst: Reg(3),
                    tag: 1,
                    args: vec![Reg(0), Reg(1)],
                },
                Instr::Call {
                    dst: Reg(3),
                    func: 0,
                    args: vec![Reg(2), Reg(3), Reg(0)],
                },
                Instr::Ret { src: Reg(3) },
            ],
        };
        let d = DecodedFn::decode(&f);
        assert_eq!(d.args.len(), 5, "both lists live in the one pool");
        let DecodedInstr::Construct { args, .. } = d.code[0] else {
            panic!("expected construct");
        };
        assert_eq!(d.arg_regs(args), &[Reg(0), Reg(1)]);
        let DecodedInstr::Call {
            args_off, args_len, ..
        } = d.code[1]
        else {
            panic!("expected call");
        };
        assert_eq!(
            d.arg_regs(ArgSlice {
                off: args_off,
                len: args_len
            }),
            &[Reg(2), Reg(3), Reg(0)]
        );
    }

    #[test]
    fn switch_tables_round_trip_through_case_pool() {
        let f = CompiledFn {
            name: "f".into(),
            arity: 1,
            n_regs: 1,
            code: vec![
                Instr::Switch {
                    idx: Reg(0),
                    cases: vec![(0, 2), (5, 3)],
                    default: 4,
                },
                Instr::Trap,
                Instr::Ret { src: Reg(0) },
                Instr::Ret { src: Reg(0) },
                Instr::Ret { src: Reg(0) },
            ],
        };
        let d = DecodedFn::decode(&f);
        for (i, original) in f.code.iter().enumerate() {
            assert_eq!(&d.encode(i), original, "instruction {i}");
        }
    }

    #[test]
    fn op_classes_cover_every_instruction() {
        // `ALL` must agree with the discriminants used to index stats.
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
        // Everything from the first fused class on is fused; nothing before.
        let first_fused = OpClass::FusedCmpBr as usize;
        for c in OpClass::ALL {
            assert_eq!(c.is_fused(), c as usize >= first_fused, "{}", c.name());
        }
    }

    #[test]
    fn tail_call_cells_get_no_cache_slot() {
        // Only `Call`/`PapExtend` sites earn inline-cache slots; tail
        // calls keep the sentinel and consume no pool space.
        let p = CompiledProgram {
            fns: vec![CompiledFn {
                name: "f".into(),
                arity: 1,
                n_regs: 3,
                code: vec![
                    Instr::Call {
                        dst: Reg(1),
                        func: 0,
                        args: vec![Reg(0)],
                    },
                    Instr::PapExtend {
                        dst: Reg(2),
                        closure: Reg(1),
                        args: vec![Reg(0)],
                    },
                    Instr::TailCall {
                        func: 0,
                        args: vec![Reg(2)],
                    },
                ],
            }],
            ..CompiledProgram::default()
        };
        let d = decode_program_with(&p, DecodeOptions::fused());
        let f = &d.fns[0];
        let (mut call, mut pap, mut tail) = (None, None, None);
        for i in &f.code {
            match *i {
                DecodedInstr::Call { cache, .. } => call = Some(cache),
                DecodedInstr::PapExtend { cache, .. } => pap = Some(cache),
                DecodedInstr::TailCall { cache, .. } => tail = Some(cache),
                _ => {}
            }
        }
        assert_eq!(call, Some(0));
        assert_eq!(pap, Some(1));
        assert_eq!(tail, Some(NO_CACHE), "tail sites must keep the sentinel");
        assert_eq!(f.cache_sites, 2, "tail site must not consume a pool slot");
        assert_eq!(d.cache_slots, 2);
    }

    // ---- fusion pass ----

    fn fuse_one(arity: u16, n_regs: u16, code: Vec<Instr>) -> (DecodedFn, FusionStats) {
        let p = CompiledProgram {
            fns: vec![CompiledFn {
                name: "f".into(),
                arity,
                n_regs,
                code,
            }],
            ..CompiledProgram::default()
        };
        // Renumbering off: these tests pin the *fusion* output shapes, and
        // literal register expectations must not shift under compaction.
        let d = decode_program_with(&p, DecodeOptions::fused().with_renumber(false));
        (d.fns.into_iter().next().unwrap(), d.fusion)
    }

    #[test]
    fn fuses_cmp_branch_pair() {
        let (f, stats) = fuse_one(
            2,
            3,
            vec![
                Instr::Cmp {
                    pred: CmpPred::Slt,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Branch {
                    cond: Reg(2),
                    then_t: 2,
                    else_t: 3,
                },
                Instr::Ret { src: Reg(0) },
                Instr::Ret { src: Reg(1) },
            ],
        );
        assert_eq!(stats.cmp_br, 1);
        assert_eq!(stats.cells_saved, 1);
        assert_eq!(f.code.len(), 3);
        // Targets shifted down by the swallowed Branch cell.
        assert_eq!(
            f.code[0],
            DecodedInstr::CmpBr {
                pred: CmpPred::Slt,
                a: Reg(0),
                b: Reg(1),
                then_t: 1,
                else_t: 2,
            }
        );
    }

    #[test]
    fn cmp_branch_bails_when_cond_is_read_elsewhere() {
        // The comparison result is also returned, so eliminating its write
        // would be wrong.
        let (f, stats) = fuse_one(
            2,
            3,
            vec![
                Instr::Cmp {
                    pred: CmpPred::Eq,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Branch {
                    cond: Reg(2),
                    then_t: 2,
                    else_t: 2,
                },
                Instr::Ret { src: Reg(2) },
            ],
        );
        assert_eq!(stats.cmp_br, 0);
        assert!(matches!(f.code[0], DecodedInstr::Cmp { .. }));
    }

    #[test]
    fn fusion_bails_when_swallowed_instruction_is_a_jump_target() {
        // Something jumps straight at the Branch (expecting the condition
        // already computed), so the pair must stay two cells.
        let (f, stats) = fuse_one(
            2,
            4,
            vec![
                Instr::Cmp {
                    pred: CmpPred::Eq,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Branch {
                    cond: Reg(2),
                    then_t: 2,
                    else_t: 3,
                },
                Instr::Ret { src: Reg(0) },
                Instr::ConstInt { dst: Reg(2), v: 1 },
                Instr::Jump { target: 1 },
            ],
        );
        assert_eq!(stats.cmp_br, 0);
        assert!(matches!(f.code[1], DecodedInstr::Branch { .. }));
    }

    #[test]
    fn fuses_const_cmp_branch_triple_both_operand_orders() {
        // Constant on the right: pred is kept.
        let (f, stats) = fuse_one(
            1,
            3,
            vec![
                Instr::ConstInt { dst: Reg(1), v: 7 },
                Instr::Cmp {
                    pred: CmpPred::Slt,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Branch {
                    cond: Reg(2),
                    then_t: 3,
                    else_t: 4,
                },
                Instr::Ret { src: Reg(0) },
                Instr::Trap,
            ],
        );
        assert_eq!(stats.const_cmp_br, 1);
        assert_eq!(stats.cells_saved, 2);
        assert_eq!(
            f.code[0],
            DecodedInstr::ConstCmpBr {
                pred: CmpPred::Slt,
                a: Reg(0),
                imm: 7,
                then_t: 1,
                else_t: 2,
            }
        );
        // Constant on the left: the stored predicate is swapped so the
        // semantics stay `pred(reg, imm)`.
        let (f, stats) = fuse_one(
            1,
            3,
            vec![
                Instr::ConstInt { dst: Reg(1), v: 7 },
                Instr::Cmp {
                    pred: CmpPred::Slt,
                    dst: Reg(2),
                    a: Reg(1),
                    b: Reg(0),
                },
                Instr::Branch {
                    cond: Reg(2),
                    then_t: 3,
                    else_t: 4,
                },
                Instr::Ret { src: Reg(0) },
                Instr::Trap,
            ],
        );
        assert_eq!(stats.const_cmp_br, 1);
        assert_eq!(
            f.code[0],
            DecodedInstr::ConstCmpBr {
                pred: CmpPred::Sgt,
                a: Reg(0),
                imm: 7,
                then_t: 1,
                else_t: 2,
            }
        );
    }

    #[test]
    fn const_cmp_branch_bails_on_wide_immediates() {
        // An immediate beyond i32 cannot ride in the 16-byte cell; the
        // pass must fall back to the ConstInt + (unfusable) pair.
        let (f, stats) = fuse_one(
            1,
            3,
            vec![
                Instr::ConstInt {
                    dst: Reg(1),
                    v: i64::MAX,
                },
                Instr::Cmp {
                    pred: CmpPred::Eq,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Branch {
                    cond: Reg(2),
                    then_t: 3,
                    else_t: 3,
                },
                Instr::Ret { src: Reg(0) },
            ],
        );
        assert_eq!(stats.const_cmp_br, 0);
        assert!(matches!(f.code[0], DecodedInstr::ConstInt { .. }));
    }

    #[test]
    fn fuses_const_bin_either_side() {
        // `dst ← a - 1` (immediate on the right).
        let (f, stats) = fuse_one(
            1,
            3,
            vec![
                Instr::ConstInt { dst: Reg(1), v: 1 },
                Instr::Bin {
                    op: BinOp::Sub,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Ret { src: Reg(2) },
            ],
        );
        assert_eq!(stats.const_bin, 1);
        assert_eq!(
            f.code[0],
            DecodedInstr::ConstBin {
                op: BinOp::Sub,
                imm_rhs: true,
                dst: Reg(2),
                src: Reg(0),
                imm: 1,
            }
        );
        // `dst ← 100 / a` (immediate on the left of a non-commutative op).
        let (f, stats) = fuse_one(
            1,
            3,
            vec![
                Instr::ConstInt {
                    dst: Reg(1),
                    v: 100,
                },
                Instr::Bin {
                    op: BinOp::Div,
                    dst: Reg(2),
                    a: Reg(1),
                    b: Reg(0),
                },
                Instr::Ret { src: Reg(2) },
            ],
        );
        assert_eq!(stats.const_bin, 1);
        assert_eq!(
            f.code[0],
            DecodedInstr::ConstBin {
                op: BinOp::Div,
                imm_rhs: false,
                dst: Reg(2),
                src: Reg(0),
                imm: 100,
            }
        );
    }

    #[test]
    fn fuses_ret_tail_shapes() {
        let (f, stats) = fuse_one(
            2,
            3,
            vec![
                Instr::Bin {
                    op: BinOp::Add,
                    dst: Reg(2),
                    a: Reg(0),
                    b: Reg(1),
                },
                Instr::Ret { src: Reg(2) },
            ],
        );
        assert_eq!(stats.bin_ret, 1);
        assert_eq!(
            f.code[0],
            DecodedInstr::BinRet {
                op: BinOp::Add,
                a: Reg(0),
                b: Reg(1),
            }
        );
        let (f, stats) = fuse_one(
            1,
            2,
            vec![
                Instr::Move {
                    dst: Reg(1),
                    src: Reg(0),
                },
                Instr::Ret { src: Reg(1) },
            ],
        );
        assert_eq!(stats.mov_ret, 1);
        assert_eq!(f.code[0], DecodedInstr::MovRet { src: Reg(0) });
        let (f, stats) = fuse_one(
            0,
            1,
            vec![
                Instr::LpInt { dst: Reg(0), v: 9 },
                Instr::Ret { src: Reg(0) },
            ],
        );
        assert_eq!(stats.const_ret, 1);
        assert_eq!(f.code[0], DecodedInstr::ConstRet { v: 9 });
        let (f, stats) = fuse_one(
            2,
            3,
            vec![
                Instr::CallBuiltin {
                    dst: Reg(2),
                    builtin: Builtin::NatAdd,
                    args: vec![Reg(0), Reg(1)],
                    mask: 0,
                },
                Instr::Ret { src: Reg(2) },
            ],
        );
        assert_eq!(stats.call_builtin_ret, 1);
        assert!(matches!(
            f.code[0],
            DecodedInstr::CallBuiltinRet {
                builtin: Builtin::NatAdd,
                ..
            }
        ));
        let (f, stats) = fuse_one(
            2,
            3,
            vec![
                Instr::Construct {
                    dst: Reg(2),
                    tag: 4,
                    args: vec![Reg(0), Reg(1)],
                },
                Instr::Ret { src: Reg(2) },
            ],
        );
        assert_eq!(stats.construct_ret, 1);
        let DecodedInstr::ConstructRet { tag: 4, args } = f.code[0] else {
            panic!("expected ConstructRet, got {:?}", f.code[0]);
        };
        assert_eq!(f.arg_regs(args), &[Reg(0), Reg(1)]);
    }

    #[test]
    fn fuses_project_inc() {
        // The projected field is read later, which is fine: ProjInc keeps
        // the write (no dead-register requirement).
        let (f, stats) = fuse_one(
            1,
            2,
            vec![
                Instr::Project {
                    dst: Reg(1),
                    src: Reg(0),
                    idx: 3,
                },
                Instr::Inc { src: Reg(1) },
                Instr::Ret { src: Reg(1) },
            ],
        );
        assert_eq!(stats.proj_inc, 1);
        assert_eq!(
            f.code[0],
            DecodedInstr::ProjInc {
                dst: Reg(1),
                src: Reg(0),
                idx: 3,
            }
        );
        assert!(matches!(f.code[1], DecodedInstr::Ret { src: Reg(1) }));
    }

    #[test]
    fn fuses_dec_dec_pairs() {
        let (f, stats) = fuse_one(
            2,
            3,
            vec![
                Instr::Dec { src: Reg(0) },
                Instr::Dec { src: Reg(1) },
                Instr::LpInt { dst: Reg(2), v: 7 },
                Instr::Ret { src: Reg(2) },
            ],
        );
        assert_eq!(stats.dec2, 1);
        assert_eq!(
            f.code[0],
            DecodedInstr::Dec2 {
                a: Reg(0),
                b: Reg(1)
            }
        );
        assert!(matches!(f.code[1], DecodedInstr::ConstRet { v: 7 }));
    }

    #[test]
    fn fuses_proj_inc_quad() {
        // Two adjacent project-and-retain groups collapse to one quad
        // cell; four original cells become one.
        let (f, stats) = fuse_one(
            1,
            3,
            vec![
                Instr::Project {
                    dst: Reg(1),
                    src: Reg(0),
                    idx: 0,
                },
                Instr::Inc { src: Reg(1) },
                Instr::Project {
                    dst: Reg(2),
                    src: Reg(0),
                    idx: 1,
                },
                Instr::Inc { src: Reg(2) },
                Instr::Ret { src: Reg(1) },
            ],
        );
        assert_eq!(stats.proj_inc2, 1);
        assert_eq!(stats.proj_inc, 0);
        assert_eq!(
            f.code[0],
            DecodedInstr::ProjInc2 {
                dst1: Reg(1),
                src1: Reg(0),
                idx1: 0,
                dst2: Reg(2),
                src2: Reg(0),
                idx2: 1,
            }
        );
        assert!(matches!(f.code[1], DecodedInstr::Ret { src: Reg(1) }));
    }

    #[test]
    fn proj_inc_quad_bails_to_pairs_on_wide_index_or_jump_target() {
        // A field index beyond u16 cannot ride in the quad cell: the two
        // groups fuse as independent ProjInc pairs instead.
        let (f, stats) = fuse_one(
            1,
            3,
            vec![
                Instr::Project {
                    dst: Reg(1),
                    src: Reg(0),
                    idx: 1 << 20,
                },
                Instr::Inc { src: Reg(1) },
                Instr::Project {
                    dst: Reg(2),
                    src: Reg(0),
                    idx: 1,
                },
                Instr::Inc { src: Reg(2) },
                Instr::Ret { src: Reg(1) },
            ],
        );
        assert_eq!((stats.proj_inc2, stats.proj_inc), (0, 2));
        assert!(matches!(f.code[0], DecodedInstr::ProjInc { .. }));
        assert!(matches!(f.code[1], DecodedInstr::ProjInc { .. }));
        // A jump target at the second group's head likewise splits the
        // quad: control may enter there, so the groups must stay separate
        // cells.
        let (f, stats) = fuse_one(
            1,
            3,
            vec![
                Instr::Project {
                    dst: Reg(1),
                    src: Reg(0),
                    idx: 0,
                },
                Instr::Inc { src: Reg(1) },
                Instr::Project {
                    dst: Reg(2),
                    src: Reg(0),
                    idx: 1,
                },
                Instr::Inc { src: Reg(2) },
                Instr::Jump { target: 2 },
            ],
        );
        assert_eq!((stats.proj_inc2, stats.proj_inc), (0, 2));
        assert!(matches!(f.code[2], DecodedInstr::Jump { target: 1 }));
    }

    #[test]
    fn jump_targets_remap_across_fused_boundaries() {
        // A diamond whose join sits *after* two fused pairs of different
        // widths; every target must land on the right post-fusion cell.
        let code = vec![
            // 0..=2 fuse into one ConstCmpBr cell.
            Instr::ConstInt { dst: Reg(1), v: 0 },
            Instr::Cmp {
                pred: CmpPred::Eq,
                dst: Reg(2),
                a: Reg(0),
                b: Reg(1),
            },
            Instr::Branch {
                cond: Reg(2),
                then_t: 3,
                else_t: 5,
            },
            // then-block: 3..=4 fuse into one ConstRet cell.
            Instr::LpInt { dst: Reg(3), v: 1 },
            Instr::Ret { src: Reg(3) },
            // else-block: a jump over a trap to the tail.
            Instr::Jump { target: 7 },
            Instr::Trap,
            Instr::LpInt { dst: Reg(3), v: 2 },
            Instr::Ret { src: Reg(3) },
        ];
        let (f, stats) = fuse_one(1, 4, code);
        assert_eq!(stats.const_cmp_br, 1);
        assert_eq!(stats.const_ret, 2);
        assert_eq!(stats.cells_saved, 4);
        // Stream: [ConstCmpBr, ConstRet(1), Jump, Trap, ConstRet(2)].
        assert_eq!(f.code.len(), 5);
        assert_eq!(
            f.code[0],
            DecodedInstr::ConstCmpBr {
                pred: CmpPred::Eq,
                a: Reg(0),
                imm: 0,
                then_t: 1,
                else_t: 2,
            }
        );
        assert_eq!(f.code[1], DecodedInstr::ConstRet { v: 1 });
        assert_eq!(f.code[2], DecodedInstr::Jump { target: 4 });
        assert_eq!(f.code[4], DecodedInstr::ConstRet { v: 2 });
    }

    #[test]
    fn dense_switch_fast_path_and_fallbacks() {
        let switch_over = |cases: Vec<(i64, usize)>| {
            let n = cases.len();
            let mut code = vec![Instr::Switch {
                idx: Reg(0),
                cases,
                default: n + 1,
            }];
            code.extend((0..=n).map(|_| Instr::Ret { src: Reg(0) }));
            code.push(Instr::Trap);
            code
        };
        // Contiguous but unsorted keys: densified, pool run sorted.
        let (f, stats) = fuse_one(1, 1, switch_over(vec![(12, 2), (10, 1), (11, 3)]));
        assert_eq!(stats.switch_dense, 1);
        assert_eq!(stats.cells_saved, 0, "densify keeps the cell count");
        let DecodedInstr::SwitchDense { cases, default, .. } = f.code[0] else {
            panic!("expected SwitchDense, got {:?}", f.code[0]);
        };
        assert_eq!(&f.cases[cases.range()], &[(10, 1), (11, 3), (12, 2)]);
        assert_eq!(default, 4);
        // A gap in the keys: stays a scanning Switch.
        let (f, stats) = fuse_one(1, 1, switch_over(vec![(10, 1), (12, 2), (13, 3)]));
        assert_eq!(stats.switch_dense, 0);
        assert!(matches!(f.code[0], DecodedInstr::Switch { .. }));
        // Duplicate keys (span happens to match the length): scan keeps
        // first-match-wins semantics.
        let (f, stats) = fuse_one(1, 1, switch_over(vec![(10, 1), (10, 2), (12, 3)]));
        assert_eq!(stats.switch_dense, 0);
        assert!(matches!(f.code[0], DecodedInstr::Switch { .. }));
    }

    #[test]
    fn out_of_range_jump_targets_skip_fusion_instead_of_panicking() {
        // Malformed code decodes fine and fails at *runtime* with a
        // recoverable "pc out of range" error; fusion must preserve that
        // instead of panicking while remapping.
        let (f, stats) = fuse_one(
            0,
            1,
            vec![
                Instr::LpInt { dst: Reg(0), v: 1 },
                Instr::Ret { src: Reg(0) },
                Instr::Jump { target: 99 },
            ],
        );
        assert_eq!(stats, FusionStats::default());
        assert_eq!(f.code.len(), 3, "stream left unfused");
    }

    #[test]
    fn out_of_range_registers_decode_without_panicking() {
        // An unreachable instruction naming a register beyond n_regs is
        // decodable (and runnable — the bad cell never executes); the
        // fusion pass's read counting must tolerate it.
        let (f, stats) = fuse_one(
            0,
            1,
            vec![
                Instr::LpInt { dst: Reg(0), v: 1 },
                Instr::Ret { src: Reg(0) },
                Instr::Ret { src: Reg(9) },
            ],
        );
        assert_eq!(stats.const_ret, 1, "reachable prefix still fuses");
        assert!(matches!(f.code[0], DecodedInstr::ConstRet { v: 1 }));
    }

    #[test]
    fn no_fuse_option_leaves_the_stream_alone() {
        let p = CompiledProgram {
            fns: vec![CompiledFn {
                name: "f".into(),
                arity: 0,
                n_regs: 1,
                code: vec![
                    Instr::LpInt { dst: Reg(0), v: 1 },
                    Instr::Ret { src: Reg(0) },
                ],
            }],
            ..CompiledProgram::default()
        };
        let d = decode_program_with(&p, DecodeOptions::no_fuse());
        assert_eq!(d.fusion, FusionStats::default());
        assert_eq!(d.fns[0].code.len(), 2);
        // And the unfused stream still encodes losslessly.
        for (i, original) in p.fns[0].code.iter().enumerate() {
            assert_eq!(&d.fns[0].encode(i), original);
        }
    }
}
