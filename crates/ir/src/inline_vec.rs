//! A small-vector with fixed inline capacity and no external dependencies.
//!
//! [`InlineVec<T, N>`] stores up to `N` elements in the struct itself and
//! spills to a heap `Vec` beyond that. `OpData` uses it for operand, result,
//! successor, region, and attribute lists, which are almost always tiny
//! (binary arithmetic has two operands, one result, no successors), so the
//! common case allocates nothing and pass pipelines stop hammering the
//! allocator when they clone or rebuild ops.
//!
//! Unlike the `smallvec` crate this type is written entirely in safe Rust
//! (the crate is `#![forbid(unsafe_code)]`): the inline buffer is a plain
//! `[T; N]` whose unused slots hold `T::default()` placeholders, so element
//! types must be `Clone + Default`. All IR list element types are cheap to
//! default-construct, making the trade-off free in practice.
//!
//! The type dereferences to `[T]`, so slice APIs (indexing, `iter`, `len`,
//! `contains`, pattern matching on `&v[..]`) work unchanged.

use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Deref, DerefMut};

#[derive(Clone)]
enum Repr<T, const N: usize> {
    /// `len` live elements at the front of `buf`; the rest are defaults.
    Inline { len: u32, buf: [T; N] },
    /// Spilled: every element lives in the Vec.
    Heap(Vec<T>),
}

/// A vector of `T` with `N` elements of inline storage.
#[derive(Clone)]
pub struct InlineVec<T, const N: usize> {
    repr: Repr<T, N>,
}

impl<T: Default, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no allocation).
    pub fn new() -> InlineVec<T, N> {
        InlineVec {
            repr: Repr::Inline {
                len: 0,
                buf: std::array::from_fn(|_| T::default()),
            },
        }
    }

    /// Appends an element, spilling to the heap at `N + 1` elements.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                if n < N {
                    buf[n] = value;
                    *len += 1;
                } else {
                    let mut spilled = Vec::with_capacity(N + 1);
                    for slot in buf.iter_mut() {
                        spilled.push(std::mem::take(slot));
                    }
                    spilled.push(value);
                    self.repr = Repr::Heap(spilled);
                }
            }
            Repr::Heap(v) => v.push(value),
        }
    }

    /// Removes and returns the last element.
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if *len == 0 {
                    return None;
                }
                *len -= 1;
                Some(std::mem::take(&mut buf[*len as usize]))
            }
            Repr::Heap(v) => v.pop(),
        }
    }

    /// Removes all elements (inline slots are reset so held resources drop).
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                for slot in buf.iter_mut().take(n) {
                    *slot = T::default();
                }
                *len = 0;
            }
            Repr::Heap(v) => v.clear(),
        }
    }

    /// Keeps only the elements for which `f` returns `true`.
    pub fn retain(&mut self, mut f: impl FnMut(&T) -> bool) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                let n = *len as usize;
                let mut kept = 0;
                for i in 0..n {
                    if f(&buf[i]) {
                        if kept != i {
                            buf.swap(kept, i);
                        }
                        kept += 1;
                    }
                }
                for slot in buf.iter_mut().take(n).skip(kept) {
                    *slot = T::default();
                }
                *len = kept as u32;
            }
            Repr::Heap(v) => v.retain(|x| f(x)),
        }
    }
}

impl<T, const N: usize> InlineVec<T, N> {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len as usize,
            Repr::Heap(v) => v.len(),
        }
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether the elements have spilled to the heap.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }

    /// The elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len as usize],
            Repr::Heap(v) => v.as_slice(),
        }
    }

    /// The elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len as usize],
            Repr::Heap(v) => v.as_mut_slice(),
        }
    }

    /// Copies the elements into a plain `Vec`.
    pub fn to_vec(&self) -> Vec<T>
    where
        T: Clone,
    {
        self.as_slice().to_vec()
    }
}

impl<T: Default, const N: usize> Default for InlineVec<T, N> {
    fn default() -> InlineVec<T, N> {
        InlineVec::new()
    }
}

impl<T, const N: usize> Deref for InlineVec<T, N> {
    type Target = [T];
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> DerefMut for InlineVec<T, N> {
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Default, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(v: Vec<T>) -> InlineVec<T, N> {
        if v.len() > N {
            return InlineVec {
                repr: Repr::Heap(v),
            };
        }
        let mut out = InlineVec::new();
        for x in v {
            out.push(x);
        }
        out
    }
}

impl<T: Clone + Default, const N: usize> From<&[T]> for InlineVec<T, N> {
    fn from(v: &[T]) -> InlineVec<T, N> {
        v.iter().cloned().collect()
    }
}

impl<T: Default, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> InlineVec<T, N> {
        let mut out = InlineVec::new();
        for x in iter {
            out.push(x);
        }
        out
    }
}

impl<T: Default, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for x in iter {
            self.push(x);
        }
    }
}

/// Owning iterator for [`InlineVec`].
pub struct IntoIter<T, const N: usize> {
    repr: IterRepr<T, N>,
}

enum IterRepr<T, const N: usize> {
    Inline(std::iter::Take<std::array::IntoIter<T, N>>),
    Heap(std::vec::IntoIter<T>),
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;
    fn next(&mut self) -> Option<T> {
        match &mut self.repr {
            IterRepr::Inline(it) => it.next(),
            IterRepr::Heap(it) => it.next(),
        }
    }
    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.repr {
            IterRepr::Inline(it) => it.size_hint(),
            IterRepr::Heap(it) => it.size_hint(),
        }
    }
}

impl<T, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;
    fn into_iter(self) -> IntoIter<T, N> {
        let repr = match self.repr {
            Repr::Inline { len, buf } => IterRepr::Inline(buf.into_iter().take(len as usize)),
            Repr::Heap(v) => IterRepr::Heap(v.into_iter()),
        };
        IntoIter { repr }
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;
    fn into_iter(self) -> std::slice::Iter<'a, T> {
        self.as_slice().iter()
    }
}

impl<'a, T, const N: usize> IntoIterator for &'a mut InlineVec<T, N> {
    type Item = &'a mut T;
    type IntoIter = std::slice::IterMut<'a, T>;
    fn into_iter(self) -> std::slice::IterMut<'a, T> {
        self.as_mut_slice().iter_mut()
    }
}

impl<T: fmt::Debug, const N: usize> fmt::Debug for InlineVec<T, N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list().entries(self.as_slice()).finish()
    }
}

impl<T: PartialEq, const N: usize, const M: usize> PartialEq<InlineVec<T, M>> for InlineVec<T, N> {
    fn eq(&self, other: &InlineVec<T, M>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: PartialEq, const N: usize> PartialEq<Vec<T>> for InlineVec<T, N> {
    fn eq(&self, other: &Vec<T>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq, const N: usize> PartialEq<InlineVec<T, N>> for Vec<T> {
    fn eq(&self, other: &InlineVec<T, N>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: PartialEq, const N: usize> PartialEq<&[T]> for InlineVec<T, N> {
    fn eq(&self, other: &&[T]) -> bool {
        self.as_slice() == *other
    }
}

impl<T: PartialEq, const N: usize, const M: usize> PartialEq<[T; M]> for InlineVec<T, N> {
    fn eq(&self, other: &[T; M]) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Hash, const N: usize> Hash for InlineVec<T, N> {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Matches `Vec`/slice hashing (length prefix + elements), so keys
        // built from either representation collide correctly.
        self.as_slice().hash(state);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stays_inline_up_to_capacity() {
        let mut v: InlineVec<u32, 3> = InlineVec::new();
        assert!(v.is_empty());
        v.push(1);
        v.push(2);
        v.push(3);
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn spills_past_capacity_and_keeps_order() {
        let mut v: InlineVec<u32, 2> = InlineVec::new();
        for i in 0..5 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn pop_and_clear() {
        let mut v: InlineVec<u32, 2> = vec![1, 2].into();
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
        let mut v: InlineVec<u32, 2> = vec![1, 2, 3].into();
        v.clear();
        assert!(v.is_empty());
    }

    #[test]
    fn retain_compacts_inline_and_heap() {
        let mut v: InlineVec<u32, 4> = vec![1, 2, 3, 4].into();
        v.retain(|&x| x % 2 == 0);
        assert_eq!(v, vec![2, 4]);
        let mut v: InlineVec<u32, 2> = vec![1, 2, 3, 4, 5].into();
        v.retain(|&x| x % 2 == 1);
        assert_eq!(v, vec![1, 3, 5]);
    }

    #[test]
    fn from_vec_round_trips() {
        let v: InlineVec<u32, 2> = vec![7, 8, 9].into();
        assert!(v.spilled());
        assert_eq!(v.to_vec(), vec![7, 8, 9]);
        let v: InlineVec<u32, 4> = vec![7].into();
        assert!(!v.spilled());
        assert_eq!(v.to_vec(), vec![7]);
    }

    #[test]
    fn owned_iteration_yields_all_elements() {
        let v: InlineVec<u32, 2> = vec![1, 2].into();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![1, 2]);
        let v: InlineVec<u32, 2> = vec![1, 2, 3].into();
        assert_eq!(v.into_iter().collect::<Vec<_>>(), vec![1, 2, 3]);
    }

    #[test]
    fn slice_apis_work_through_deref() {
        let v: InlineVec<u32, 4> = vec![5, 6, 7].into();
        assert_eq!(v[0], 5);
        assert!(v.contains(&6));
        assert_eq!(&v[1..], &[6, 7]);
        let [a, b, c] = v[..] else { panic!() };
        assert_eq!((a, b, c), (5, 6, 7));
    }

    #[test]
    fn equality_and_hash_match_across_reprs() {
        use std::collections::hash_map::DefaultHasher;
        let inline: InlineVec<u32, 4> = vec![1, 2].into();
        let mut heap: InlineVec<u32, 1> = InlineVec::new();
        heap.push(1);
        heap.push(2);
        assert!(heap.spilled());
        assert_eq!(inline, heap);
        let h = |x: &dyn Fn(&mut DefaultHasher)| {
            let mut s = DefaultHasher::new();
            x(&mut s);
            std::hash::Hasher::finish(&s)
        };
        assert_eq!(h(&|s| inline.hash(s)), h(&|s| heap.hash(s)));
    }
}
