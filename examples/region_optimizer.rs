//! Figure 1: the three region optimizations, shown on raw `rgn` IR.
//!
//! - **A. Dead Expression Elimination** — an unreferenced `rgn.val` is dead
//!   code; plain DCE removes it.
//! - **B. Case Elimination** — `select true, %ve, %vf` folds to `%ve`
//!   (generic constant folding), then running the known region inlines it.
//! - **C. Common Branch Elimination** — global region numbering merges the
//!   two identical regions, `select %x, %w, %w` folds, the run inlines.
//!
//! Run with: `cargo run --example region_optimizer`

use lambda_ssa::ir::builder::Builder;
use lambda_ssa::ir::prelude::*;
use lambda_ssa::ir::rewrite::{apply_patterns_greedily, RewriteCtx};

/// Builds `%r = rgn.val { lp.int k; lp.ret }` and returns the region value.
fn const_region(body: &mut Body, block: BlockId, k: i64) -> ValueId {
    let mut b = Builder::at_end(body, block);
    let (rv, inner) = b.rgn_val(&[]);
    let mut ib = Builder::at_end(body, inner);
    let v = ib.lp_int(k);
    ib.lp_ret(v);
    rv
}

fn show(module: &Module, name: &str, title: &str) {
    let mut text = String::new();
    lambda_ssa::ir::printer::print_function(
        module,
        module.func_by_name(name).unwrap(),
        &mut text,
        0,
    );
    println!("--- {title} ---\n{text}");
}

fn optimize(module: &mut Module, name: &str) {
    let sym = module.interner.get(name).unwrap();
    let idx = module.func_position(sym).unwrap();
    let mut body = module.funcs[idx].body.take().unwrap();
    lambda_ssa::core::rgn::grn::run_on_body(&mut body);
    let patterns = lambda_ssa::core::rgn::opt::all_patterns();
    let ctx = RewriteCtx { module };
    apply_patterns_greedily(&mut body, &ctx, &patterns);
    module.funcs[idx].body = Some(body);
}

fn main() {
    let mut module = Module::new();

    // --- Figure 1A: dead expression elimination -------------------------
    {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let _dead = const_region(&mut body, entry, 99); // never referenced
        let live = const_region(&mut body, entry, 1);
        let mut b = Builder::at_end(&mut body, entry);
        b.rgn_run(live, vec![]);
        module.add_function("fig1a", Signature::obj(0), body);
    }
    // --- Figure 1B: case elimination ---------------------------------------
    {
        let (mut body, _) = Body::new(&[]);
        let entry = body.entry_block();
        let ve = const_region(&mut body, entry, 3);
        let vf = const_region(&mut body, entry, 5);
        let mut b = Builder::at_end(&mut body, entry);
        let t = b.const_bool(true);
        let r = b.select(t, ve, vf);
        b.rgn_run(r, vec![]);
        module.add_function("fig1b", Signature::obj(0), body);
    }
    // --- Figure 1C: common branch elimination ---------------------------
    {
        let (mut body, params) = Body::new(&[Type::I1]);
        let entry = body.entry_block();
        let ve = const_region(&mut body, entry, 7);
        let vf = const_region(&mut body, entry, 7); // identical region
        let mut b = Builder::at_end(&mut body, entry);
        let r = b.select(params[0], ve, vf);
        b.rgn_run(r, vec![]);
        module.add_function("fig1c", Signature::new(vec![Type::I1], Type::Obj), body);
    }
    lambda_ssa::ir::verifier::verify_module(&module).expect("valid input IR");

    for (name, title) in [
        ("fig1a", "Figure 1A input: dead region"),
        ("fig1b", "Figure 1B input: select on constant true"),
        ("fig1c", "Figure 1C input: identical branches"),
    ] {
        show(&module, name, title);
    }

    println!("================ optimizing ================\n");
    for name in ["fig1a", "fig1b", "fig1c"] {
        optimize(&mut module, name);
    }
    lambda_ssa::ir::verifier::verify_module(&module).expect("valid output IR");

    for (name, title, expect) in [
        ("fig1a", "Figure 1A output", 99),
        ("fig1b", "Figure 1B output", 5),
        ("fig1c", "Figure 1C output", 7),
    ] {
        show(&module, name, title);
        let body = module.func_by_name(name).unwrap().body.as_ref().unwrap();
        // Every example collapses to a straight-line `lp.int; lp.ret`.
        assert_eq!(
            body.live_op_count(),
            2,
            "@{name} should collapse to lp.int + lp.ret"
        );
        // The dead constants (99 in A, 5 in B) must be gone.
        let _ = expect;
    }
    println!("all three examples collapsed to `lp.int; lp.ret` — exactly Figure 1's D column");
}
