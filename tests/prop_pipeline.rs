//! Property-based end-to-end testing: for any generated program, all
//! pipelines agree with the reference interpreter, the simplifier preserves
//! semantics, and reference counting balances.

use lambda_ssa::core::pipeline::{
    compile_with_report, rc_opt_pipeline, reoptimize, PipelineOptions,
};
use lambda_ssa::driver::conformance::generated;
use lambda_ssa::driver::diff::run_differential;
use lambda_ssa::driver::pipelines::{frontend, CompilerConfig};
use lambda_ssa::ir::verifier::verify_module;
use lambda_ssa::lambda::{
    check_program, insert_rc, parse_program, run_program, simplify_program, SimplifyOptions,
};
use proptest::prelude::*;

const MAX_STEPS: u64 = 200_000_000;

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 24, // each case compiles 4 pipelines; keep CI time bounded
        .. ProptestConfig::default()
    })]

    /// Differential agreement on arbitrary generated programs.
    #[test]
    fn generated_programs_agree_across_pipelines(seed in any::<u32>()) {
        let case = generated(1, seed as u64).remove(0);
        let r = run_differential(&case.name, &case.src, MAX_STEPS);
        prop_assert!(r.passed(), "{}\n{}", r.failure.unwrap_or_default(), case.src);
    }

    /// The λpure simplifier preserves observable behaviour.
    #[test]
    fn simplifier_preserves_semantics(seed in any::<u32>()) {
        let case = generated(1, seed as u64 ^ 0xabcd_ef01).remove(0);
        let p = parse_program(&case.src).unwrap();
        check_program(&p).unwrap();
        let s = simplify_program(&p, SimplifyOptions::all());
        check_program(&s).unwrap();
        let before = run_program(&p, "main", false, MAX_STEPS).unwrap().rendered;
        let after = run_program(&s, "main", false, MAX_STEPS).unwrap().rendered;
        prop_assert_eq!(before, after, "simplifier changed behaviour of\n{}", case.src);
    }

    /// RC insertion is balanced on arbitrary programs: after running the
    /// λrc form, the heap is empty.
    #[test]
    fn rc_insertion_is_balanced(seed in any::<u32>()) {
        let case = generated(1, seed as u64 ^ 0x1234_5678).remove(0);
        let p = parse_program(&case.src).unwrap();
        let rc = insert_rc(&p);
        check_program(&rc).unwrap();
        let out = run_program(&rc, "main", true, MAX_STEPS).unwrap();
        prop_assert_eq!(out.stats.live, 0, "leaked on\n{}", case.src);
        // And it computes the same thing as λpure.
        let pure = run_program(&p, "main", false, MAX_STEPS).unwrap();
        prop_assert_eq!(out.rendered, pure.rendered);
    }

    /// Pipeline idempotence: `compile` ends with the `cleanup` pipeline
    /// driven to a fixpoint, so re-running that pass pipeline on the
    /// compiler's own output must report `changed == false` — on arbitrary
    /// generated programs, not just the workloads.
    #[test]
    fn pipeline_is_idempotent_on_its_own_output(seed in any::<u32>()) {
        let case = generated(1, seed as u64 ^ 0x5a5a_5a5a).remove(0);
        let rc = frontend(&case.src, CompilerConfig::mlir()).unwrap();
        let opts = PipelineOptions { verify: true, ..PipelineOptions::full() };
        let (mut module, report) = compile_with_report(&rc, opts);
        let cleanup = report.phases.last().unwrap();
        prop_assert!(cleanup.converged, "cleanup missed its fixpoint on\n{}", case.src);
        let again = reoptimize(&mut module, opts);
        prop_assert!(
            !again.changed,
            "re-running the pass pipeline changed the IR of\n{}\n{}",
            case.src,
            again.render_table()
        );
    }

    /// The §III reference-count optimization is a true single-sweep
    /// fixpoint pass: its output passes the verifier, and re-running it
    /// on its own output reports `changed == false` — on arbitrary
    /// generated programs, not just the workloads.
    #[test]
    fn rc_opt_is_idempotent_and_verified(seed in any::<u32>()) {
        let case = generated(1, seed as u64 ^ 0x00dc_0de5).remove(0);
        let rc = frontend(&case.src, CompilerConfig::mlir()).unwrap();
        // Compile without rc-opt to get verified IR the pass has never
        // seen, then apply it by hand, twice.
        let opts = PipelineOptions { rc_opt: false, verify: true, ..PipelineOptions::full() };
        let (mut module, _) = compile_with_report(&rc, opts);
        rc_opt_pipeline(opts).run(&mut module);
        prop_assert!(
            verify_module(&module).is_ok(),
            "rc-opt broke the IR of\n{}",
            case.src
        );
        let again = rc_opt_pipeline(opts).run(&mut module);
        prop_assert!(
            !again.changed,
            "rc-opt is not at a fixpoint after one sweep on\n{}",
            case.src
        );
    }

    /// Simplifier + RC + both backends agree even when the simplifier is
    /// run with individual flags toggled.
    #[test]
    fn simplifier_option_combinations_sound(seed in any::<u32>(), simpcase in any::<bool>(), fold in any::<bool>()) {
        let case = generated(1, seed as u64 ^ 0x9999).remove(0);
        let p = parse_program(&case.src).unwrap();
        let opts = SimplifyOptions {
            basic: true,
            const_fold: fold,
            case_of_known: true,
            simpcase,
        };
        let s = simplify_program(&p, opts);
        check_program(&s).unwrap();
        let before = run_program(&p, "main", false, MAX_STEPS).unwrap().rendered;
        let after = run_program(&s, "main", false, MAX_STEPS).unwrap().rendered;
        prop_assert_eq!(before, after);
    }
}
