//! Regression tests for the `correctness` binary's argument handling and
//! for the parallel batch driver behind it: `--count 0` must not print
//! `NaN% tests passed`, bad arguments must exit nonzero, and the printed
//! results must be byte-identical across `--jobs` values.

use std::process::Command;

fn correctness() -> Command {
    Command::new(env!("CARGO_BIN_EXE_correctness"))
}

#[test]
fn count_zero_reports_gracefully() {
    let out = correctness().args(["--count", "0"]).output().unwrap();
    assert!(
        out.status.success(),
        "--count 0 must not be an error: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("0 tests"), "{stdout}");
    assert!(!stdout.contains("NaN"), "{stdout}");
}

#[test]
fn unparseable_count_is_rejected() {
    let out = correctness().args(["--count", "banana"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("--count"), "{stderr}");
    assert!(stderr.contains("usage"), "{stderr}");
}

#[test]
fn missing_count_value_is_rejected() {
    let out = correctness().args(["--count"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("needs a value"));
}

#[test]
fn zero_jobs_is_rejected() {
    let out = correctness().args(["--jobs", "0"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("--jobs"));
}

#[test]
fn unknown_flag_is_rejected() {
    let out = correctness().args(["--frobnicate"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown argument"));
}

#[test]
fn results_are_identical_across_job_counts() {
    // A small exact slice of the corpus; stdout (pass rate + failure list
    // + order) must be byte-identical however the batch is sharded.
    let run = |jobs: &str| {
        let out = correctness()
            .args(["--count", "16", "--jobs", jobs])
            .output()
            .unwrap();
        assert!(
            out.status.success(),
            "jobs={jobs}: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        out.stdout
    };
    let serial = run("1");
    assert_eq!(serial, run("4"));
    assert_eq!(serial, run("13"));
    let text = String::from_utf8_lossy(&serial);
    assert!(text.contains("out of 16"), "{text}");
}
