//! # lssa-driver: end-to-end pipelines and the evaluation harness
//!
//! Everything the paper's evaluation needs, wired together:
//!
//! - [`baseline`] — the `leanc` model: direct λrc → CFG lowering with
//!   heuristic tail calls (the Figure 9 comparison target),
//! - [`pipelines`] — compiler configurations (λ simplifier on/off × backend
//!   × region optimizations) matching Figures 9 and 10,
//! - [`diff`] — differential testing against the reference interpreter,
//! - [`conformance`] — the ≥648-program corpus (§V-A's test-suite analogue),
//! - [`workloads`] — the eight benchmarks of §V-B,
//! - [`benchjson`] — machine-readable benchmark records
//!   (`lssa bench --json` → `BENCH_<scale>.json`, fused vs `--no-fuse`),
//! - [`jobs`] — resource-governed, fault-tolerant job execution with
//!   deterministic fault injection (the `gauntlet` harness),
//! - [`par`] — the parallel batch executor every sharded run shares (the
//!   `correctness` binary, [`pipelines::compile_batch`], and the
//!   integration-test harnesses).
//!
//! ```
//! use lssa_driver::pipelines::{compile_and_run, CompilerConfig};
//! let out = compile_and_run("def main() := 6 * 7", CompilerConfig::mlir(), 100_000).unwrap();
//! assert_eq!(out.rendered, "42");
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod baseline;
pub mod benchjson;
pub mod conformance;
pub mod diff;
pub mod jobs;
pub mod lint;
pub mod par;
pub mod pipelines;
pub mod workloads;

pub use pipelines::{compile, compile_and_run, compile_batch, Backend, CompilerConfig};
