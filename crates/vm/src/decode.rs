//! The pre-decoded compact instruction stream the VM actually executes.
//!
//! [`crate::bytecode::Instr`] is the backend's *interchange* form: explicit,
//! printable, easy to construct — and expensive to interpret, because the
//! wide enum drags `Vec`s through every `Construct`/`Call`/`TailCall` and
//! forces the dispatch loop to clone instructions to appease the borrow
//! checker. This module lowers a [`CompiledProgram`] once, ahead of
//! execution, into [`DecodedProgram`]:
//!
//! - every instruction becomes a fixed-size, `Copy` [`DecodedInstr`] with
//!   **no per-instruction heap data** (asserted at compile time to stay
//!   within 16 bytes);
//! - variable-length register lists live in one shared side pool per
//!   function ([`DecodedFn::args`]), referenced by `(u32 offset, u16 len)`
//!   [`ArgSlice`]s; switch tables live in a second pool
//!   ([`DecodedFn::cases`]);
//! - jump targets shrink to `u32`.
//!
//! Decoding is lossless: [`DecodedFn::encode`] reconstructs the original
//! enum instruction exactly (the round-trip the unit tests pin down), so
//! the decoded form executes identically by construction.

use crate::bytecode::{BinOp, CmpPred, CompiledFn, CompiledProgram, Instr, Reg};
use lssa_rt::{Builtin, Nat};

/// A `(offset, len)` window into a function's shared register pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArgSlice {
    /// Offset into [`DecodedFn::args`] (or [`DecodedFn::cases`]).
    pub off: u32,
    /// Number of entries.
    pub len: u16,
}

impl ArgSlice {
    /// The corresponding `Range` for indexing the pool.
    pub fn range(self) -> std::ops::Range<usize> {
        let off = self.off as usize;
        off..off + self.len as usize
    }
}

/// Coarse instruction classes for per-opcode-class execution statistics
/// (the VM-side analogue of `lssa-ir`'s per-pass `PassStatistics`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum OpClass {
    /// Constant materialization (`ConstInt`, `LpInt`).
    Const = 0,
    /// Heap-allocating data constructors (`LpBig`, `LpStr`, `Construct`).
    Alloc,
    /// Reads of constructor cells (`GetLabel`, `Project`).
    Project,
    /// Closure creation/extension (`Pap`, `PapExtend`).
    Closure,
    /// Reference counting (`Inc`, `Dec`).
    Rc,
    /// Direct calls of user functions.
    Call,
    /// Calls of runtime builtins.
    CallBuiltin,
    /// Guaranteed tail calls (frame-reusing).
    TailCall,
    /// Returns.
    Ret,
    /// Control flow (`Jump`, `Branch`, `Switch`).
    Branch,
    /// Raw-word arithmetic (`Bin`, `Cmp`, `Select`, `Mask`).
    Arith,
    /// Register copies.
    Move,
    /// Module-global loads/stores.
    Global,
    /// `Trap`.
    Trap,
}

impl OpClass {
    /// Number of classes (sizes the statistics arrays).
    pub const COUNT: usize = 14;

    /// All classes in display order.
    pub const ALL: [OpClass; OpClass::COUNT] = [
        OpClass::Const,
        OpClass::Alloc,
        OpClass::Project,
        OpClass::Closure,
        OpClass::Rc,
        OpClass::Call,
        OpClass::CallBuiltin,
        OpClass::TailCall,
        OpClass::Ret,
        OpClass::Branch,
        OpClass::Arith,
        OpClass::Move,
        OpClass::Global,
        OpClass::Trap,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            OpClass::Const => "const",
            OpClass::Alloc => "alloc",
            OpClass::Project => "project",
            OpClass::Closure => "closure",
            OpClass::Rc => "rc",
            OpClass::Call => "call",
            OpClass::CallBuiltin => "call-builtin",
            OpClass::TailCall => "tail-call",
            OpClass::Ret => "ret",
            OpClass::Branch => "branch",
            OpClass::Arith => "arith",
            OpClass::Move => "move",
            OpClass::Global => "global",
            OpClass::Trap => "trap",
        }
    }
}

/// One pre-decoded instruction: fixed operands only, `Copy`, no heap data.
///
/// Mirrors [`Instr`] variant-for-variant; variable-length payloads are
/// [`ArgSlice`]s into the owning [`DecodedFn`]'s pools.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodedInstr {
    /// `dst ← raw constant`.
    ConstInt {
        /// Destination.
        dst: Reg,
        /// The value.
        v: i64,
    },
    /// `dst ← scalar object`.
    LpInt {
        /// Destination.
        dst: Reg,
        /// The (small) integer.
        v: i64,
    },
    /// `dst ← boxed bignum` from the constant pool.
    LpBig {
        /// Destination.
        dst: Reg,
        /// Pool index.
        idx: u32,
    },
    /// `dst ← string object` from the pool.
    LpStr {
        /// Destination.
        dst: Reg,
        /// Pool index.
        idx: u32,
    },
    /// `dst ← ctor{tag}(args…)`.
    Construct {
        /// Destination.
        dst: Reg,
        /// Variant tag.
        tag: u32,
        /// Field registers (pool slice).
        args: ArgSlice,
    },
    /// `dst ← tag(src)` as a raw word.
    GetLabel {
        /// Destination (raw).
        dst: Reg,
        /// Source object.
        src: Reg,
    },
    /// `dst ← field idx of src`.
    Project {
        /// Destination.
        dst: Reg,
        /// Source object.
        src: Reg,
        /// Field index.
        idx: u32,
    },
    /// Build a closure. The argument slice is flattened into `args_off`/
    /// `args_len` (an [`ArgSlice`]'s padding would push this variant past
    /// the 16-byte cell).
    Pap {
        /// Destination.
        dst: Reg,
        /// Target function (VM index).
        func: u32,
        /// Its arity.
        arity: u16,
        /// Captured arguments: offset into the pool.
        args_off: u32,
        /// Captured arguments: count.
        args_len: u16,
    },
    /// Extend a closure, possibly invoking it.
    PapExtend {
        /// Destination.
        dst: Reg,
        /// The closure.
        closure: Reg,
        /// Arguments to add (pool slice).
        args: ArgSlice,
    },
    /// Retain.
    Inc {
        /// The object.
        src: Reg,
    },
    /// Release.
    Dec {
        /// The object.
        src: Reg,
    },
    /// Direct call of a user function.
    Call {
        /// Destination for the result.
        dst: Reg,
        /// VM function index.
        func: u32,
        /// Arguments (pool slice).
        args: ArgSlice,
    },
    /// Call of a runtime builtin.
    CallBuiltin {
        /// Destination.
        dst: Reg,
        /// The builtin.
        builtin: Builtin,
        /// Arguments (pool slice).
        args: ArgSlice,
    },
    /// Guaranteed tail call: reuses the current frame in place.
    TailCall {
        /// VM function index.
        func: u32,
        /// Arguments (pool slice).
        args: ArgSlice,
    },
    /// Return `src` to the caller.
    Ret {
        /// The result.
        src: Reg,
    },
    /// Unconditional jump.
    Jump {
        /// Absolute target.
        target: u32,
    },
    /// Two-way branch on a raw word.
    Branch {
        /// Condition (0 = false).
        cond: Reg,
        /// Target when non-zero.
        then_t: u32,
        /// Target when zero.
        else_t: u32,
    },
    /// Jump table on a raw word; `(value, target)` pairs live in
    /// [`DecodedFn::cases`].
    Switch {
        /// Scrutinee.
        idx: Reg,
        /// Cases (slice of the case pool).
        cases: ArgSlice,
        /// Fallback target.
        default: u32,
    },
    /// `dst ← op(a, b)` on raw words.
    Bin {
        /// The operation.
        op: BinOp,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst ← pred(a, b)` as 0/1.
    Cmp {
        /// The predicate.
        pred: CmpPred,
        /// Destination.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst ← c ? a : b`.
    Select {
        /// Destination.
        dst: Reg,
        /// Condition (raw).
        c: Reg,
        /// Taken when non-zero.
        a: Reg,
        /// Taken when zero.
        b: Reg,
    },
    /// `dst ← src & mask`.
    Mask {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
        /// Bit mask.
        mask: u64,
    },
    /// Register copy.
    Move {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// Read a module global.
    GlobalLoad {
        /// Destination.
        dst: Reg,
        /// Global slot index.
        idx: u32,
    },
    /// Write a module global.
    GlobalStore {
        /// Global slot index.
        idx: u32,
        /// Source.
        src: Reg,
    },
    /// Executing this is a bug.
    Trap,
}

// The whole point of the decoded form: every instruction is one compact,
// pointer-free cell. A grown variant breaks this at compile time.
const _: () = assert!(std::mem::size_of::<DecodedInstr>() <= 16);

impl DecodedInstr {
    /// The statistics class of this instruction.
    pub fn class(self) -> OpClass {
        match self {
            DecodedInstr::ConstInt { .. } | DecodedInstr::LpInt { .. } => OpClass::Const,
            DecodedInstr::LpBig { .. }
            | DecodedInstr::LpStr { .. }
            | DecodedInstr::Construct { .. } => OpClass::Alloc,
            DecodedInstr::GetLabel { .. } | DecodedInstr::Project { .. } => OpClass::Project,
            DecodedInstr::Pap { .. } | DecodedInstr::PapExtend { .. } => OpClass::Closure,
            DecodedInstr::Inc { .. } | DecodedInstr::Dec { .. } => OpClass::Rc,
            DecodedInstr::Call { .. } => OpClass::Call,
            DecodedInstr::CallBuiltin { .. } => OpClass::CallBuiltin,
            DecodedInstr::TailCall { .. } => OpClass::TailCall,
            DecodedInstr::Ret { .. } => OpClass::Ret,
            DecodedInstr::Jump { .. }
            | DecodedInstr::Branch { .. }
            | DecodedInstr::Switch { .. } => OpClass::Branch,
            DecodedInstr::Bin { .. }
            | DecodedInstr::Cmp { .. }
            | DecodedInstr::Select { .. }
            | DecodedInstr::Mask { .. } => OpClass::Arith,
            DecodedInstr::Move { .. } => OpClass::Move,
            DecodedInstr::GlobalLoad { .. } | DecodedInstr::GlobalStore { .. } => OpClass::Global,
            DecodedInstr::Trap => OpClass::Trap,
        }
    }
}

/// A function in decoded form: flat code plus its two side pools.
#[derive(Debug, Clone)]
pub struct DecodedFn {
    /// Source-level name.
    pub name: String,
    /// Number of parameters (passed in registers `0..arity`).
    pub arity: u16,
    /// Total registers used.
    pub n_regs: u16,
    /// The code.
    pub code: Vec<DecodedInstr>,
    /// Shared register-list pool (`Construct`/`Pap`/`Call`/… operands).
    pub args: Vec<Reg>,
    /// Shared switch-table pool: `(value, target)` pairs.
    pub cases: Vec<(i64, u32)>,
}

impl DecodedFn {
    /// The registers of an [`ArgSlice`].
    pub fn arg_regs(&self, s: ArgSlice) -> &[Reg] {
        &self.args[s.range()]
    }

    /// Lowers one [`CompiledFn`].
    fn decode(f: &CompiledFn) -> DecodedFn {
        let mut d = DecodedFn {
            name: f.name.clone(),
            arity: f.arity,
            n_regs: f.n_regs,
            code: Vec::with_capacity(f.code.len()),
            args: Vec::new(),
            cases: Vec::new(),
        };
        assert!(
            u32::try_from(f.code.len()).is_ok(),
            "@{}: function body too large to decode",
            f.name
        );
        // The frame-pool calling convention writes `arity` argument words
        // then resizes to `n_regs`; a malformed function would silently
        // truncate its arguments there, so reject it while decoding.
        assert!(
            f.arity <= f.n_regs,
            "@{}: arity {} exceeds register file size {}",
            f.name,
            f.arity,
            f.n_regs
        );
        for instr in &f.code {
            let decoded = d.decode_instr(instr);
            d.code.push(decoded);
        }
        d
    }

    fn intern_args(&mut self, regs: &[Reg]) -> ArgSlice {
        let off = u32::try_from(self.args.len()).expect("argument pool exhausted");
        let len = u16::try_from(regs.len()).expect("argument list too long");
        self.args.extend_from_slice(regs);
        ArgSlice { off, len }
    }

    fn decode_instr(&mut self, instr: &Instr) -> DecodedInstr {
        let t32 = |t: usize| u32::try_from(t).expect("jump target out of range");
        match *instr {
            Instr::ConstInt { dst, v } => DecodedInstr::ConstInt { dst, v },
            Instr::LpInt { dst, v } => DecodedInstr::LpInt { dst, v },
            Instr::LpBig { dst, idx } => DecodedInstr::LpBig { dst, idx },
            Instr::LpStr { dst, idx } => DecodedInstr::LpStr { dst, idx },
            Instr::Construct { dst, tag, ref args } => DecodedInstr::Construct {
                dst,
                tag,
                args: self.intern_args(args),
            },
            Instr::GetLabel { dst, src } => DecodedInstr::GetLabel { dst, src },
            Instr::Project { dst, src, idx } => DecodedInstr::Project { dst, src, idx },
            Instr::Pap {
                dst,
                func,
                arity,
                ref args,
            } => {
                let s = self.intern_args(args);
                DecodedInstr::Pap {
                    dst,
                    func,
                    arity,
                    args_off: s.off,
                    args_len: s.len,
                }
            }
            Instr::PapExtend {
                dst,
                closure,
                ref args,
            } => DecodedInstr::PapExtend {
                dst,
                closure,
                args: self.intern_args(args),
            },
            Instr::Inc { src } => DecodedInstr::Inc { src },
            Instr::Dec { src } => DecodedInstr::Dec { src },
            Instr::Call {
                dst,
                func,
                ref args,
            } => DecodedInstr::Call {
                dst,
                func,
                args: self.intern_args(args),
            },
            Instr::CallBuiltin {
                dst,
                builtin,
                ref args,
            } => DecodedInstr::CallBuiltin {
                dst,
                builtin,
                args: self.intern_args(args),
            },
            Instr::TailCall { func, ref args } => DecodedInstr::TailCall {
                func,
                args: self.intern_args(args),
            },
            Instr::Ret { src } => DecodedInstr::Ret { src },
            Instr::Jump { target } => DecodedInstr::Jump {
                target: t32(target),
            },
            Instr::Branch {
                cond,
                then_t,
                else_t,
            } => DecodedInstr::Branch {
                cond,
                then_t: t32(then_t),
                else_t: t32(else_t),
            },
            Instr::Switch {
                idx,
                ref cases,
                default,
            } => {
                let off = u32::try_from(self.cases.len()).expect("case pool exhausted");
                let len = u16::try_from(cases.len()).expect("switch too wide");
                self.cases.extend(cases.iter().map(|&(v, t)| (v, t32(t))));
                DecodedInstr::Switch {
                    idx,
                    cases: ArgSlice { off, len },
                    default: t32(default),
                }
            }
            Instr::Bin { op, dst, a, b } => DecodedInstr::Bin { op, dst, a, b },
            Instr::Cmp { pred, dst, a, b } => DecodedInstr::Cmp { pred, dst, a, b },
            Instr::Select { dst, c, a, b } => DecodedInstr::Select { dst, c, a, b },
            Instr::Mask { dst, src, mask } => DecodedInstr::Mask { dst, src, mask },
            Instr::Move { dst, src } => DecodedInstr::Move { dst, src },
            Instr::GlobalLoad { dst, idx } => DecodedInstr::GlobalLoad { dst, idx },
            Instr::GlobalStore { idx, src } => DecodedInstr::GlobalStore { idx, src },
            Instr::Trap => DecodedInstr::Trap,
        }
    }

    /// Reconstructs the enum form of instruction `i` — the inverse of
    /// decoding, used by the round-trip tests and for disassembly.
    pub fn encode(&self, i: usize) -> Instr {
        let regs = |s: ArgSlice| self.arg_regs(s).to_vec();
        match self.code[i] {
            DecodedInstr::ConstInt { dst, v } => Instr::ConstInt { dst, v },
            DecodedInstr::LpInt { dst, v } => Instr::LpInt { dst, v },
            DecodedInstr::LpBig { dst, idx } => Instr::LpBig { dst, idx },
            DecodedInstr::LpStr { dst, idx } => Instr::LpStr { dst, idx },
            DecodedInstr::Construct { dst, tag, args } => Instr::Construct {
                dst,
                tag,
                args: regs(args),
            },
            DecodedInstr::GetLabel { dst, src } => Instr::GetLabel { dst, src },
            DecodedInstr::Project { dst, src, idx } => Instr::Project { dst, src, idx },
            DecodedInstr::Pap {
                dst,
                func,
                arity,
                args_off,
                args_len,
            } => Instr::Pap {
                dst,
                func,
                arity,
                args: regs(ArgSlice {
                    off: args_off,
                    len: args_len,
                }),
            },
            DecodedInstr::PapExtend { dst, closure, args } => Instr::PapExtend {
                dst,
                closure,
                args: regs(args),
            },
            DecodedInstr::Inc { src } => Instr::Inc { src },
            DecodedInstr::Dec { src } => Instr::Dec { src },
            DecodedInstr::Call { dst, func, args } => Instr::Call {
                dst,
                func,
                args: regs(args),
            },
            DecodedInstr::CallBuiltin { dst, builtin, args } => Instr::CallBuiltin {
                dst,
                builtin,
                args: regs(args),
            },
            DecodedInstr::TailCall { func, args } => Instr::TailCall {
                func,
                args: regs(args),
            },
            DecodedInstr::Ret { src } => Instr::Ret { src },
            DecodedInstr::Jump { target } => Instr::Jump {
                target: target as usize,
            },
            DecodedInstr::Branch {
                cond,
                then_t,
                else_t,
            } => Instr::Branch {
                cond,
                then_t: then_t as usize,
                else_t: else_t as usize,
            },
            DecodedInstr::Switch {
                idx,
                cases,
                default,
            } => Instr::Switch {
                idx,
                cases: self.cases[cases.range()]
                    .iter()
                    .map(|&(v, t)| (v, t as usize))
                    .collect(),
                default: default as usize,
            },
            DecodedInstr::Bin { op, dst, a, b } => Instr::Bin { op, dst, a, b },
            DecodedInstr::Cmp { pred, dst, a, b } => Instr::Cmp { pred, dst, a, b },
            DecodedInstr::Select { dst, c, a, b } => Instr::Select { dst, c, a, b },
            DecodedInstr::Mask { dst, src, mask } => Instr::Mask { dst, src, mask },
            DecodedInstr::Move { dst, src } => Instr::Move { dst, src },
            DecodedInstr::GlobalLoad { dst, idx } => Instr::GlobalLoad { dst, idx },
            DecodedInstr::GlobalStore { idx, src } => Instr::GlobalStore { idx, src },
            DecodedInstr::Trap => Instr::Trap,
        }
    }
}

/// A whole program in decoded form. Owns copies of the constant pools so
/// it is self-contained (a [`CompiledProgram`] can be dropped after
/// decoding).
#[derive(Debug, Clone, Default)]
pub struct DecodedProgram {
    /// Functions; closure [`lssa_rt::FuncId`]s index into this.
    pub fns: Vec<DecodedFn>,
    /// Big-integer constant pool.
    pub big_pool: Vec<Nat>,
    /// String constant pool.
    pub str_pool: Vec<String>,
    /// Global slot names.
    pub globals: Vec<String>,
}

impl DecodedProgram {
    /// Looks up a function index by name.
    pub fn fn_index(&self, name: &str) -> Option<usize> {
        self.fns.iter().position(|f| f.name == name)
    }
}

/// Lowers a compiled program to the decoded execution form. Linear in code
/// size; done once per program, not once per executed instruction.
pub fn decode_program(program: &CompiledProgram) -> DecodedProgram {
    DecodedProgram {
        fns: program.fns.iter().map(DecodedFn::decode).collect(),
        big_pool: program.big_pool.clone(),
        str_pool: program.str_pool.clone(),
        globals: program.globals.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decoded_instr_is_compact() {
        assert!(std::mem::size_of::<DecodedInstr>() <= 16);
        // The enum interchange form is strictly wider (it carries `Vec`s).
        assert!(std::mem::size_of::<DecodedInstr>() < std::mem::size_of::<Instr>());
    }

    #[test]
    fn arg_slices_share_one_pool() {
        let f = CompiledFn {
            name: "f".into(),
            arity: 3,
            n_regs: 4,
            code: vec![
                Instr::Construct {
                    dst: Reg(3),
                    tag: 1,
                    args: vec![Reg(0), Reg(1)],
                },
                Instr::Call {
                    dst: Reg(3),
                    func: 0,
                    args: vec![Reg(2), Reg(3), Reg(0)],
                },
                Instr::Ret { src: Reg(3) },
            ],
        };
        let d = DecodedFn::decode(&f);
        assert_eq!(d.args.len(), 5, "both lists live in the one pool");
        let DecodedInstr::Construct { args, .. } = d.code[0] else {
            panic!("expected construct");
        };
        assert_eq!(d.arg_regs(args), &[Reg(0), Reg(1)]);
        let DecodedInstr::Call { args, .. } = d.code[1] else {
            panic!("expected call");
        };
        assert_eq!(d.arg_regs(args), &[Reg(2), Reg(3), Reg(0)]);
    }

    #[test]
    fn switch_tables_round_trip_through_case_pool() {
        let f = CompiledFn {
            name: "f".into(),
            arity: 1,
            n_regs: 1,
            code: vec![
                Instr::Switch {
                    idx: Reg(0),
                    cases: vec![(0, 2), (5, 3)],
                    default: 4,
                },
                Instr::Trap,
                Instr::Ret { src: Reg(0) },
                Instr::Ret { src: Reg(0) },
                Instr::Ret { src: Reg(0) },
            ],
        };
        let d = DecodedFn::decode(&f);
        for (i, original) in f.code.iter().enumerate() {
            assert_eq!(&d.encode(i), original, "instruction {i}");
        }
    }

    #[test]
    fn op_classes_cover_every_instruction() {
        // `ALL` must agree with the discriminants used to index stats.
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(*c as usize, i);
        }
    }
}
