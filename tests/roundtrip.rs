//! Textual IR round-trips at every pipeline stage, for every benchmark:
//! `parse(print(m))` prints identically — the property that makes
//! FileCheck-style testing (Figure 11) possible.

use lambda_ssa::core::PipelineOptions;
use lambda_ssa::driver::pipelines::{frontend, CompilerConfig};
use lambda_ssa::driver::workloads::{all, Scale};
use lambda_ssa::ir::parser::parse_module;
use lambda_ssa::ir::prelude::Module;
use lambda_ssa::ir::printer::print_module;

fn assert_round_trip(m: &Module, what: &str) {
    let text = print_module(m);
    let reparsed =
        parse_module(&text).unwrap_or_else(|e| panic!("{what}: reparse failed: {e}\n{text}"));
    let text2 = print_module(&reparsed);
    assert_eq!(text, text2, "{what}: printer not canonical");
    // And the reparsed module still verifies.
    lambda_ssa::ir::verifier::verify_module(&reparsed)
        .unwrap_or_else(|e| panic!("{what}: reparsed module invalid: {e:?}"));
}

#[test]
fn workloads_round_trip_at_every_stage() {
    for w in all(Scale::Test) {
        let rc = frontend(&w.src, CompilerConfig::mlir()).unwrap();
        // Stage 1: lp.
        let mut m = lambda_ssa::core::lp::from_lambda::lower_program(&rc);
        assert_round_trip(&m, &format!("{} lp", w.name));
        // Stage 2: rgn.
        lambda_ssa::core::rgn::from_lp::lower_module(&mut m);
        assert_round_trip(&m, &format!("{} rgn", w.name));
        // Stage 3: optimized CFG.
        let cfg = lambda_ssa::core::pipeline::compile(&rc, PipelineOptions::full());
        assert_round_trip(&cfg, &format!("{} cfg", w.name));
        // Baseline backend too.
        let base = lambda_ssa::driver::baseline::lower_program(&rc);
        assert_round_trip(&base, &format!("{} baseline", w.name));
    }
}

#[test]
fn parsed_module_executes_identically() {
    // Print → parse → compile → run must give the same result as the
    // original module.
    let w = lambda_ssa::driver::workloads::by_name("filter", Scale::Test).unwrap();
    let rc = frontend(&w.src, CompilerConfig::mlir()).unwrap();
    let m = lambda_ssa::core::pipeline::compile(&rc, PipelineOptions::full());
    let direct = lambda_ssa::vm::compile_module(&m).unwrap();
    let direct_out = lambda_ssa::vm::run_program(&direct, "main", 100_000_000).unwrap();

    let reparsed = parse_module(&print_module(&m)).unwrap();
    let via_text = lambda_ssa::vm::compile_module(&reparsed).unwrap();
    let text_out = lambda_ssa::vm::run_program(&via_text, "main", 100_000_000).unwrap();

    assert_eq!(direct_out.rendered, text_out.rendered);
    assert_eq!(direct_out.stats.instructions, text_out.stats.instructions);
}
