//! Memory behaviour across pipelines: reference counting must balance, and
//! the exclusivity optimization (LEAN's in-place array updates) must fire
//! in compiled code.

use lambda_ssa::driver::pipelines::{compile_and_run, CompilerConfig};
use lambda_ssa::driver::workloads::{all, by_name, Scale};

const MAX_STEPS: u64 = 500_000_000;

#[test]
fn every_workload_frees_everything_on_every_pipeline() {
    for w in all(Scale::Test) {
        for config in lambda_ssa::driver::diff::configs() {
            let out = compile_and_run(&w.src, config, MAX_STEPS).unwrap();
            assert_eq!(
                out.stats.heap.live,
                0,
                "{} [{}] leaked",
                w.name,
                config.label()
            );
            assert_eq!(out.stats.heap.allocs, out.stats.heap.frees);
        }
    }
}

#[test]
fn qsort_arrays_update_in_place() {
    // A linear in-place quicksort allocates O(n) array cells once, not
    // O(n log n) copies: peak live objects stays near the array size.
    let w = by_name("qsort", Scale::Test).unwrap();
    let out = compile_and_run(&w.src, CompilerConfig::mlir(), MAX_STEPS).unwrap();
    // n = 16 at test scale; a copying sort would peak far above this.
    assert!(
        out.stats.heap.peak_live < 64,
        "expected in-place behaviour, peak live = {}",
        out.stats.heap.peak_live
    );
}

#[test]
fn peak_memory_comparable_across_backends() {
    // The paper's claim is performance *and* memory parity; peak live
    // objects should be within 2x between backends on every workload.
    for w in all(Scale::Test) {
        let a = compile_and_run(&w.src, CompilerConfig::leanc(), MAX_STEPS).unwrap();
        let b = compile_and_run(&w.src, CompilerConfig::mlir(), MAX_STEPS).unwrap();
        let (lo, hi) = if a.stats.heap.peak_live < b.stats.heap.peak_live {
            (a.stats.heap.peak_live, b.stats.heap.peak_live)
        } else {
            (b.stats.heap.peak_live, a.stats.heap.peak_live)
        };
        assert!(
            hi <= lo * 2 + 16,
            "{}: peak live diverges, leanc={} mlir={}",
            w.name,
            a.stats.heap.peak_live,
            b.stats.heap.peak_live
        );
    }
}

#[test]
fn allocation_counts_match_reference_interpreter() {
    // The compiled pipelines must do the same number of allocations as the
    // λrc reference interpreter (the RC insertion fixes the program's
    // allocation behaviour; backends must not add hidden allocations).
    let w = by_name("binarytrees", Scale::Test).unwrap();
    let rc = lambda_ssa::driver::pipelines::frontend(&w.src, CompilerConfig::none()).unwrap();
    let oracle = lambda_ssa::lambda::run_program(&rc, "main", true, MAX_STEPS).unwrap();
    let compiled = compile_and_run(&w.src, CompilerConfig::none(), MAX_STEPS).unwrap();
    assert_eq!(oracle.stats.allocs, compiled.stats.heap.allocs);
}
