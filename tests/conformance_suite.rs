//! §V-A: the full conformance run — the analogue of "100% tests passed,
//! 0 tests failed out of 648" on the LEAN test suite.
//!
//! Every corpus program is executed by the reference interpreter and by all
//! four compiled pipelines; all five must agree and release every object.
//!
//! Cases are independent (each differential run owns its interpreter
//! environment and VM heap), so the corpus runs through the shared batch
//! executor (`lssa_driver::par`) — the same subsystem behind the
//! `correctness` binary and the workload smoke oracle. Failures come back
//! in corpus order regardless of the worker count.

use lambda_ssa::driver::conformance::full_corpus;
use lambda_ssa::driver::diff::run_differential;
use lambda_ssa::driver::par::BatchRunner;

const MAX_STEPS: u64 = 500_000_000;

#[test]
fn full_corpus_all_pipelines_agree() {
    let corpus = full_corpus(648, 0x5e5a_2022);
    assert!(corpus.len() >= 648, "corpus must match the paper's scale");
    let failures: Vec<String> = BatchRunner::new()
        .map(&corpus, |case| {
            let r = run_differential(&case.name, &case.src, MAX_STEPS);
            (!r.passed()).then(|| {
                format!(
                    "{}: {}\n--- source ---\n{}",
                    case.name,
                    r.failure.unwrap(),
                    case.src
                )
            })
        })
        .into_iter()
        .flatten()
        .collect();
    assert!(
        failures.is_empty(),
        "{} of {} conformance cases failed:\n{}",
        failures.len(),
        corpus.len(),
        failures.join("\n\n")
    );
}
