//! File-based conformance corpus.
//!
//! `tests/corpus/*.lssa` are the eight benchmark workloads as checked-in
//! text (regenerate with `cargo run --example gen_corpus`); each sibling
//! `.expected` holds the checksum `main()` must print at `Scale::Test`.
//! The tests here pin three invariants:
//!
//! 1. the corpus is exactly what the generator produces (no silent drift
//!    between the workloads, the lowering, and the formatter),
//! 2. every file parses to the *same AST* as the programmatic build and
//!    executes to its checksum under every compiler configuration and both
//!    decode modes (fused and no-fuse), batch-compiled on the parallel
//!    driver with one job per file,
//! 3. `tests/corpus/bad/*.lssa` keep reporting byte-identical JSON
//!    diagnostics (stable codes *and* spans) — the machine-readable
//!    interface `lssa check --format json` promises to tooling.

use lambda_ssa::driver::pipelines::{compile_batch_asts, CompilerConfig};
use lambda_ssa::driver::workloads::{all, Scale};
use lambda_ssa::{lambda, syntax, vm};
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

const MAX_STEPS: u64 = 2_000_000_000;

fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// All `.lssa` files directly inside `dir`, sorted by name.
fn lssa_files(dir: &Path) -> Vec<PathBuf> {
    let mut files: Vec<PathBuf> = std::fs::read_dir(dir)
        .unwrap_or_else(|e| panic!("{}: {e}", dir.display()))
        .map(|entry| entry.expect("read_dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "lssa") && p.is_file())
        .collect();
    files.sort();
    files
}

fn stem(path: &Path) -> &str {
    path.file_stem()
        .and_then(|s| s.to_str())
        .expect("utf-8 stem")
}

#[test]
fn corpus_matches_generator_exactly() {
    let workloads = all(Scale::Test);
    for w in &workloads {
        let path = corpus_dir().join(format!("{}.lssa", w.name));
        let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "{}: {e} — regenerate with `cargo run --example gen_corpus`",
                path.display()
            )
        });
        let program = lambda::parse_program(&w.src).expect("workload parses");
        assert_eq!(
            text,
            syntax::print_program(&program),
            "{}: corpus file is stale — rerun `cargo run --example gen_corpus`",
            w.name
        );
        // The text round-trips to the exact AST the programmatic build
        // produces, id bounds included.
        assert_eq!(
            syntax::parse_program(&text).expect("corpus parses"),
            program,
            "{}: parsed corpus differs from programmatic AST",
            w.name
        );
        let expected = std::fs::read_to_string(corpus_dir().join(format!("{}.expected", w.name)))
            .expect("sibling .expected");
        assert_eq!(expected.trim_end(), w.expected_test, "{}", w.name);
    }
    // No orphan corpus files either: every .lssa maps back to a workload.
    let names: BTreeSet<&str> = workloads.iter().map(|w| w.name).collect();
    let files = lssa_files(&corpus_dir());
    assert_eq!(files.len(), workloads.len(), "corpus count");
    for f in &files {
        assert!(
            names.contains(stem(f)),
            "{}: no matching workload",
            f.display()
        );
    }
}

#[test]
fn corpus_is_canonically_formatted() {
    for path in lssa_files(&corpus_dir()) {
        let src = std::fs::read_to_string(&path).expect("read corpus file");
        let formatted = syntax::format_source(&src).expect("corpus formats");
        assert_eq!(
            formatted,
            src,
            "{}: not canonical (lssa fmt --write)",
            path.display()
        );
    }
}

#[test]
fn corpus_executes_under_every_config_and_decode_mode() {
    let files = lssa_files(&corpus_dir());
    let programs: Vec<lambda::ast::Program> = files
        .iter()
        .map(|path| {
            let src = std::fs::read_to_string(path).expect("read corpus file");
            syntax::parse_program(&src).unwrap_or_else(|d| panic!("{}: {d:?}", path.display()))
        })
        .collect();
    let expected: Vec<String> = files
        .iter()
        .map(|path| {
            std::fs::read_to_string(path.with_extension("expected"))
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()))
                .trim_end()
                .to_string()
        })
        .collect();
    for config in [
        CompilerConfig::leanc(),
        CompilerConfig::mlir(),
        CompilerConfig::rgn_only(),
        CompilerConfig::none(),
    ] {
        // One batch job per file: the corpus doubles as a smoke test of the
        // parallel batch driver on the AST entry point.
        let (results, _report) = compile_batch_asts(&programs, config, files.len());
        for ((path, compiled), want) in files.iter().zip(&results).zip(&expected) {
            let compiled = compiled
                .as_ref()
                .unwrap_or_else(|e| panic!("[{}] {}: {e}", config.label(), path.display()));
            for decode in [vm::DecodeOptions::fused(), vm::DecodeOptions::no_fuse()] {
                let out = vm::run_program_with(compiled, "main", MAX_STEPS, decode)
                    .unwrap_or_else(|e| panic!("[{}] {}: {e}", config.label(), path.display()));
                assert_eq!(
                    &out.rendered,
                    want,
                    "[{}] {} (fused={})",
                    config.label(),
                    path.display(),
                    decode.fuse
                );
                assert_eq!(
                    out.stats.heap.live,
                    0,
                    "[{}] {}: leak",
                    config.label(),
                    path.display()
                );
            }
        }
    }
}

#[test]
fn bad_corpus_diagnostics_are_stable() {
    let dir = corpus_dir().join("bad");
    let files = lssa_files(&dir);
    assert!(
        files.len() >= 12,
        "bad corpus shrank: {} files",
        files.len()
    );
    let mut codes_seen: BTreeSet<&'static str> = BTreeSet::new();
    for path in &files {
        let src = std::fs::read_to_string(path).expect("read bad corpus file");
        let name = path
            .file_name()
            .and_then(|s| s.to_str())
            .expect("file name");
        let diags = syntax::check_source(&src);
        assert!(!diags.is_empty(), "{name}: expected diagnostics");
        codes_seen.extend(diags.iter().map(|d| d.code));
        // Goldens embed only the file *name*, so they are path-independent.
        let got = syntax::render_all(&diags, name, &src, syntax::RenderFormat::Json);
        let want = std::fs::read_to_string(path.with_extension("expected"))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(got, want, "{name}: diagnostics drifted from the golden");
    }
    // The corpus must keep covering the syntax error class and the full
    // range of wellformedness codes it was built for.
    for code in [
        "E0003", "E0101", "E0102", "E0103", "E0104", "E0105", "E0106", "E0107", "E0108", "E0109",
        "E0110", "E0112", "E0113",
    ] {
        assert!(
            codes_seen.contains(code),
            "bad corpus no longer covers {code}"
        );
    }
}

#[test]
fn lint_corpus_findings_are_stable() {
    // `tests/corpus/bad/lint/*.lssa` are accepted-but-suspicious programs:
    // every file passes `check` cleanly, triggers at least one `E02xx`
    // finding, and its JSON rendering is pinned byte-for-byte — the machine
    // interface `lssa lint --format json` promises to tooling. Together the
    // files cover every lint code.
    let dir = corpus_dir().join("bad/lint");
    let files = lssa_files(&dir);
    assert!(
        files.len() >= 6,
        "lint corpus shrank: {} files",
        files.len()
    );
    let mut codes_seen: BTreeSet<&'static str> = BTreeSet::new();
    for path in &files {
        let src = std::fs::read_to_string(path).expect("read lint corpus file");
        let name = path
            .file_name()
            .and_then(|s| s.to_str())
            .expect("file name");
        assert!(
            syntax::check_source(&src).is_empty(),
            "{name}: lint corpus files must pass `check` — only lints allowed"
        );
        let diags = lambda_ssa::driver::lint::lint_source(&src);
        assert!(!diags.is_empty(), "{name}: expected lint findings");
        codes_seen.extend(diags.iter().map(|d| d.code));
        let got = syntax::render_all(&diags, name, &src, syntax::RenderFormat::Json);
        let want = std::fs::read_to_string(path.with_extension("expected"))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(got, want, "{name}: findings drifted from the golden");
    }
    for code in ["E0201", "E0202", "E0203", "E0204", "E0205", "E0206"] {
        assert!(
            codes_seen.contains(code),
            "lint corpus no longer covers {code}"
        );
    }
}

#[test]
fn good_corpus_is_lint_error_free() {
    // The workload corpus must keep linting without error-severity
    // findings: warnings (e.g. an unprovable RC verdict on rc-opt output)
    // are allowed, a proven RC imbalance is not.
    for path in lssa_files(&corpus_dir()) {
        let src = std::fs::read_to_string(&path).expect("read corpus file");
        let diags = lambda_ssa::driver::lint::lint_source(&src);
        assert!(
            !lambda_ssa::driver::lint::has_errors(&diags),
            "{}: {diags:?}",
            path.display()
        );
    }
}

#[test]
fn bad_corpus_agrees_with_the_ast_checker() {
    // Satellite guarantee: `lssa check` (text frontend) and `lssa run`
    // (AST checker via the pipeline) name defects identically. For every
    // bad-corpus file whose *syntax* is fine, the AST checker must report
    // the same set of codes the text frontend reported.
    let dir = corpus_dir().join("bad");
    for path in lssa_files(&dir) {
        let src = std::fs::read_to_string(&path).expect("read bad corpus file");
        let outcome = syntax::parse_source(&src);
        let Some(program) = outcome.program else {
            continue; // syntactically broken: the AST checker never sees it
        };
        let mut text_codes: BTreeSet<&'static str> =
            outcome.diagnostics.iter().map(|d| d.code).collect();
        // One deliberate refinement: where the AST checker reports a join
        // capture twice (E0101 out-of-scope *and* E0105 capture), the text
        // frontend classifies it as the single more precise E0105.
        if text_codes.contains("E0105") {
            text_codes.insert("E0101");
        }
        let ast_codes: BTreeSet<&'static str> = match lambda::check_program(&program) {
            Ok(()) => BTreeSet::new(),
            Err(errs) => errs.iter().map(|e| e.code).collect(),
        };
        assert!(
            ast_codes.is_subset(&text_codes),
            "{}: AST checker found {ast_codes:?}, text frontend {text_codes:?}",
            path.display()
        );
    }
}
