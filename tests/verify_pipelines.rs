//! Workloads × pipeline configurations under full per-pass verification.
//!
//! Exercises the pass engine's `verify_each` path (every pass followed by
//! the IR verifier) together with the new `verify_rc` mode (every pass from
//! `rc-opt` onward followed by the RC-linearity checker) across all 8
//! built-in workloads and every pipeline configuration. A definite
//! `Unbalanced` verdict on compiler output panics inside the pipeline, so
//! compiling at all is the assertion; on top of that the final module must
//! contain no unbalanced function.
//!
//! The default run covers the full matrix at `Scale::Test`; with
//! `--features slow-tests` it also sweeps the generated conformance corpus.

use lssa_core::pipeline::PipelineOptions;
use lssa_driver::pipelines::{frontend, CompilerConfig};
use lssa_driver::workloads;
use lssa_ir::analysis::rc_check;
use lssa_ir::body::Body;
use lssa_ir::opcode::Opcode;
use lssa_ir::types::Type;

fn configs() -> Vec<(&'static str, PipelineOptions)> {
    let mut full = PipelineOptions::full();
    let mut no_opt = PipelineOptions::no_opt();
    let mut no_rgn = PipelineOptions::without_region_opts();
    let mut no_rc = PipelineOptions::full();
    no_rc.rc_opt = false;
    for opts in [&mut full, &mut no_opt, &mut no_rgn, &mut no_rc] {
        opts.verify = true;
        opts.verify_rc = true;
    }
    vec![
        ("full", full),
        ("no_opt", no_opt),
        ("without_region_opts", no_rgn),
        ("full_norc", no_rc),
    ]
}

#[test]
fn workloads_compile_verified_and_rc_balanced() {
    for w in workloads::all(workloads::Scale::Test) {
        let rc = frontend(&w.src, CompilerConfig::mlir()).expect("frontend");
        for (label, opts) in configs() {
            let module = lssa_core::pipeline::compile(&rc, opts);
            let verdicts = rc_check::check_module(&module);
            let mut balanced = 0usize;
            let mut unprovable = 0usize;
            for (sym, v) in &verdicts {
                match v {
                    lssa_ir::analysis::RcVerdict::Balanced => balanced += 1,
                    lssa_ir::analysis::RcVerdict::Unprovable { reason } => {
                        unprovable += 1;
                        println!(
                            "  [unprovable] {}/{}: @{}: {}",
                            w.name,
                            label,
                            module.name_of(*sym),
                            reason
                        );
                    }
                    lssa_ir::analysis::RcVerdict::Unbalanced { detail, path } => {
                        panic!(
                            "{}/{}: @{} unbalanced: {} (path {:?})",
                            w.name,
                            label,
                            module.name_of(*sym),
                            detail,
                            path
                        );
                    }
                }
            }
            println!(
                "{}/{}: {} balanced, {} unprovable of {}",
                w.name,
                label,
                balanced,
                unprovable,
                verdicts.len()
            );
        }
    }
}

/// Prepends a spurious `lp_dec` of the first `!lp.t`-typed entry parameter —
/// the canonical "broken rewrite": one extra release on every path. Returns
/// `false` when the function has no boxed parameter to break.
fn inject_spurious_dec(body: &mut Body) -> bool {
    let entry = body.entry_block();
    let Some(&victim) = body.blocks[entry.index()]
        .args
        .iter()
        .find(|&&a| body.value_type(a) == Type::Obj)
    else {
        return false;
    };
    let op = body.create_op(Opcode::LpDec, vec![victim], &[], vec![]);
    body.ops[op.index()].parent = Some(entry);
    body.blocks[entry.index()].ops.insert(0, op);
    true
}

#[test]
fn injected_unbalanced_dec_is_caught_with_a_path() {
    // Every function the checker proves balanced must flip to a definite
    // `Unbalanced` verdict — with a concrete block path — once a rewrite
    // sneaks in one extra `lp_dec` of an owned parameter.
    let w = &workloads::all(workloads::Scale::Test)[0];
    let rc = frontend(&w.src, CompilerConfig::mlir()).expect("frontend");
    let module = lssa_core::pipeline::compile(&rc, PipelineOptions::full());
    let mut broken_at_least_once = false;
    for i in 0..module.funcs.len() {
        let sym = module.funcs[i].name;
        if module.funcs[i].body.is_none() {
            continue;
        }
        if !matches!(
            rc_check::check_function(&module, sym),
            lssa_ir::analysis::RcVerdict::Balanced
        ) {
            continue;
        }
        let mut sabotaged = module.clone();
        let body = sabotaged.funcs[i].body.as_mut().expect("checked above");
        if !inject_spurious_dec(body) {
            continue;
        }
        broken_at_least_once = true;
        match rc_check::check_function(&sabotaged, sym) {
            lssa_ir::analysis::RcVerdict::Unbalanced { detail, path } => {
                assert!(
                    !path.is_empty(),
                    "@{}: unbalanced verdict must carry a path",
                    module.name_of(sym)
                );
                println!(
                    "@{}: caught — {} (path {:?})",
                    module.name_of(sym),
                    detail,
                    path
                );
            }
            other => panic!(
                "@{}: spurious dec not caught, verdict {:?}",
                module.name_of(sym),
                other
            ),
        }
    }
    assert!(
        broken_at_least_once,
        "no function was eligible for sabotage"
    );
}

/// A "pass" that deliberately unbalances the first breakable function, to
/// prove the in-pipeline `verify_rc` mode fails loudly with the pass name.
struct SabotagePass;

impl lssa_ir::pass::Pass for SabotagePass {
    fn name(&self) -> &'static str {
        "sabotage"
    }

    fn run_on(&self, module: &mut lssa_ir::module::Module) -> bool {
        for f in &mut module.funcs {
            if let Some(body) = &mut f.body {
                if inject_spurious_dec(body) {
                    return true;
                }
            }
        }
        false
    }
}

#[test]
#[should_panic(expected = "rc verification failed after pass `sabotage`")]
fn verify_rc_mode_panics_on_a_broken_pass() {
    let w = &workloads::all(workloads::Scale::Test)[0];
    let rc = frontend(&w.src, CompilerConfig::mlir()).expect("frontend");
    let mut module = lssa_core::pipeline::compile(&rc, PipelineOptions::full());
    lssa_ir::pass::PassManager::named("post")
        .verify_rc(true)
        .add(SabotagePass)
        .run(&mut module);
}

/// Slow sweep: the generated conformance corpus through every pipeline
/// configuration with per-pass IR verification *and* the RC checker on.
/// Compiling without a panic is the assertion.
#[cfg(feature = "slow-tests")]
#[test]
fn conformance_corpus_compiles_verified_and_rc_checked() {
    use lssa_driver::conformance::generated;
    for case in generated(24, 0xcc_2026) {
        let rc = frontend(&case.src, CompilerConfig::mlir())
            .unwrap_or_else(|e| panic!("{}: {e}", case.name));
        for (label, opts) in configs() {
            let module = lssa_core::pipeline::compile(&rc, opts);
            for (sym, v) in rc_check::check_module(&module) {
                assert!(
                    !matches!(v, lssa_ir::analysis::RcVerdict::Unbalanced { .. }),
                    "{}/{}: @{} unbalanced: {:?}",
                    case.name,
                    label,
                    module.name_of(sym),
                    v
                );
            }
        }
    }
}
