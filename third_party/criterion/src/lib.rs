//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! The build environment has no crates.io access, so this vendored shim
//! implements the benchmark-group API lambda-ssa's `fig9_speedup` and
//! `fig10_rgn_opts` benches use. It measures real wall-clock time (median
//! over `sample_size` samples after a warm-up) and prints one line per
//! benchmark; there is no statistical analysis, plotting, or baseline
//! comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function, mirroring
/// `criterion::black_box`.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// The benchmark harness entry point.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Applies CLI configuration. This shim accepts and ignores all
    /// arguments (the real crate parses `--bench`, filters, etc.).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            _parent: self,
        }
    }

    /// Benchmarks `f` outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let report = run_bench(
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        println!("{id:<40} {report}");
        self
    }
}

/// A named group of benchmarks sharing measurement settings.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    _parent: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Sets the warm-up time per benchmark.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        let report = run_bench(
            self.sample_size,
            self.warm_up_time,
            self.measurement_time,
            &mut f,
        );
        println!("{id:<40} {report}");
        self
    }

    /// Finishes the group.
    pub fn finish(&mut self) {}
}

/// Passed to benchmark closures; [`Bencher::iter`] times the routine.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
}

impl Bencher {
    /// Times one execution of `routine` and records the sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.samples.push(start.elapsed());
        drop(black_box(out));
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
    f: &mut F,
) -> String {
    // Warm-up: run without recording until the warm-up budget is spent.
    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up {
        let mut b = Bencher::default();
        f(&mut b);
        if b.samples.is_empty() {
            break; // routine never called iter(); nothing to warm
        }
    }

    // Measurement: collect samples until we have `sample_size` of them or
    // the measurement budget is exhausted (at least one sample always).
    let mut samples: Vec<Duration> = Vec::with_capacity(sample_size);
    let bench_start = Instant::now();
    while samples.len() < sample_size {
        let mut b = Bencher::default();
        f(&mut b);
        samples.extend(b.samples);
        if bench_start.elapsed() > measurement && !samples.is_empty() {
            break;
        }
        if samples.is_empty() {
            return "no samples (closure never called iter())".to_string();
        }
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    format!(
        "median {:>12.3?}  mean {:>12.3?}  ({} samples)",
        median,
        mean,
        samples.len()
    )
}

/// Declares a group of benchmark functions, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
