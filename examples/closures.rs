//! Figure 7: closures via `lp.pap` / `lp.papextend`.
//!
//! `k10` partially applies `k` (building a closure); `ap42` extends an
//! arbitrary closure with one more argument, invoking it on saturation;
//! passing the bare function `k` to `ap42` requires wrapping it in an empty
//! closure — exactly the cases the paper walks through.
//!
//! Run with: `cargo run --example closures`

use lambda_ssa::driver::{compile_and_run, CompilerConfig};
use lambda_ssa::ir::opcode::Opcode;

const PROGRAM: &str = r#"
def k(x, y) := x

def k10(y) := k(10)(y)

def ap42(f) := f(42)

-- Pass the top-level function itself as a value: an empty closure.
def k42() := ap42(k)

def main() :=
  let a := k10(5);          -- k(10, 5)      = 10
  let b := ap42(k(7));      -- k(7, 42)      = 7
  let c := k42()(99);       -- k(42, 99)     = 42
  a * 10000 + b * 100 + c
"#;

fn main() {
    let program = lambda_ssa::lambda::parse_program(PROGRAM).expect("parse");
    let rc = lambda_ssa::lambda::insert_rc(&program);
    let module = lambda_ssa::core::lp::from_lambda::lower_program(&rc);

    println!("=== closure operations in the lp module ===");
    for f in &module.funcs {
        let Some(body) = &f.body else { continue };
        let paps = body
            .walk_ops()
            .iter()
            .filter(|&&op| body.ops[op.index()].opcode == Opcode::LpPap)
            .count();
        let extends = body
            .walk_ops()
            .iter()
            .filter(|&&op| body.ops[op.index()].opcode == Opcode::LpPapExtend)
            .count();
        if paps + extends > 0 {
            println!(
                "  @{}: {} lp.pap, {} lp.papextend",
                module.name_of(f.name),
                paps,
                extends
            );
        }
    }

    let out = compile_and_run(PROGRAM, CompilerConfig::mlir(), 10_000_000).expect("run");
    println!("main() = {} (expected 100742)", out.rendered);
    assert_eq!(out.rendered, "100742");
    assert_eq!(out.stats.heap.live, 0, "every closure freed");
    println!("heap balanced: every closure allocation was released");
}
