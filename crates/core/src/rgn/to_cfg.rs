//! Lowering `rgn` to a flat CFG (§IV-C of the paper), plus guaranteed
//! tail-call elimination (§III-E).
//!
//! "Since the semantics of rgn is given entirely by adding extra structure
//! to flat CFGs, rgn can be lowered by forgetting this extra structure. The
//! lowering is driven entirely by rgn.run: (1) a rgn.run of a known rgn.val
//! is compiled to a branch of the region that is run, (2) a rgn.run of a
//! switch (or select) is compiled to a jump-table. Finally, dead rgn.val
//! instructions are entirely dropped."

use lssa_ir::attr::AttrKey;
use lssa_ir::body::{Body, ROOT_REGION};
use lssa_ir::builder::Builder;
use lssa_ir::ids::{BlockId, OpId, ValueId};
use lssa_ir::module::Module;
use lssa_ir::opcode::Opcode;
use lssa_ir::pass::{for_each_function, Pass};
use lssa_ir::rewrite::erase_trivially_dead;
use lssa_ir::types::Type;
use std::collections::HashMap;

/// Lowers every `rgn.run` in `body` to CFG branches, flattening region
/// values into real basic blocks; `lp.ret` becomes `func.return`.
///
/// # Panics
///
/// Panics if a region value flows from anything other than `rgn.val`,
/// `arith.select`, or `arith.switch_val` (the rgn verifier forbids it).
pub fn lower_body(body: &mut Body) {
    // Drop dead region values first so unreferenced regions never
    // materialize ("dead rgn.val instructions are entirely dropped").
    erase_trivially_dead(body);
    let mut cache: HashMap<ValueId, BlockId> = HashMap::new();
    loop {
        let run = find_root_run(body);
        let Some(run) = run else { break };
        let operands = body.ops[run.index()].operands.clone();
        let rv = operands[0];
        let args = operands[1..].to_vec();
        let arg_tys: Vec<Type> = args.iter().map(|&a| body.value_type(a)).collect();
        let target = target_for(body, rv, &arg_tys, &mut cache);
        let parent = body.ops[run.index()].parent.expect("detached run");
        body.erase_op(run);
        let mut b = Builder::at_end(body, parent);
        b.br(target, args);
    }
    // lp.ret → func.return.
    for block in body.regions[ROOT_REGION.index()].blocks.clone() {
        if let Some(term) = body.terminator(block) {
            if body.ops[term.index()].opcode == Opcode::LpReturn {
                let v = body.ops[term.index()].operands[0];
                body.erase_op(term);
                let mut b = Builder::at_end(body, block);
                b.ret(v);
            }
        }
    }
    // Selector chains and emptied rgn.vals are now dead.
    erase_trivially_dead(body);
    lssa_ir::passes::simplify_cfg::remove_unreachable_blocks(body);
}

/// Finds a `rgn.run` attached to a root-region block.
fn find_root_run(body: &Body) -> Option<OpId> {
    for &block in &body.regions[ROOT_REGION.index()].blocks {
        for &op in &body.blocks[block.index()].ops {
            if body.ops[op.index()].opcode == Opcode::RgnRun {
                return Some(op);
            }
        }
    }
    None
}

/// Resolves a region value to a branch-target block, materializing regions
/// and dispatch blocks as needed.
fn target_for(
    body: &mut Body,
    v: ValueId,
    arg_tys: &[Type],
    cache: &mut HashMap<ValueId, BlockId>,
) -> BlockId {
    if let Some(&t) = cache.get(&v) {
        return t;
    }
    let def = body
        .defining_op(v)
        .expect("region value must be op-defined");
    let target = match body.ops[def.index()].opcode {
        Opcode::RgnVal => {
            // (1) Known region: its blocks become real CFG blocks.
            let region = body.ops[def.index()].regions[0];
            let blocks = std::mem::take(&mut body.regions[region.index()].blocks);
            let entry = blocks[0];
            for &bl in &blocks {
                body.blocks[bl.index()].parent = Some(ROOT_REGION);
                body.regions[ROOT_REGION.index()].blocks.push(bl);
            }
            entry
        }
        Opcode::Select => {
            // (2) Conditional dispatch block.
            let ops = body.ops[def.index()].operands.clone();
            let (c, a, bb) = (ops[0], ops[1], ops[2]);
            let ta = target_for(body, a, arg_tys, cache);
            let tb = target_for(body, bb, arg_tys, cache);
            let dispatch = body.new_block(ROOT_REGION, arg_tys);
            let dargs = body.blocks[dispatch.index()].args.clone();
            let mut b = Builder::at_end(body, dispatch);
            b.cond_br(c, (ta, dargs.clone()), (tb, dargs));
            dispatch
        }
        Opcode::SwitchVal => {
            // (2') Jump table.
            let ops = body.ops[def.index()].operands.clone();
            let cases = body.ops[def.index()]
                .attr(AttrKey::Cases)
                .and_then(|a| a.as_int_list())
                .expect("switch_val without cases")
                .to_vec();
            let idx = ops[0];
            let vals = &ops[1..ops.len() - 1];
            let default = ops[ops.len() - 1];
            let targets: Vec<BlockId> = vals
                .iter()
                .map(|&x| target_for(body, x, arg_tys, cache))
                .collect();
            let tdefault = target_for(body, default, arg_tys, cache);
            let dispatch = body.new_block(ROOT_REGION, arg_tys);
            let dargs = body.blocks[dispatch.index()].args.clone();
            let mut b = Builder::at_end(body, dispatch);
            b.switch_br(
                idx,
                cases,
                targets.into_iter().map(|t| (t, dargs.clone())).collect(),
                (tdefault, dargs),
            );
            dispatch
        }
        other => panic!("rgn.run of a value defined by {other}"),
    };
    cache.insert(v, target);
    target
}

/// The module-level rgn→CFG lowering pass.
#[derive(Debug, Default, Clone, Copy)]
pub struct RgnToCfgPass;

impl Pass for RgnToCfgPass {
    fn name(&self) -> &'static str {
        "rgn-to-cfg"
    }

    fn run_on(&self, module: &mut Module) -> bool {
        for_each_function(module, |_, body| {
            lower_body(body);
            true
        })
    }
}

/// Tail-call elimination.
///
/// Rewrites `…; %r = func.call @f(args); [inc/dec not touching %r;]
/// func.return %r` into `…; rc-ops; func.tail_call @f(args)`.
///
/// `only_self` models the heuristic TCO of a C compiler (the paper's
/// baseline, Figure 11): only self-recursive calls are guaranteed. With
/// `only_self = false` this is the `musttail` guarantee of the MLIR backend.
#[derive(Debug, Clone, Copy)]
pub struct TcoPass {
    /// Restrict to self-recursive tail calls (heuristic mode).
    pub only_self: bool,
}

impl Pass for TcoPass {
    fn name(&self) -> &'static str {
        "tail-call-elimination"
    }

    fn run_on(&self, module: &mut Module) -> bool {
        let mut changed = false;
        // Which symbols name user-defined (non-extern) functions. Captured
        // up front: bodies are detached while being rewritten, which must
        // not make a function look external to its own recursive calls.
        let user_fns: std::collections::HashSet<lssa_ir::ids::Symbol> = module
            .funcs
            .iter()
            .filter(|f| !f.is_extern())
            .map(|f| f.name)
            .collect();
        for i in 0..module.funcs.len() {
            let Some(mut body) = module.funcs[i].body.take() else {
                continue;
            };
            let me = module.funcs[i].name;
            for block in body.regions[ROOT_REGION.index()].blocks.clone() {
                changed |= try_tco_block(&mut body, block, self.only_self, me, &user_fns);
            }
            module.funcs[i].body = Some(body);
        }
        changed
    }
}

fn try_tco_block(
    body: &mut Body,
    block: BlockId,
    only_self: bool,
    me: lssa_ir::ids::Symbol,
    user_fns: &std::collections::HashSet<lssa_ir::ids::Symbol>,
) -> bool {
    let ops = body.blocks[block.index()].ops.clone();
    if ops.len() < 2 {
        return false;
    }
    let term = *ops.last().unwrap();
    if body.ops[term.index()].opcode != Opcode::Return {
        return false;
    }
    let returned = body.ops[term.index()].operands[0];
    // Scan backwards over rc ops to the producing call.
    let mut rc_ops = Vec::new();
    let mut idx = ops.len() - 1;
    let call = loop {
        if idx == 0 {
            return false;
        }
        idx -= 1;
        let op = ops[idx];
        match body.ops[op.index()].opcode {
            Opcode::LpInc | Opcode::LpDec => {
                if body.ops[op.index()].operands[0] == returned {
                    return false; // rc op touches the result
                }
                rc_ops.push(op);
            }
            Opcode::Call => break op,
            _ => return false,
        }
    };
    if body.ops[call.index()].result() != Some(returned) {
        return false;
    }
    // The result must have no other uses.
    if body.users_of(returned).len() != 1 {
        return false;
    }
    let callee = body.ops[call.index()]
        .attr(AttrKey::Callee)
        .and_then(|a| a.as_sym())
        .expect("call without callee");
    if only_self && callee != me {
        return false;
    }
    // Only user functions participate (builtins do not recurse).
    if !user_fns.contains(&callee) {
        return false;
    }
    let args = body.ops[call.index()].operands.to_vec();
    // The rc ops must not release a value being passed to the callee.
    for &rc in &rc_ops {
        if args.contains(&body.ops[rc.index()].operands[0]) {
            return false;
        }
    }
    // Hoist the rc ops before the call (they only touch values dead after
    // the call), then replace call+return with a tail call.
    for &rc in rc_ops.iter().rev() {
        body.detach_op(rc);
    }
    for &rc in rc_ops.iter().rev() {
        body.insert_op_before(call, rc);
    }
    body.erase_op(term);
    body.erase_op(call);
    let mut b = Builder::at_end(body, block);
    b.tail_call(callee, args);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lp::from_lambda::lower_program;
    use crate::rgn::from_lp;
    use lssa_ir::printer::print_module;
    use lssa_ir::verifier::verify_module;
    use lssa_lambda::{insert_rc, parse_program};

    fn compile(src: &str) -> Module {
        let p = parse_program(src).unwrap();
        lssa_lambda::check_program(&p).unwrap();
        let rc = insert_rc(&p);
        let mut m = lower_program(&rc);
        from_lp::lower_module(&mut m);
        RgnToCfgPass.run(&mut m);
        if let Err(errs) = verify_module(&m) {
            let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            panic!(
                "CFG module does not verify:\n{}\n{}",
                msgs.join("\n"),
                print_module(&m)
            );
        }
        m
    }

    fn assert_flat(m: &Module) {
        for f in &m.funcs {
            let Some(body) = &f.body else { continue };
            for op in body.walk_ops() {
                let opcode = body.ops[op.index()].opcode;
                assert!(
                    opcode.dialect() != "rgn"
                        && !matches!(
                            opcode,
                            Opcode::LpSwitch
                                | Opcode::LpJoinPoint
                                | Opcode::LpJump
                                | Opcode::LpReturn
                        ),
                    "{opcode} survived CFG lowering"
                );
                assert!(
                    body.ops[op.index()].regions.is_empty()
                        || body.ops[op.index()]
                            .regions
                            .iter()
                            .all(|&r| body.regions[r.index()].blocks.is_empty()),
                    "non-empty nested region after lowering"
                );
            }
        }
    }

    #[test]
    fn boolean_case_becomes_cond_br() {
        let m = compile("def f(b) := if b then 1 else 2");
        assert_flat(&m);
        let text = print_module(&m);
        assert!(text.contains("cf.cond_br"), "{text}");
        assert!(text.contains("func.return"), "{text}");
    }

    #[test]
    fn n_way_case_becomes_jump_table() {
        let m = compile(
            r#"
inductive Shape := Dot | Line(a) | Tri(a, b) | Quad(a, b, c)
def corners(s) :=
  case s of
  | Dot => 0
  | Line(a) => 2
  | Tri(a, b) => 3
  | Quad(a, b, c) => 4
  end
"#,
        );
        assert_flat(&m);
        let text = print_module(&m);
        assert!(text.contains("cf.switch"), "{text}");
    }

    #[test]
    fn join_point_blocks_are_shared_not_duplicated() {
        // Figure 5: the default arm is deduplicated via the join point; in
        // the CFG the shared code appears exactly once.
        let m = compile(
            r#"
def eval(x, y, z) :=
  case x of
  | 0 =>
    case y of
    | 2 => 40
    | _ =>
      case z of
      | 2 => 50
      | _ => 60
      end
    end
  | _ => 60
  end
"#,
        );
        assert_flat(&m);
        let f = m.func_by_name("eval").unwrap();
        let body = f.body.as_ref().unwrap();
        // 60 appears in two λ arms but both jump to one join point…
        // except the lowering of the source duplicates the *value* 60
        // literally per arm. Count lp.int {value = 60}: must be ≤ 2 (the
        // surface program spells it twice; the match compiler must not
        // *add* copies).
        let sixties = body
            .walk_ops()
            .iter()
            .filter(|&&op| {
                body.ops[op.index()].opcode == Opcode::LpInt
                    && body.ops[op.index()]
                        .attr(AttrKey::Value)
                        .and_then(|a| a.as_int())
                        == Some(60)
            })
            .count();
        assert!(sixties <= 2, "default arm duplicated: {sixties} copies");
    }

    #[test]
    fn recursion_compiles_and_verifies() {
        let m = compile(
            r#"
inductive List := Nil | Cons(h, t)
def len(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => 1 + len(t)
  end
"#,
        );
        assert_flat(&m);
    }

    #[test]
    fn guaranteed_tco_rewrites_tail_calls() {
        let mut m = compile(
            r#"
def loop(n, acc) :=
  if n == 0 then acc else loop(n - 1, acc + n)
def start(n) := loop(n, 0)
"#,
        );
        assert!(TcoPass { only_self: false }.run(&mut m).changed);
        verify_module(&m).unwrap();
        let text = print_module(&m);
        assert!(text.contains("func.tail_call"), "{text}");
        // `start`'s call to loop is also a tail call under the guarantee.
        let start = m.func_by_name("start").unwrap();
        let body = start.body.as_ref().unwrap();
        let has_tail = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::TailCall);
        assert!(has_tail, "{text}");
    }

    #[test]
    fn heuristic_tco_only_self_recursive() {
        let mut m = compile(
            r#"
def loop(n, acc) :=
  if n == 0 then acc else loop(n - 1, acc + n)
def start(n) := loop(n, 0)
"#,
        );
        assert!(TcoPass { only_self: true }.run(&mut m).changed);
        verify_module(&m).unwrap();
        let start = m.func_by_name("start").unwrap();
        let body = start.body.as_ref().unwrap();
        let has_tail = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::TailCall);
        assert!(!has_tail, "cross-function call must stay a plain call");
        let lp = m.func_by_name("loop").unwrap();
        let body = lp.body.as_ref().unwrap();
        let has_tail = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::TailCall);
        assert!(has_tail, "self recursion is the heuristic case");
    }

    #[test]
    fn rc_ops_hoisted_across_tail_call() {
        // dec of a dead local between call and return must not block TCO.
        let mut m = compile(
            r#"
inductive List := Nil | Cons(h, t)
def drop_all(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => drop_all(t)
  end
"#,
        );
        TcoPass { only_self: false }.run(&mut m);
        verify_module(&m).unwrap();
        let f = m.func_by_name("drop_all").unwrap();
        let body = f.body.as_ref().unwrap();
        let has_tail = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::TailCall);
        assert!(has_tail, "{}", print_module(&m));
    }
}
