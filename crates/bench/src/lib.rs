//! # lssa-bench: the evaluation harness
//!
//! Regenerates every table and figure of the paper's evaluation (§V):
//!
//! - **Figure 9** — speedup of the lp+rgn backend over the leanc-style
//!   baseline, per benchmark plus geomean ([`fig9_rows`]),
//! - **Figure 10** — rgn optimizations vs the λrc simplifier vs nothing
//!   ([`fig10_rows`]),
//! - **Figure 11** — the qualitative ecosystem matrix, with every row
//!   backed by an executable probe (`fig11_matrix` binary),
//! - **§V-A correctness** — the conformance run (`correctness` binary).
//!
//! Timing uses the median of several in-process runs; the deterministic
//! VM instruction counts are reported alongside as a noise-free metric.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use lssa_driver::pipelines::{compile, CompilerConfig};
use lssa_driver::workloads::{self, Scale, Workload};
use lssa_vm::CompiledProgram;
use std::time::{Duration, Instant};

/// Step budget for benchmark runs.
pub const MAX_STEPS: u64 = 20_000_000_000;

/// One benchmark measurement.
#[derive(Debug, Clone, Copy)]
pub struct Measurement {
    /// Median wall-clock time of the runs.
    pub time: Duration,
    /// VM instructions executed (identical across runs).
    pub instructions: u64,
}

/// Compiles once, runs `runs` times, returns the median time.
///
/// The program is pre-decoded once (memoized,
/// [`CompiledProgram::decoded`]) so the timed region measures pure
/// execution, not per-run decode cost. Superinstruction fusion is on —
/// the default execution mode; fused-vs-`--no-fuse` comparisons live in
/// `lssa_driver::benchjson` (`lssa bench --json`).
///
/// # Panics
///
/// Panics if compilation or execution fails — benchmarks must be green
/// before being timed.
pub fn measure(program: &CompiledProgram, runs: usize) -> Measurement {
    assert!(runs >= 1);
    let decoded = program.decoded(lssa_vm::DecodeOptions::default());
    let mut times = Vec::with_capacity(runs);
    let mut instructions = 0;
    for _ in 0..runs {
        let start = Instant::now();
        let out = lssa_vm::run_decoded(&decoded, "main", MAX_STEPS).expect("benchmark run");
        times.push(start.elapsed());
        instructions = out.stats.instructions;
        assert_eq!(out.stats.heap.live, 0, "benchmark leaked");
    }
    times.sort();
    Measurement {
        time: times[times.len() / 2],
        instructions,
    }
}

/// Compiles a workload under a configuration.
///
/// # Panics
///
/// Panics on pipeline failures.
pub fn build(w: &Workload, config: CompilerConfig) -> CompiledProgram {
    compile(&w.src, config).unwrap_or_else(|e| panic!("{} [{}]: {e}", w.name, config.label()))
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 1.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

/// A row of a speedup figure.
#[derive(Debug, Clone)]
pub struct SpeedupRow {
    /// Benchmark name.
    pub name: String,
    /// Wall-clock speedup (baseline time / variant time).
    pub speedup_time: f64,
    /// Instruction-count speedup (deterministic).
    pub speedup_instr: f64,
}

/// Figure 9: speedup of the lp+rgn backend over the leanc baseline.
pub fn fig9_rows(scale: Scale, runs: usize) -> Vec<SpeedupRow> {
    workloads::all(scale)
        .iter()
        .map(|w| {
            let base = measure(&build(w, CompilerConfig::leanc()), runs);
            let mlir = measure(&build(w, CompilerConfig::mlir()), runs);
            SpeedupRow {
                name: w.name.to_string(),
                speedup_time: base.time.as_secs_f64() / mlir.time.as_secs_f64(),
                speedup_instr: base.instructions as f64 / mlir.instructions as f64,
            }
        })
        .collect()
}

/// Figure 10 variants: (a) λrc-simplified baseline of the MLIR pipeline,
/// (b) unsimplified + rgn optimizations, (c) unsimplified + nothing.
pub fn fig10_configs() -> [(&'static str, CompilerConfig); 3] {
    [
        ("λrc simplifier", CompilerConfig::mlir()),
        ("rgn simplifier", CompilerConfig::rgn_only()),
        ("none", CompilerConfig::none()),
    ]
}

/// Figure 10: speedups of variants (b) and (c) over variant (a), per
/// benchmark. Returns `(name, rgn_speedup, none_speedup)` rows.
pub fn fig10_rows(scale: Scale, runs: usize) -> Vec<(String, SpeedupRow, SpeedupRow)> {
    workloads::all(scale)
        .iter()
        .map(|w| {
            let a = measure(&build(w, CompilerConfig::mlir()), runs);
            let b = measure(&build(w, CompilerConfig::rgn_only()), runs);
            let c = measure(&build(w, CompilerConfig::none()), runs);
            let rgn = SpeedupRow {
                name: w.name.to_string(),
                speedup_time: a.time.as_secs_f64() / b.time.as_secs_f64(),
                speedup_instr: a.instructions as f64 / b.instructions as f64,
            };
            let none = SpeedupRow {
                name: w.name.to_string(),
                speedup_time: a.time.as_secs_f64() / c.time.as_secs_f64(),
                speedup_instr: a.instructions as f64 / c.instructions as f64,
            };
            (w.name.to_string(), rgn, none)
        })
        .collect()
}

/// Renders an ASCII bar for a speedup value (figure-style output).
pub fn bar(speedup: f64, width: usize) -> String {
    let filled = ((speedup / 1.5) * width as f64)
        .round()
        .clamp(0.0, width as f64) as usize;
    let mut s = String::new();
    for i in 0..width {
        s.push(if i < filled { '█' } else { ' ' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 0.5]) - 1.0).abs() < 1e-12);
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 1.0);
    }

    #[test]
    fn bar_rendering() {
        assert_eq!(bar(1.5, 10).matches('█').count(), 10);
        assert_eq!(bar(0.0, 10).matches('█').count(), 0);
        assert_eq!(bar(0.75, 10).matches('█').count(), 5);
    }

    #[test]
    fn measure_and_build_work_on_test_scale() {
        let w = workloads::by_name("filter", Scale::Test).unwrap();
        let p = build(&w, CompilerConfig::mlir());
        let m = measure(&p, 3);
        assert!(m.instructions > 0);
    }
}
