//! Property-based validation of the `lssa-ir` analysis framework.
//!
//! The worklist-solver liveness is checked against an independent oracle:
//! a naive per-value backward reachability scan that never touches the
//! generic dataflow machinery. For every compiled function body of a
//! generated program (full pipeline, flat CFG) and every SSA value, the
//! two must agree on live-in and live-out at every reachable block.
//!
//! The oracle: a value is live-in at block `b` iff `b` uses it without
//! defining it, or some successor is live-in and `b` does not define it —
//! computed one value at a time by plain backward BFS over the block
//! graph. SSA's single-definition property is what makes the block-level
//! formulation exact (a same-block use can never precede the definition).

use lambda_ssa::driver::conformance::generated;
use lambda_ssa::ir::analysis::{BlockGraph, Liveness};
use lambda_ssa::ir::body::Body;
use lambda_ssa::ir::ids::{BlockId, ValueId};
use lambda_ssa::lambda::{insert_rc, parse_program};
use lssa_core::pipeline::{compile, PipelineOptions};
use proptest::prelude::*;
use std::collections::{HashMap, HashSet, VecDeque};

/// Per-block use/def sets matching the liveness transfer's view: operands
/// and successor arguments are uses; op results and block arguments are
/// defs.
fn block_uses_defs(body: &Body, b: BlockId) -> (HashSet<ValueId>, HashSet<ValueId>) {
    let mut uses = HashSet::new();
    let mut defs: HashSet<ValueId> = body.blocks[b.index()].args.iter().copied().collect();
    for &op in &body.blocks[b.index()].ops {
        let data = &body.ops[op.index()];
        uses.extend(data.operands.iter().copied());
        for s in &data.successors {
            uses.extend(s.args.iter().copied());
        }
        defs.extend(data.results.iter().copied());
    }
    (uses, defs)
}

/// The oracle: per-value backward BFS. Returns (live_in, live_out) maps
/// over the reachable blocks.
fn naive_liveness(
    body: &Body,
    graph: &BlockGraph,
) -> (
    HashMap<BlockId, HashSet<ValueId>>,
    HashMap<BlockId, HashSet<ValueId>>,
) {
    let blocks: Vec<BlockId> = graph.rpo().to_vec();
    let sets: HashMap<BlockId, (HashSet<ValueId>, HashSet<ValueId>)> = blocks
        .iter()
        .map(|&b| (b, block_uses_defs(body, b)))
        .collect();
    let mut live_in: HashMap<BlockId, HashSet<ValueId>> =
        blocks.iter().map(|&b| (b, HashSet::new())).collect();
    let mut live_out = live_in.clone();
    let every_value: HashSet<ValueId> = sets
        .values()
        .flat_map(|(u, d)| u.iter().chain(d.iter()).copied())
        .collect();
    for v in every_value {
        // Seed: blocks that use v without defining it are live-in for v.
        let mut in_set: HashSet<BlockId> = HashSet::new();
        let mut queue: VecDeque<BlockId> = VecDeque::new();
        for &b in &blocks {
            let (uses, defs) = &sets[&b];
            if uses.contains(&v) && !defs.contains(&v) && in_set.insert(b) {
                queue.push_back(b);
            }
        }
        // Propagate: a live-in successor makes each predecessor live-out,
        // and live-in too unless the predecessor defines v.
        let mut out_set: HashSet<BlockId> = HashSet::new();
        while let Some(b) = queue.pop_front() {
            for &p in graph.preds(b) {
                out_set.insert(p);
                if !sets[&p].1.contains(&v) && in_set.insert(p) {
                    queue.push_back(p);
                }
            }
        }
        for b in in_set {
            live_in.get_mut(&b).expect("reachable").insert(v);
        }
        for b in out_set {
            live_out.get_mut(&b).expect("reachable").insert(v);
        }
    }
    (live_in, live_out)
}

fn check_function(body: &Body) -> Result<(), TestCaseError> {
    let graph = BlockGraph::root(body);
    let liveness = Liveness::compute(body, &graph);
    let (naive_in, naive_out) = naive_liveness(body, &graph);
    for &b in graph.rpo() {
        let solver_in = liveness.live_in(b).expect("reachable block has facts");
        let solver_out = liveness.live_out(b).expect("reachable block has facts");
        prop_assert_eq!(solver_in, &naive_in[&b], "live-in mismatch at {:?}", b);
        prop_assert_eq!(solver_out, &naive_out[&b], "live-out mismatch at {:?}", b);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: if cfg!(feature = "slow-tests") { 64 } else { 24 },
        .. ProptestConfig::default()
    })]

    /// Worklist liveness equals the naive per-value rescan on every
    /// function of every generated program, compiled flat.
    #[test]
    fn solver_liveness_matches_naive_oracle(seed in any::<u32>()) {
        let case = generated(1, seed as u64 ^ 0xda7a_f10f).remove(0);
        let program = parse_program(&case.src).expect("generated programs parse");
        let rc = insert_rc(&program);
        let module = compile(&rc, PipelineOptions::full());
        for f in &module.funcs {
            if let Some(body) = &f.body {
                check_function(body)?;
            }
        }
    }
}
