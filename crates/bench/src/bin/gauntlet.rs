//! Deterministic fault-injection gauntlet: thousands of governed jobs over
//! mixed workloads with seeded faults, proving the engine's failure
//! isolation end to end.
//!
//! ```text
//! cargo run --release -p lssa-bench --bin gauntlet [-- --seed N] [--count N]
//!     [--jobs N] [--out FILE] [--no-determinism-check]
//! ```
//!
//! Each case derives a (workload, fault) pair from `--seed` and its case
//! index alone: step-budget exhaustion at a planted count, a heap byte-cap
//! trip, an allocation-count trip, a planted engine panic, cooperative
//! cancellation, a frame-depth cap, a zero wall-clock deadline, or no fault
//! at all. Every distinct workload is compiled and decoded **once** and the
//! `Arc<DecodedProgram>` shared across all jobs, so the run also proves the
//! decode cache survives sibling aborts. The harness asserts, per case:
//!
//! - **no process abort** — planted panics become structured
//!   `JobError::Panicked` entries (any panic escaping the job layer is an
//!   `ESCAPED-PANIC` failure);
//! - **zero leaked heap objects** on every abort path (the job layer's
//!   drop-all sweep plus ledger audit, `leaked == 0`);
//! - **the VM survives the abort** — the post-abort reuse probe re-runs the
//!   same program on the same VM (`probe != FAILED`).
//!
//! Per-case report lines exclude wall-clock time, so the full report is
//! byte-identical for any `--jobs` value; unless `--no-determinism-check`
//! is given the harness re-runs everything single-threaded and compares.
//! `--out FILE` writes the per-case report (the CI artifact).
//!
//! Exit codes: `0` all assertions held, `1` at least one violation,
//! `2` bad command-line arguments.

use lssa_driver::jobs::{execute_decoded, JobSpec};
use lssa_driver::par::{available_jobs, BatchRunner};
use lssa_driver::pipelines::{compile, CompilerConfig};
use lssa_driver::workloads::{all, Scale};
use lssa_vm::{DecodeOptions, DecodedProgram, ExecOptions, FaultPlan, JobLimits};
use std::collections::BTreeMap;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Backstop step budget: no case runs longer than this, faulted or not
/// (the pathological workloads diverge by design).
const BACKSTOP_STEPS: u64 = 2_000_000;

/// Pathological programs mixed into the workload pool, chosen to exercise
/// specific abort paths.
const PATHOLOGICAL: &[(&str, &str)] = &[
    // Diverging tail loop: constant space, infinite steps. The `n < 0`
    // guard is unreachable from `spin(0)` but gives the lowering a loop
    // exit (base-case-free recursion does not terminate *compilation*).
    (
        "spin",
        "def spin(n) := if n < 0 then 0 else spin(n + 1)\ndef main() := spin(0)",
    ),
    // Diverging allocator: one fresh cell per iteration.
    (
        "allocbomb",
        "inductive List := Nil | Cons(h, t)\n\
         def grow(n, acc) := if n < 0 then acc else grow(n + 1, Cons(n, acc))\n\
         def main() := grow(0, Nil)",
    ),
    // Deep non-tail recursion: one frame per step of descent.
    (
        "deeprec",
        "def deep(n) := if n == 0 then 0 else 1 + deep(n - 1)\n\
         def main() := deep(50000)",
    ),
];

struct Options {
    seed: u64,
    count: usize,
    jobs: usize,
    out: Option<String>,
    determinism_check: bool,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        seed: 0,
        count: 1024,
        jobs: available_jobs(),
        out: None,
        determinism_check: true,
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].as_str();
        match flag {
            "--seed" | "--count" | "--jobs" | "--out" => {
                let value = args
                    .get(i + 1)
                    .ok_or_else(|| format!("`{flag}` needs a value"))?;
                match flag {
                    "--seed" => {
                        opts.seed = value
                            .parse()
                            .map_err(|_| format!("`--seed` needs an integer, got `{value}`"))?;
                    }
                    "--count" => {
                        opts.count = value
                            .parse()
                            .map_err(|_| format!("`--count` needs an integer, got `{value}`"))?;
                    }
                    "--jobs" => {
                        let jobs: usize = value
                            .parse()
                            .map_err(|_| format!("`--jobs` needs an integer, got `{value}`"))?;
                        if jobs == 0 {
                            return Err("`--jobs` must be at least 1".to_string());
                        }
                        opts.jobs = jobs;
                    }
                    _ => opts.out = Some(value.to_string()),
                }
                i += 2;
            }
            "--no-determinism-check" => {
                opts.determinism_check = false;
                i += 1;
            }
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    Ok(opts)
}

/// SplitMix64-style finalizer: the only randomness source, so a (seed,
/// index) pair fully determines a case on any machine.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x = x.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    x ^ (x >> 33)
}

/// One planned case: which decoded program to run under which spec.
struct Case {
    idx: usize,
    program: usize,
    workload: String,
    fault: &'static str,
    spec: JobSpec,
}

/// Derives case `idx` from the seed: workload choice, fault choice, and
/// fault parameters all come out of two independent hash draws.
fn plan_case(idx: usize, seed: u64, n_programs: usize) -> (usize, &'static str, JobSpec) {
    let h = mix(seed ^ (idx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
    let p = mix(h ^ 0xdead_beef_cafe_f00d);
    let program = (h % n_programs as u64) as usize;
    let mut limits = JobLimits::default().with_steps(BACKSTOP_STEPS);
    let mut fault_plan = FaultPlan::default();
    let fault = match (h >> 32) % 8 {
        0 => "none",
        1 => {
            limits = limits.with_steps(10_000 + p % 50_000);
            "step-budget"
        }
        2 => {
            fault_plan.exhaust_at = Some(5_000 + p % 20_000);
            "exhaust-at"
        }
        3 => {
            fault_plan.trip_alloc = Some(100 + p % 5_000);
            "trip-alloc"
        }
        4 => {
            limits = limits.with_heap_bytes(4_096 + p % 65_536);
            "heap-bytes"
        }
        5 => {
            fault_plan.panic_at = Some(1_000 + p % 100_000);
            "panic-at"
        }
        6 => {
            fault_plan.cancel_at = Some(1_000 + p % 100_000);
            "cancel-at"
        }
        _ => {
            limits = limits.with_max_depth(4 + p % 64);
            "depth-cap"
        }
    };
    // A zero deadline trips at the first poll checkpoint, which is a
    // deterministic step count — the only wall-clock fault that stays
    // reproducible. Layer it on a slice of the no-fault cases.
    if fault == "none" && p.is_multiple_of(3) {
        limits = limits.with_deadline(Some(Duration::ZERO));
        let spec = JobSpec {
            exec: ExecOptions::default().with_limits(limits),
            ..JobSpec::default()
        };
        return (program, "deadline-zero", spec);
    }
    let spec = JobSpec {
        exec: ExecOptions::default()
            .with_limits(limits)
            .with_fault(fault_plan),
        ..JobSpec::default()
    };
    (program, fault, spec)
}

/// A case's verdict: its deterministic report line, plus any assertion
/// violation.
struct Verdict {
    line: String,
    violation: Option<String>,
}

fn run_case(case: &Case, program: &DecodedProgram) -> Verdict {
    let report = execute_decoded(program, "main", &case.spec);
    let mut violations = Vec::new();
    if report.leaked != 0 {
        violations.push(format!("leaked {} heap objects", report.leaked));
    }
    if report.probe_ok == Some(false) {
        violations.push("post-abort reuse probe failed".to_string());
    }
    let line = format!(
        "case {:06} workload={} fault={} {}",
        case.idx,
        case.workload,
        case.fault,
        report.to_line()
    );
    Verdict {
        line,
        violation: if violations.is_empty() {
            None
        } else {
            Some(violations.join("; "))
        },
    }
}

/// Runs every case across `jobs` workers in quarantine mode. Returns
/// (report lines, violations) in input order.
fn run_all(
    cases: &[Case],
    programs: &[Arc<DecodedProgram>],
    jobs: usize,
) -> (Vec<String>, Vec<String>) {
    let runner = BatchRunner::new().with_jobs(jobs);
    let verdicts = runner.map_quarantined(cases, |case| run_case(case, &programs[case.program]));
    let mut lines = Vec::with_capacity(cases.len());
    let mut violations = Vec::new();
    for (case, v) in cases.iter().zip(verdicts) {
        match v {
            Ok(verdict) => {
                if let Some(why) = verdict.violation {
                    violations.push(format!("case {:06}: {why}", case.idx));
                }
                lines.push(verdict.line);
            }
            Err(p) => {
                // A panic that escaped the job layer entirely: the process
                // survived (quarantine), but the isolation contract did not.
                violations.push(format!("case {:06}: ESCAPED-PANIC {}", case.idx, p.message));
                lines.push(format!(
                    "case {:06} workload={} fault={} ESCAPED-PANIC",
                    case.idx, case.workload, case.fault
                ));
            }
        }
    }
    (lines, violations)
}

#[allow(clippy::too_many_lines)]
fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!(
                "usage: gauntlet [--seed N] [--count N] [--jobs N] [--out FILE] [--no-determinism-check]"
            );
            return ExitCode::from(2);
        }
    };
    let started = Instant::now();

    // Planted panics are the point of the exercise: keep their default
    // panic-hook output (message + backtrace, one per injected fault) off
    // stderr. Anything else panicking still reports normally.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let planted = info
            .payload()
            .downcast_ref::<String>()
            .is_some_and(|m| m.starts_with("fault injection:"));
        if !planted {
            prev_hook(info);
        }
    }));

    // Compile + decode every distinct workload once; all jobs share the
    // resulting Arc<DecodedProgram> (and its decode cache).
    let mut sources: Vec<(String, String)> = all(Scale::Test)
        .into_iter()
        .map(|w| (w.name.to_string(), w.src))
        .collect();
    sources.extend(
        PATHOLOGICAL
            .iter()
            .map(|&(name, src)| (name.to_string(), src.to_string())),
    );
    let mut names = Vec::new();
    let mut programs: Vec<Arc<DecodedProgram>> = Vec::new();
    for (name, src) in &sources {
        match compile(src, CompilerConfig::mlir()) {
            Ok(compiled) => {
                names.push(name.clone());
                programs.push(compiled.decoded(DecodeOptions::default()));
            }
            Err(e) => {
                eprintln!("error: workload `{name}` failed to compile: {e}");
                return ExitCode::FAILURE;
            }
        }
    }
    eprintln!(
        "[gauntlet] {} workloads compiled, planning {} cases (seed {})",
        programs.len(),
        opts.count,
        opts.seed
    );

    let cases: Vec<Case> = (0..opts.count)
        .map(|idx| {
            let (program, fault, spec) = plan_case(idx, opts.seed, programs.len());
            Case {
                idx,
                program,
                workload: names[program].clone(),
                fault,
                spec,
            }
        })
        .collect();

    let (lines, mut violations) = run_all(&cases, &programs, opts.jobs);

    if opts.determinism_check && opts.jobs != 1 {
        eprintln!("[gauntlet] determinism check: re-running single-threaded");
        let (serial_lines, _) = run_all(&cases, &programs, 1);
        if serial_lines != lines {
            let first = lines
                .iter()
                .zip(&serial_lines)
                .position(|(a, b)| a != b)
                .unwrap_or(0);
            violations.push(format!(
                "reports differ between --jobs {} and --jobs 1 at case {first}: `{}` vs `{}`",
                opts.jobs, lines[first], serial_lines[first]
            ));
        }
    }

    // Aggregate per-outcome counts for the summary (and the artifact).
    let mut by_outcome: BTreeMap<String, usize> = BTreeMap::new();
    for line in &lines {
        let key = if line.contains(" ok ") {
            "ok".to_string()
        } else if let Some(pos) = line.find("\"kind\":\"") {
            let rest = &line[pos + 8..];
            rest[..rest.find('"').unwrap_or(rest.len())].to_string()
        } else {
            "escaped-panic".to_string()
        };
        *by_outcome.entry(key).or_default() += 1;
    }

    let mut summary = String::new();
    summary.push_str(&format!(
        "gauntlet seed={} count={} jobs={}\n",
        opts.seed, opts.count, opts.jobs
    ));
    for (kind, n) in &by_outcome {
        summary.push_str(&format!("  {kind}: {n}\n"));
    }
    summary.push_str(&format!("  violations: {}\n", violations.len()));
    eprint!("{summary}");
    eprintln!(
        "[gauntlet] {} cases in {:.2}s",
        opts.count,
        started.elapsed().as_secs_f64()
    );

    if let Some(path) = &opts.out {
        let mut body = summary.clone();
        for v in &violations {
            body.push_str(&format!("VIOLATION {v}\n"));
        }
        body.push_str(&lines.join("\n"));
        body.push('\n');
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("error: cannot write `{path}`: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("[gauntlet] per-case report written to {path}");
    }

    if violations.is_empty() {
        println!(
            "GAUNTLET PASS: {} cases, 0 process aborts, 0 leaks, all probes ok",
            opts.count
        );
        ExitCode::SUCCESS
    } else {
        println!("GAUNTLET FAIL: {} violations", violations.len());
        for v in &violations {
            println!("  {v}");
        }
        ExitCode::FAILURE
    }
}
