//! The operation set, organized by dialect.
//!
//! The IR mirrors MLIR's dialect structure with a closed opcode set:
//!
//! - `arith` — integer constants, arithmetic, comparisons, and the
//!   value-level selectors `select` / `switch_val` that the `rgn` dialect
//!   piggybacks on (§IV: "We allow rgn.val values to be passed as operands to
//!   MLIR's select and switch instructions").
//! - `cf` — unstructured control flow (the "std" CFG target of §IV-C).
//! - `func` — calls, guaranteed tail calls (`musttail`, §III-E), returns.
//! - `lp` — the paper's λrc embedding (Figure 2).
//! - `rgn` — regions as SSA values: `rgn.val` / `rgn.run` (§IV).

use std::fmt;

/// Effect class of an operation, driving DCE/CSE legality.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Purity {
    /// No side effects, no allocation: freely CSE-able and DCE-able.
    Pure,
    /// Allocates a fresh (immutable, refcounted) object: DCE-able when
    /// unused, but *not* CSE-able without reference-count repair.
    Alloc,
    /// Observable effect (refcount mutation, global store, call): neither.
    Effect,
}

/// An operation code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[non_exhaustive]
pub enum Opcode {
    // ---- arith ----------------------------------------------------------
    /// `arith.constant {value} : ty` — integer constant.
    ConstI,
    /// `arith.addi` — wrapping addition.
    AddI,
    /// `arith.subi` — wrapping subtraction.
    SubI,
    /// `arith.muli` — wrapping multiplication.
    MulI,
    /// `arith.divi` — signed division (traps on 0 at execution).
    DivI,
    /// `arith.remi` — signed remainder.
    RemI,
    /// `arith.andi` — bitwise and.
    AndI,
    /// `arith.ori` — bitwise or.
    OrI,
    /// `arith.xori` — bitwise xor.
    XorI,
    /// `arith.cmpi {pred}` — integer comparison, yields `i1`.
    CmpI,
    /// `arith.select (cond, a, b)` — value selection; works on *any* type,
    /// including region values (the hook the paper's Fig 1B relies on).
    Select,
    /// `arith.switch_val {cases} (idx, v0..vn, default)` — N-way value
    /// selection; the value-level counterpart of `cf.switch`, likewise usable
    /// on region values (Fig 8B).
    SwitchVal,
    /// `arith.extui` — zero-extend to a wider integer type.
    ExtUI,
    /// `arith.trunci` — truncate to a narrower integer type.
    TruncI,
    // ---- cf ---------------------------------------------------------------
    /// `cf.br [^dest(args)]` — unconditional branch.
    Br,
    /// `cf.cond_br (c) [^then(..), ^else(..)]` — conditional branch.
    CondBr,
    /// `cf.switch {cases} (idx) [^case0.., ^default]` — jump table.
    SwitchBr,
    /// `cf.unreachable` — control never reaches here.
    Unreachable,
    // ---- func ---------------------------------------------------------------
    /// `func.call {callee} (args) : ret` — direct call.
    Call,
    /// `func.tail_call {callee} (args)` — guaranteed tail call (terminator;
    /// the value returned by the callee becomes this function's result).
    TailCall,
    /// `func.return (v)` — return from function.
    Return,
    // ---- lp (Figure 2) --------------------------------------------------
    /// `lp.int {value}` — machine-word integer as a boxed value.
    LpInt,
    /// `lp.bigint {value = "…"} ` — arbitrary-precision integer constant.
    LpBigInt,
    /// `lp.str {value = "…"}` — string constant (an extension over the
    /// paper's Figure 2; LEAN strings are runtime objects too).
    LpStr,
    /// `lp.construct {tag} (fields…)` — data constructor.
    LpConstruct,
    /// `lp.getlabel (v)` — constructor tag as `i8`.
    LpGetLabel,
    /// `lp.project {index} (v)` — constructor field access.
    LpProject,
    /// `lp.pap {callee, arity} (args…)` — build a closure (partial application).
    LpPap,
    /// `lp.papextend (closure, args…)` — extend a closure; calls when saturated.
    LpPapExtend,
    /// `lp.joinpoint {label} (jp-region, body-region)` — declare a join point;
    /// control enters the body ("pre-jump") region. Terminator.
    LpJoinPoint,
    /// `lp.jump {label} (args…)` — jump to an enclosing join point. Terminator.
    LpJump,
    /// `lp.switch {cases} (tag) (region…, default-region)` — pattern-match
    /// dispatch on an integer tag. Terminator.
    LpSwitch,
    /// `lp.inc (v)` — increment reference count.
    LpInc,
    /// `lp.dec (v)` — decrement reference count.
    LpDec,
    /// `lp.ret (v)` — return a boxed value from lp control flow. Terminator.
    LpReturn,
    /// `lp.global.load {global}` — read a top-level closure slot (Fig 7).
    LpGlobalLoad,
    /// `lp.global.store {global} (v)` — initialize a top-level closure slot.
    LpGlobalStore,
    // ---- rgn (§IV) ----------------------------------------------------------
    /// `rgn.val (region)` — wrap a sub-computation as an SSA value.
    RgnVal,
    /// `rgn.run (r, args…)` — transfer control into a region value. Terminator.
    RgnRun,
}

impl Opcode {
    /// Every opcode (parser registry, exhaustiveness tests).
    pub const ALL: &'static [Opcode] = &[
        Opcode::ConstI,
        Opcode::AddI,
        Opcode::SubI,
        Opcode::MulI,
        Opcode::DivI,
        Opcode::RemI,
        Opcode::AndI,
        Opcode::OrI,
        Opcode::XorI,
        Opcode::CmpI,
        Opcode::Select,
        Opcode::SwitchVal,
        Opcode::ExtUI,
        Opcode::TruncI,
        Opcode::Br,
        Opcode::CondBr,
        Opcode::SwitchBr,
        Opcode::Unreachable,
        Opcode::Call,
        Opcode::TailCall,
        Opcode::Return,
        Opcode::LpInt,
        Opcode::LpBigInt,
        Opcode::LpStr,
        Opcode::LpConstruct,
        Opcode::LpGetLabel,
        Opcode::LpProject,
        Opcode::LpPap,
        Opcode::LpPapExtend,
        Opcode::LpJoinPoint,
        Opcode::LpJump,
        Opcode::LpSwitch,
        Opcode::LpInc,
        Opcode::LpDec,
        Opcode::LpReturn,
        Opcode::LpGlobalLoad,
        Opcode::LpGlobalStore,
        Opcode::RgnVal,
        Opcode::RgnRun,
    ];

    /// The fully-qualified operation name, e.g. `arith.addi`.
    pub fn name(self) -> &'static str {
        match self {
            Opcode::ConstI => "arith.constant",
            Opcode::AddI => "arith.addi",
            Opcode::SubI => "arith.subi",
            Opcode::MulI => "arith.muli",
            Opcode::DivI => "arith.divi",
            Opcode::RemI => "arith.remi",
            Opcode::AndI => "arith.andi",
            Opcode::OrI => "arith.ori",
            Opcode::XorI => "arith.xori",
            Opcode::CmpI => "arith.cmpi",
            Opcode::Select => "arith.select",
            Opcode::SwitchVal => "arith.switch_val",
            Opcode::ExtUI => "arith.extui",
            Opcode::TruncI => "arith.trunci",
            Opcode::Br => "cf.br",
            Opcode::CondBr => "cf.cond_br",
            Opcode::SwitchBr => "cf.switch",
            Opcode::Unreachable => "cf.unreachable",
            Opcode::Call => "func.call",
            Opcode::TailCall => "func.tail_call",
            Opcode::Return => "func.return",
            Opcode::LpInt => "lp.int",
            Opcode::LpBigInt => "lp.bigint",
            Opcode::LpStr => "lp.str",
            Opcode::LpConstruct => "lp.construct",
            Opcode::LpGetLabel => "lp.getlabel",
            Opcode::LpProject => "lp.project",
            Opcode::LpPap => "lp.pap",
            Opcode::LpPapExtend => "lp.papextend",
            Opcode::LpJoinPoint => "lp.joinpoint",
            Opcode::LpJump => "lp.jump",
            Opcode::LpSwitch => "lp.switch",
            Opcode::LpInc => "lp.inc",
            Opcode::LpDec => "lp.dec",
            Opcode::LpReturn => "lp.ret",
            Opcode::LpGlobalLoad => "lp.global.load",
            Opcode::LpGlobalStore => "lp.global.store",
            Opcode::RgnVal => "rgn.val",
            Opcode::RgnRun => "rgn.run",
        }
    }

    /// The dialect prefix of the operation.
    pub fn dialect(self) -> &'static str {
        self.name().split('.').next().unwrap()
    }

    /// Looks an opcode up by its fully-qualified name.
    pub fn by_name(name: &str) -> Option<Opcode> {
        Opcode::ALL.iter().copied().find(|o| o.name() == name)
    }

    /// Whether the operation terminates its block.
    pub fn is_terminator(self) -> bool {
        matches!(
            self,
            Opcode::Br
                | Opcode::CondBr
                | Opcode::SwitchBr
                | Opcode::Unreachable
                | Opcode::TailCall
                | Opcode::Return
                | Opcode::LpJoinPoint
                | Opcode::LpJump
                | Opcode::LpSwitch
                | Opcode::LpReturn
                | Opcode::RgnRun
        )
    }

    /// The operation's effect class (see [`Purity`]).
    pub fn purity(self) -> Purity {
        match self {
            Opcode::ConstI
            | Opcode::AddI
            | Opcode::SubI
            | Opcode::MulI
            | Opcode::DivI
            | Opcode::RemI
            | Opcode::AndI
            | Opcode::OrI
            | Opcode::XorI
            | Opcode::CmpI
            | Opcode::Select
            | Opcode::SwitchVal
            | Opcode::ExtUI
            | Opcode::TruncI
            | Opcode::LpGetLabel
            | Opcode::LpProject
            | Opcode::LpInt
            | Opcode::RgnVal => Purity::Pure,
            Opcode::LpBigInt | Opcode::LpStr | Opcode::LpConstruct | Opcode::LpPap => Purity::Alloc,
            Opcode::Call
            | Opcode::LpPapExtend
            | Opcode::LpInc
            | Opcode::LpDec
            | Opcode::LpGlobalLoad
            | Opcode::LpGlobalStore => Purity::Effect,
            // Terminators never participate in DCE/CSE.
            Opcode::Br
            | Opcode::CondBr
            | Opcode::SwitchBr
            | Opcode::Unreachable
            | Opcode::TailCall
            | Opcode::Return
            | Opcode::LpJoinPoint
            | Opcode::LpJump
            | Opcode::LpSwitch
            | Opcode::LpReturn
            | Opcode::RgnRun => Purity::Effect,
        }
    }

    /// Number of regions the op carries, if fixed (`None` = variadic).
    pub fn region_arity(self) -> Option<usize> {
        match self {
            Opcode::LpJoinPoint => Some(2),
            Opcode::RgnVal => Some(1),
            Opcode::LpSwitch => None, // one region per case + default
            _ => Some(0),
        }
    }

    /// Whether the op may carry CFG successors.
    pub fn has_successors(self) -> bool {
        matches!(self, Opcode::Br | Opcode::CondBr | Opcode::SwitchBr)
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_unique_and_resolvable() {
        let mut seen = std::collections::HashSet::new();
        for &op in Opcode::ALL {
            assert!(seen.insert(op.name()), "duplicate name {}", op.name());
            assert_eq!(Opcode::by_name(op.name()), Some(op));
        }
        assert_eq!(Opcode::by_name("arith.bogus"), None);
    }

    #[test]
    fn dialect_prefixes() {
        assert_eq!(Opcode::AddI.dialect(), "arith");
        assert_eq!(Opcode::LpSwitch.dialect(), "lp");
        assert_eq!(Opcode::RgnVal.dialect(), "rgn");
        assert_eq!(Opcode::Br.dialect(), "cf");
        assert_eq!(Opcode::Call.dialect(), "func");
    }

    #[test]
    fn terminator_classification() {
        assert!(Opcode::Br.is_terminator());
        assert!(Opcode::LpSwitch.is_terminator());
        assert!(Opcode::LpJoinPoint.is_terminator());
        assert!(Opcode::RgnRun.is_terminator());
        assert!(Opcode::TailCall.is_terminator());
        assert!(!Opcode::AddI.is_terminator());
        assert!(!Opcode::Call.is_terminator());
        assert!(!Opcode::RgnVal.is_terminator());
    }

    #[test]
    fn purity_classification() {
        assert_eq!(Opcode::AddI.purity(), Purity::Pure);
        assert_eq!(Opcode::RgnVal.purity(), Purity::Pure);
        assert_eq!(Opcode::LpConstruct.purity(), Purity::Alloc);
        assert_eq!(Opcode::LpInc.purity(), Purity::Effect);
        assert_eq!(Opcode::Return.purity(), Purity::Effect);
    }

    #[test]
    fn region_arities() {
        assert_eq!(Opcode::RgnVal.region_arity(), Some(1));
        assert_eq!(Opcode::LpJoinPoint.region_arity(), Some(2));
        assert_eq!(Opcode::LpSwitch.region_arity(), None);
        assert_eq!(Opcode::AddI.region_arity(), Some(0));
    }
}
