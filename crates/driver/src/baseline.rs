//! The baseline backend: a direct λrc → CFG lowering modelling LEAN4's
//! existing C backend (`leanc`).
//!
//! Where the MLIR backend goes λrc → lp → rgn → CFG with region reasoning in
//! between, this backend does what a C code generator does: `case` becomes a
//! `switch` statement (a `cf.switch` over blocks), join points become labels
//! (blocks), jumps become `goto` (`cf.br`). No SSA-level optimization runs —
//! the C backend delegates that to the downstream compiler — and tail calls
//! are only *heuristically* eliminated (self-recursion), matching the
//! paper's Figure 11 row.

use lssa_core::rgn::TcoPass;
use lssa_ir::pass::Pass;
use lssa_ir::prelude::*;
use lssa_lambda::ast::{Expr, FnDef, Program, Value};
use std::collections::HashMap;

/// Lowers a λrc program directly to a flat-CFG module, C-backend style.
///
/// # Panics
///
/// Panics on malformed input (check with
/// [`lssa_lambda::wellformed::check_program`] first).
pub fn lower_program(program: &Program) -> Module {
    let mut module = Module::new();
    lssa_core::lp::declare_externs(&mut module);
    for f in &program.fns {
        module.intern(&f.name);
    }
    for f in &program.fns {
        let body = lower_fn(&mut module, program, f);
        module.add_function(&f.name, Signature::obj(f.arity()), body);
    }
    // Heuristic TCO: what a C compiler reliably gives you.
    TcoPass { only_self: true }.run(&mut module);
    module
}

struct Ctx<'a> {
    module: &'a mut Module,
    program: &'a Program,
    env: HashMap<u32, ValueId>,
    /// Join label → (block, its parameter values).
    joins: HashMap<u32, (BlockId, Vec<ValueId>)>,
}

fn lower_fn(module: &mut Module, program: &Program, f: &FnDef) -> Body {
    let (mut body, params) = Body::new(&vec![Type::Obj; f.arity()]);
    let mut ctx = Ctx {
        module,
        program,
        env: HashMap::new(),
        joins: HashMap::new(),
    };
    for (&p, &v) in f.params.iter().zip(&params) {
        ctx.env.insert(p, v);
    }
    let entry = body.entry_block();
    ctx.lower_expr(&mut body, entry, &f.body);
    body
}

impl Ctx<'_> {
    fn get(&self, v: u32) -> ValueId {
        *self
            .env
            .get(&v)
            .unwrap_or_else(|| panic!("unbound λ variable x{v}"))
    }

    /// Lowers `e` into `block`, leaving it terminated.
    fn lower_expr(&mut self, body: &mut Body, block: BlockId, e: &Expr) {
        match e {
            Expr::Let {
                var,
                val,
                body: rest,
            } => {
                let v = self.lower_value(body, block, val);
                self.env.insert(*var, v);
                self.lower_expr(body, block, rest);
            }
            Expr::LetJoin {
                label,
                params,
                jp_body,
                body: rest,
            } => {
                // The join point is just a labelled block with arguments.
                let jp_block = body.new_block(ROOT_REGION, &vec![Type::Obj; params.len()]);
                let jp_args = body.blocks[jp_block.index()].args.clone();
                self.joins.insert(*label, (jp_block, jp_args.clone()));
                // jp body sees only its params.
                let saved = std::mem::take(&mut self.env);
                for (&p, &v) in params.iter().zip(&jp_args) {
                    self.env.insert(p, v);
                }
                self.lower_expr(body, jp_block, jp_body);
                self.env = saved;
                self.lower_expr(body, block, rest);
            }
            Expr::Case {
                scrutinee,
                alts,
                default,
            } => {
                let s = self.get(*scrutinee);
                let tag8 = {
                    let mut b = Builder::at_end(body, block);
                    b.lp_getlabel(s)
                };
                // One block per arm, plus a default block; C-style switch.
                let mut arm_blocks = Vec::new();
                for _ in alts {
                    arm_blocks.push(body.new_block(ROOT_REGION, &[]));
                }
                let default_block = body.new_block(ROOT_REGION, &[]);
                let cases: Vec<i64> = alts.iter().map(|a| a.tag as i64).collect();
                {
                    let mut b = Builder::at_end(body, block);
                    b.switch_br(
                        tag8,
                        cases,
                        arm_blocks.iter().map(|&bl| (bl, vec![])).collect(),
                        (default_block, vec![]),
                    );
                }
                for (alt, &bl) in alts.iter().zip(&arm_blocks) {
                    let saved = self.env.clone();
                    self.lower_expr(body, bl, &alt.body);
                    self.env = saved;
                }
                match default {
                    Some(d) => {
                        let saved = self.env.clone();
                        self.lower_expr(body, default_block, d);
                        self.env = saved;
                    }
                    None => {
                        let mut b = Builder::at_end(body, default_block);
                        b.unreachable();
                    }
                }
            }
            Expr::Jump { label, args } => {
                let (jp_block, _) = *self
                    .joins
                    .get(label)
                    .unwrap_or_else(|| panic!("jump to unknown join j{label}"));
                let vals: Vec<ValueId> = args.iter().map(|&a| self.get(a)).collect();
                let mut b = Builder::at_end(body, block);
                b.br(jp_block, vals);
            }
            Expr::Ret(v) => {
                let v = self.get(*v);
                let mut b = Builder::at_end(body, block);
                b.ret(v);
            }
            Expr::Inc { var, n, body: rest } => {
                let v = self.get(*var);
                {
                    let mut b = Builder::at_end(body, block);
                    for _ in 0..*n {
                        b.lp_inc(v);
                    }
                }
                self.lower_expr(body, block, rest);
            }
            Expr::Dec { var, body: rest } => {
                let v = self.get(*var);
                {
                    let mut b = Builder::at_end(body, block);
                    b.lp_dec(v);
                }
                self.lower_expr(body, block, rest);
            }
        }
    }

    fn lower_value(&mut self, body: &mut Body, block: BlockId, val: &Value) -> ValueId {
        let mut b = Builder::at_end(body, block);
        match val {
            Value::Var(v) => self.get(*v),
            Value::LitInt(n) => b.lp_int(*n),
            Value::LitBig(s) => b.lp_bigint(s),
            Value::LitStr(s) => b.lp_str(s),
            Value::Ctor { tag, args } => {
                let fields = args.iter().map(|&a| self.get(a)).collect();
                b.lp_construct(*tag as i64, fields)
            }
            Value::Proj { var, idx } => {
                let s = self.get(*var);
                b.lp_project(s, *idx as i64)
            }
            Value::Call { func, args } => {
                let callee = self.module.intern(func);
                let vals = args.iter().map(|&a| self.get(a)).collect();
                let mut b = Builder::at_end(body, block);
                b.call(callee, vals, Type::Obj)
            }
            Value::Pap { func, args } => {
                let callee = self.module.intern(func);
                let arity = self
                    .program
                    .arity_of(func)
                    .unwrap_or_else(|| panic!("pap of unknown @{func}"))
                    as i64;
                let vals = args.iter().map(|&a| self.get(a)).collect();
                let mut b = Builder::at_end(body, block);
                b.lp_pap(callee, arity, vals)
            }
            Value::App { closure, args } => {
                let c = self.get(*closure);
                let vals = args.iter().map(|&a| self.get(a)).collect();
                b.lp_papextend(c, vals)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lssa_ir::opcode::Opcode;
    use lssa_ir::verifier::verify_module;
    use lssa_lambda::{insert_rc, parse_program};

    fn lower(src: &str) -> Module {
        let p = parse_program(src).unwrap();
        lssa_lambda::check_program(&p).unwrap();
        let rc = insert_rc(&p);
        let m = lower_program(&rc);
        if let Err(errs) = verify_module(&m) {
            let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            panic!(
                "baseline module does not verify:\n{}\n{}",
                msgs.join("\n"),
                lssa_ir::printer::print_module(&m)
            );
        }
        m
    }

    #[test]
    fn case_becomes_cf_switch() {
        let m = lower(
            r#"
inductive List := Nil | Cons(h, t)
def len(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => 1 + len(t)
  end
"#,
        );
        let f = m.func_by_name("len").unwrap();
        let body = f.body.as_ref().unwrap();
        let has_switch = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::SwitchBr);
        assert!(has_switch);
        // No rgn ops in the baseline path, ever.
        let has_rgn = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode.dialect() == "rgn");
        assert!(!has_rgn);
    }

    #[test]
    fn join_points_become_blocks() {
        let m = lower(
            r#"
def f(b, y) :=
  let x := case b of | true => 1 | false => 2 end;
  x + y
"#,
        );
        let f = m.func_by_name("f").unwrap();
        let body = f.body.as_ref().unwrap();
        // Several blocks, with at least one carrying arguments (the join).
        assert!(body.regions[0].blocks.len() >= 3);
        let has_arg_block = body.regions[0]
            .blocks
            .iter()
            .skip(1)
            .any(|&bl| !body.blocks[bl.index()].args.is_empty());
        assert!(has_arg_block);
    }

    #[test]
    fn self_tail_recursion_gets_heuristic_tco() {
        let m = lower(
            r#"
def loop(n, acc) := if n == 0 then acc else loop(n - 1, acc + n)
"#,
        );
        let f = m.func_by_name("loop").unwrap();
        let body = f.body.as_ref().unwrap();
        let has_tail = body
            .walk_ops()
            .iter()
            .any(|&op| body.ops[op.index()].opcode == Opcode::TailCall);
        assert!(has_tail);
    }

    #[test]
    fn compiles_to_bytecode() {
        let m = lower(
            r#"
inductive List := Nil | Cons(h, t)
def build(n) := if n == 0 then Nil else Cons(n, build(n - 1))
def sum(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => h + sum(t)
  end
def main() := sum(build(10))
"#,
        );
        let p = lssa_vm::compile_module(&m).unwrap();
        let out = lssa_vm::run_program(&p, "main", 1_000_000).unwrap();
        assert_eq!(out.rendered, "55");
        assert_eq!(out.stats.heap.live, 0, "RC must balance");
    }
}
