//! Dispatch-matrix differential suite: every VM execution strategy must be
//! a pure dispatch optimization. For every workload (under every compiler
//! configuration) and every conformance case, the full matrix of
//! {match, threaded} dispatch × {fused, unfused} decode × {inline caches
//! on, off} must produce byte-identical results and identical
//! heap/allocation counters — only the executed-cell counts may differ
//! across decode modes (fused runs fewer), and only the cache counters may
//! differ across cache modes.
//!
//! Runtime errors count too: a program that traps must trap with the same
//! message under every strategy.

use lambda_ssa::driver::conformance::handwritten;
use lambda_ssa::driver::pipelines::{compile, CompilerConfig};
use lambda_ssa::driver::workloads::{all, Scale};
use lambda_ssa::driver::{diff, par};
use lambda_ssa::vm::{run_program_opts, DecodeOptions, DispatchMode, ExecOptions};

const MAX_STEPS: u64 = 500_000_000;

/// The execution strategies under test: every combination of dispatch
/// mode, decode mode, and inline caching. The first entry (threaded,
/// fused, cached) is the default and serves as the reference.
fn matrix() -> Vec<(String, DecodeOptions, ExecOptions)> {
    let mut combos = Vec::new();
    for dispatch in [DispatchMode::Threaded, DispatchMode::Match] {
        for (dl, decode) in [
            ("fused", DecodeOptions::fused()),
            ("no-fuse", DecodeOptions::no_fuse()),
        ] {
            for cache in [true, false] {
                combos.push((
                    format!(
                        "{}/{dl}/{}",
                        dispatch.name(),
                        if cache { "cache" } else { "no-cache" }
                    ),
                    decode,
                    ExecOptions::default()
                        .with_dispatch(dispatch)
                        .with_inline_cache(cache),
                ));
            }
        }
    }
    combos
}

/// Runs one compiled program under the whole matrix and checks that every
/// strategy agrees with the first (the default). Returns the default's
/// rendering (for checksum asserts), or `None` if the program traps.
fn assert_matrix_agrees(label: &str, program: &lambda_ssa::vm::CompiledProgram) -> Option<String> {
    let combos = matrix();
    let reference = run_program_opts(program, "main", MAX_STEPS, combos[0].1, combos[0].2);
    for (name, decode, exec) in &combos[1..] {
        let got = run_program_opts(program, "main", MAX_STEPS, *decode, *exec);
        match (&reference, &got) {
            (Ok(r), Ok(g)) => {
                assert_eq!(
                    r.rendered, g.rendered,
                    "{label} [{name}]: checksum diverged"
                );
                assert_eq!(
                    r.vm_stats.heap, g.vm_stats.heap,
                    "{label} [{name}]: heap counters diverged"
                );
                assert_eq!(
                    r.vm_stats.max_depth, g.vm_stats.max_depth,
                    "{label} [{name}]: frame depth diverged"
                );
                assert_eq!(
                    r.vm_stats.frame_allocs, g.vm_stats.frame_allocs,
                    "{label} [{name}]: frame allocation diverged"
                );
                assert!(
                    r.stats.instructions <= g.stats.instructions,
                    "{label} [{name}]: fused dispatch must never execute more cells"
                );
                // Same decode mode ⇒ byte-identical cell counts; dispatch
                // and caching may not change what executes at all.
                if *decode == combos[0].1 {
                    assert_eq!(
                        r.stats.instructions, g.stats.instructions,
                        "{label} [{name}]: dispatch/caching changed the cell count"
                    );
                }
            }
            (Err(re), Err(ge)) => {
                assert_eq!(
                    re.message, ge.message,
                    "{label} [{name}]: error message diverged"
                );
            }
            (r, g) => panic!(
                "{label} [{name}]: one strategy failed, the other did not \
                 (reference: {:?}, {name}: {:?})",
                r.as_ref().map(|o| &o.rendered),
                g.as_ref().map(|o| &o.rendered)
            ),
        }
    }
    reference.ok().map(|o| o.rendered)
}

#[test]
fn workloads_agree_across_dispatch_matrix_and_all_pipelines() {
    let workloads = all(Scale::Test);
    par::par_map(&workloads, |w| {
        for config in diff::configs() {
            let label = format!("{} [{}]", w.name, config.label());
            let program = compile(&w.src, config).unwrap_or_else(|e| panic!("{label}: {e}"));
            let rendered = assert_matrix_agrees(&label, &program)
                .unwrap_or_else(|| panic!("{label}: workload must not trap"));
            assert_eq!(rendered, w.expected_test, "{label}");
        }
    });
}

#[test]
fn conformance_cases_agree_across_dispatch_matrix() {
    // The hand-written corpus covers every language construct and the
    // runtime-error edges (div-by-zero and friends) — exactly the places a
    // dispatch or fusion bug would hide.
    let cases = handwritten();
    par::par_map(&cases, |case| {
        let program = match compile(&case.src, CompilerConfig::mlir()) {
            Ok(p) => p,
            // Compile-time failures never reach the decoder.
            Err(_) => return,
        };
        assert_matrix_agrees(&case.name, &program);
    });
}
