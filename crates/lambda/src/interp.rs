//! The λpure/λrc reference interpreter.
//!
//! A direct tree-walking evaluator over the `lssa-rt` heap. It is the
//! semantic oracle of the project: the differential test harness compares
//! its results against both compiled pipelines.
//!
//! Two modes:
//!
//! - **λrc mode** (`rc_mode = true`): executes the explicit `inc`/`dec`
//!   instructions and transfers ownership at consumption sites, exactly as
//!   compiled code would. After a run, the heap must be empty — this
//!   dynamically validates that [`crate::rc::insert_rc`] is balanced.
//! - **λpure mode** (`rc_mode = false`): for programs without RC
//!   instructions. Every consumption site retains its arguments first, so
//!   the run leaks (nothing is ever freed) but can never double-free, and
//!   in-place array updates always observe shared objects and copy.

use crate::ast::{Expr, FnDef, Program, Value};
use lssa_rt::{pap_extend, pap_new, ApplyOutcome, Builtin, FuncId, Heap, HeapStats, Nat, ObjRef};
use std::collections::HashMap;
use std::fmt;

/// An execution error (not a program value — those are `ObjRef`s).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterpError {
    /// Description.
    pub message: String,
}

impl fmt::Display for InterpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "interpreter error: {}", self.message)
    }
}

impl std::error::Error for InterpError {}

fn err(message: impl Into<String>) -> InterpError {
    InterpError {
        message: message.into(),
    }
}

/// One step of function evaluation: a result, or a tail call to trampoline.
#[derive(Debug)]
enum Step {
    Done(ObjRef),
    Tail(usize, Vec<ObjRef>),
}

/// If `e` is a chain of `inc`/`dec` ops ending in `ret var`, none of which
/// touch `var` itself, returns the chain as `(is_dec, var, n)` actions.
fn tail_continuation(e: &Expr, var: u32) -> Option<Vec<(bool, u32, u32)>> {
    let mut ops = Vec::new();
    let mut cur = e;
    loop {
        match cur {
            Expr::Ret(v) if *v == var => return Some(ops),
            Expr::Inc { var: v, n, body } if *v != var => {
                ops.push((false, *v, *n));
                cur = body;
            }
            Expr::Dec { var: v, body } if *v != var => {
                ops.push((true, *v, 0));
                cur = body;
            }
            _ => return None,
        }
    }
}

/// Result of a program run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// Stable textual rendering of the result value.
    pub rendered: String,
    /// Heap statistics at the end of the run (after releasing the result).
    pub stats: HeapStats,
    /// Number of interpreter steps taken.
    pub steps: u64,
}

/// The interpreter.
#[derive(Debug)]
pub struct Interp<'p> {
    program: &'p Program,
    /// The runtime heap (public so tests can inspect it mid-run).
    pub heap: Heap,
    rc_mode: bool,
    fuel: u64,
    fn_index: HashMap<&'p str, usize>,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter for `program`.
    pub fn new(program: &'p Program, rc_mode: bool, fuel: u64) -> Interp<'p> {
        let fn_index = program
            .fns
            .iter()
            .enumerate()
            .map(|(i, f)| (f.name.as_str(), i))
            .collect();
        Interp {
            program,
            heap: Heap::new(),
            rc_mode,
            fuel,
            fn_index,
        }
    }

    fn spend(&mut self, n: u64) -> Result<(), InterpError> {
        if self.fuel < n {
            // Same message as the VM's step budget (see
            // `lssa_rt::STEP_BUDGET_MSG`) so the two engines' resource
            // failures compare equal in differential harnesses.
            return Err(err(lssa_rt::STEP_BUDGET_MSG));
        }
        self.fuel -= n;
        Ok(())
    }

    /// Calls a function by index with owned arguments.
    ///
    /// Tail calls (`let x = call f(…); [inc/dec…;] ret x`) are executed with
    /// a trampoline — LEAN guarantees tail-call elimination (§III-E), so the
    /// oracle must too.
    pub fn call_fn(
        &mut self,
        mut idx: usize,
        mut args: Vec<ObjRef>,
    ) -> Result<ObjRef, InterpError> {
        loop {
            self.spend(1)?;
            let f = &self.program.fns[idx];
            if f.params.len() != args.len() {
                return Err(err(format!(
                    "@{} called with {} args (arity {})",
                    f.name,
                    args.len(),
                    f.params.len()
                )));
            }
            let mut env: Vec<Option<ObjRef>> = vec![None; f.next_var as usize];
            for (&p, a) in f.params.iter().zip(args) {
                env[p as usize] = Some(a);
            }
            match self.eval_expr(f, &mut env, &f.body)? {
                Step::Done(r) => return Ok(r),
                Step::Tail(next_idx, next_args) => {
                    idx = next_idx;
                    args = next_args;
                }
            }
        }
    }

    fn lookup(&self, env: &[Option<ObjRef>], v: u32) -> Result<ObjRef, InterpError> {
        env.get(v as usize)
            .copied()
            .flatten()
            .ok_or_else(|| err(format!("read of unbound variable x{v}")))
    }

    fn eval_expr(
        &mut self,
        f: &'p FnDef,
        env: &mut [Option<ObjRef>],
        mut cur: &'p Expr,
    ) -> Result<Step, InterpError> {
        // Join points in scope: (label, params, body).
        let mut joins: Vec<(u32, &'p [u32], &'p Expr)> = Vec::new();
        loop {
            self.spend(1)?;
            match cur {
                Expr::Let { var, val, body } => {
                    // Tail-call detection: `let x = call f(…); rc-ops; ret x`
                    // where the rc-ops do not touch x. The rc-ops run before
                    // the transfer (they only release dead locals).
                    if let Value::Call { func, args } = val {
                        if !func.starts_with("lean_") {
                            if let Some(rc_ops) = tail_continuation(body, *var) {
                                let callee =
                                    *self.fn_index.get(func.as_str()).ok_or_else(|| {
                                        err(format!("call to unknown function @{func}"))
                                    })?;
                                let call_args = self.owned_args(env, args)?;
                                if self.rc_mode {
                                    for (dec, v, n) in rc_ops {
                                        let r = self.lookup(env, v)?;
                                        if dec {
                                            self.heap.dec(r);
                                        } else {
                                            self.heap.inc_n(r, n);
                                        }
                                    }
                                }
                                return Ok(Step::Tail(callee, call_args));
                            }
                        }
                    }
                    let r = self.eval_value(env, val)?;
                    env[*var as usize] = Some(r);
                    cur = body;
                }
                Expr::LetJoin {
                    label,
                    params,
                    jp_body,
                    body,
                    ..
                } => {
                    joins.push((*label, params, jp_body));
                    cur = body;
                }
                Expr::Case {
                    scrutinee,
                    alts,
                    default,
                } => {
                    let s = self.lookup(env, *scrutinee)?;
                    let tag = self.heap.ctor_tag(s);
                    let arm = alts.iter().find(|a| a.tag == tag).map(|a| &a.body);
                    match arm.or(default.as_deref()) {
                        Some(a) => cur = a,
                        None => {
                            return Err(err(format!(
                                "case on tag {tag} has no matching arm in @{}",
                                f.name
                            )))
                        }
                    }
                }
                Expr::Jump { label, args } => {
                    let target = joins
                        .iter()
                        .rev()
                        .find(|(l, ..)| l == label)
                        .copied()
                        .ok_or_else(|| err(format!("jump to unknown join j{label}")))?;
                    let vals: Result<Vec<ObjRef>, _> =
                        args.iter().map(|&a| self.lookup(env, a)).collect();
                    let vals = vals?;
                    for (&p, v) in target.1.iter().zip(vals) {
                        env[p as usize] = Some(v);
                    }
                    cur = target.2;
                }
                Expr::Ret(v) => {
                    let r = self.lookup(env, *v)?;
                    if !self.rc_mode {
                        self.heap.inc(r);
                    }
                    return Ok(Step::Done(r));
                }
                Expr::Inc { var, n, body } => {
                    if self.rc_mode {
                        let r = self.lookup(env, *var)?;
                        self.heap.inc_n(r, *n);
                    }
                    cur = body;
                }
                Expr::Dec { var, body } => {
                    if self.rc_mode {
                        let r = self.lookup(env, *var)?;
                        self.heap.dec(r);
                    }
                    cur = body;
                }
            }
        }
    }

    /// Collects argument references; in λpure mode retains each first.
    fn owned_args(
        &mut self,
        env: &[Option<ObjRef>],
        args: &[u32],
    ) -> Result<Vec<ObjRef>, InterpError> {
        let mut out = Vec::with_capacity(args.len());
        for &a in args {
            let r = self.lookup(env, a)?;
            if !self.rc_mode {
                self.heap.inc(r);
            }
            out.push(r);
        }
        Ok(out)
    }

    fn eval_value(
        &mut self,
        env: &mut [Option<ObjRef>],
        val: &Value,
    ) -> Result<ObjRef, InterpError> {
        match val {
            Value::Var(v) => self.lookup(env, *v),
            Value::LitInt(n) => Ok(self.heap.mk_int(lssa_rt::Int::from_i64(*n))),
            Value::LitBig(s) => {
                let n = Nat::from_str_decimal(s).map_err(|e| err(e.to_string()))?;
                Ok(self.heap.mk_nat(n))
            }
            Value::LitStr(s) => Ok(self.heap.alloc_str(s.clone())),
            Value::Ctor { tag, args } => {
                let fields = self.owned_args(env, args)?;
                Ok(self.heap.alloc_ctor(*tag, fields))
            }
            Value::Proj { var, idx } => {
                let s = self.lookup(env, *var)?;
                let field = self.heap.ctor_field(s, *idx as usize);
                // λrc mode: borrowed — the explicit `inc` that follows owns
                // it. λpure mode: nothing frees, borrow is safe too.
                Ok(field)
            }
            Value::Call { func, args } => {
                if func.starts_with("lean_") {
                    let b: Builtin = func
                        .parse()
                        .map_err(|e: lssa_rt::builtins::UnknownBuiltinError| err(e.to_string()))?;
                    let args = self.owned_args(env, args)?;
                    self.spend(1)?;
                    Ok(b.call(&mut self.heap, &args))
                } else {
                    let idx = *self
                        .fn_index
                        .get(func.as_str())
                        .ok_or_else(|| err(format!("call to unknown function @{func}")))?;
                    let args = self.owned_args(env, args)?;
                    self.call_fn(idx, args)
                }
            }
            Value::Pap { func, args } => {
                let idx = *self
                    .fn_index
                    .get(func.as_str())
                    .ok_or_else(|| err(format!("pap of unknown function @{func}")))?;
                let arity = self.program.fns[idx].params.len() as u16;
                let args = self.owned_args(env, args)?;
                let outcome = pap_new(&mut self.heap, FuncId(idx as u32), arity, args);
                self.apply_outcome(outcome)
            }
            Value::App { closure, args } => {
                let c = self.lookup(env, *closure)?;
                if !self.rc_mode {
                    self.heap.inc(c);
                }
                if !matches!(self.heap.data(c), lssa_rt::ObjData::Closure { .. }) {
                    return Err(err("application of a non-closure value"));
                }
                let args = self.owned_args(env, args)?;
                let outcome = pap_extend(&mut self.heap, c, args);
                self.apply_outcome(outcome)
            }
        }
    }

    fn apply_outcome(&mut self, outcome: ApplyOutcome) -> Result<ObjRef, InterpError> {
        match outcome {
            ApplyOutcome::Partial(c) => Ok(c),
            ApplyOutcome::Call { func, args } => self.call_fn(func.0 as usize, args),
            ApplyOutcome::CallThen { func, args, rest } => {
                let r = self.call_fn(func.0 as usize, args)?;
                if !matches!(self.heap.data(r), lssa_rt::ObjData::Closure { .. }) {
                    return Err(err("over-application of a non-closure result"));
                }
                let next = pap_extend(&mut self.heap, r, rest);
                self.apply_outcome(next)
            }
        }
    }
}

/// Runs `entry` (a zero-argument function) of `program`.
///
/// In λrc mode the heap is checked for balance: every object must have been
/// released by the end of the run.
///
/// # Errors
///
/// Returns an error on missing entry points, runtime type confusion, fuel
/// exhaustion, or (in λrc mode) an unbalanced heap.
pub fn run_program(
    program: &Program,
    entry: &str,
    rc_mode: bool,
    fuel: u64,
) -> Result<Outcome, InterpError> {
    let mut interp = Interp::new(program, rc_mode, fuel);
    let idx = *interp
        .fn_index
        .get(entry)
        .ok_or_else(|| err(format!("no entry function @{entry}")))?;
    let start_fuel = fuel;
    let result = interp.call_fn(idx, vec![])?;
    let rendered = interp.heap.render(result);
    if rc_mode {
        interp.heap.dec(result);
        let stats = interp.heap.stats();
        if stats.live != 0 {
            return Err(err(format!(
                "reference counting is unbalanced: {} objects leaked",
                stats.live
            )));
        }
    }
    let stats = interp.heap.stats();
    Ok(Outcome {
        rendered,
        stats,
        steps: start_fuel - interp.fuel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse::parse_program;
    use crate::rc::insert_rc;

    const FUEL: u64 = 10_000_000;

    fn run_pure(src: &str) -> String {
        let p = parse_program(src).unwrap();
        crate::wellformed::check_program(&p).unwrap();
        run_program(&p, "main", false, FUEL).unwrap().rendered
    }

    /// Runs the λrc version and checks heap balance on the way.
    fn run_rc(src: &str) -> String {
        let p = parse_program(src).unwrap();
        let rc = insert_rc(&p);
        crate::wellformed::check_program(&rc).unwrap();
        run_program(&rc, "main", true, FUEL).unwrap().rendered
    }

    /// Both modes must agree (and λrc must balance).
    fn run_both(src: &str) -> String {
        let a = run_pure(src);
        let b = run_rc(src);
        assert_eq!(a, b, "λpure and λrc disagree");
        a
    }

    #[test]
    fn arithmetic() {
        assert_eq!(run_both("def main() := 2 + 3 * 4"), "14");
        assert_eq!(run_both("def main() := (2 + 3) * 4"), "20");
        assert_eq!(run_both("def main() := 10 - 3 - 4"), "3");
        assert_eq!(run_both("def main() := 3 - 10"), "0"); // Nat truncation
        assert_eq!(run_both("def main() := 17 / 5"), "3");
        assert_eq!(run_both("def main() := 17 % 5"), "2");
    }

    #[test]
    fn bigint_arithmetic() {
        assert_eq!(
            run_both("def main() := 99999999999999999999999999 + 1"),
            "100000000000000000000000000"
        );
    }

    #[test]
    fn conditionals() {
        assert_eq!(run_both("def main() := if 1 < 2 then 10 else 20"), "10");
        assert_eq!(run_both("def main() := if 2 < 1 then 10 else 20"), "20");
    }

    #[test]
    fn recursion_factorial() {
        let src = r#"
def fact(n) := if n == 0 then 1 else n * fact(n - 1)
def main() := fact(10)
"#;
        assert_eq!(run_both(src), "3628800");
    }

    #[test]
    fn lists_and_matching() {
        let src = r#"
inductive List := Nil | Cons(head, tail)
def length(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => 1 + length(t)
  end
def build(n) := if n == 0 then Nil else Cons(n, build(n - 1))
def main() := length(build(100))
"#;
        assert_eq!(run_both(src), "100");
    }

    #[test]
    fn figure4_int_usage() {
        let src = r#"
def intUsage(n) :=
  case n of
  | 42 => 43
  | _ => 99999999
  end
def main() := intUsage(42) + intUsage(7)
"#;
        assert_eq!(run_both(src), "100000042");
    }

    #[test]
    fn figure5_eval_three_args() {
        let src = r#"
def eval(x, y, z) :=
  case x of
  | 0 =>
    case y of
    | 2 => 40
    | _ =>
      case z of
      | 2 => 50
      | _ => 60
      end
    end
  | _ => 60
  end
def main() := eval(0, 2, 0) + eval(0, 0, 2) + eval(1, 2, 2) + eval(0, 0, 0)
"#;
        // 40 + 50 + 60 + 60
        assert_eq!(run_both(src), "210");
    }

    #[test]
    fn closures_figure7() {
        let src = r#"
def k(x, y) := x
def ap42(f) := f(42)
def main() := ap42(k(10)) + k(1, 2)
"#;
        // k(10) is a closure; ap42 applies it to 42 → k(10, 42) = 10; +1.
        assert_eq!(run_both(src), "11");
    }

    #[test]
    fn oversaturated_application() {
        let src = r#"
def pair(a) := add2(a)
def add2(a, b) := a + b
def main() := pair(1)(2)
"#;
        // pair(1) = add2(1) is a pap waiting for b; applying to 2 → 3.
        assert_eq!(run_both(src), "3");
    }

    #[test]
    fn value_position_case_join_point() {
        let src = r#"
def f(b, y) :=
  let x := case b of | true => 1 | false => 2 end;
  x + y
def main() := f(true, 10) + f(false, 100)
"#;
        assert_eq!(run_both(src), "113");
    }

    #[test]
    fn arrays_in_place() {
        let src = r#"
def main() :=
  let a := @array_push(@array_push(@mk_empty_array(), 5), 7);
  let a2 := @array_set(a, 0, 100);
  @array_get(a2, 0) + @array_get(a2, 1)
"#;
        assert_eq!(run_both(src), "107");
    }

    #[test]
    fn rc_balance_reported() {
        // Build structures, drop them: λrc run must free everything.
        let src = r#"
inductive Tree := Leaf | Node(l, v, r)
def build(d) :=
  if d == 0 then Leaf
  else Node(build(d - 1), d, build(d - 1))
def sum(t) :=
  case t of
  | Leaf => 0
  | Node(l, v, r) => sum(l) + v + sum(r)
  end
def main() := sum(build(8))
"#;
        let p = parse_program(src).unwrap();
        let rc = insert_rc(&p);
        let out = run_program(&rc, "main", true, FUEL).unwrap();
        assert_eq!(out.stats.live, 0);
        assert!(out.stats.allocs > 200);
        assert_eq!(out.rendered, "502"); // sum over perfect tree of depth 8
    }

    #[test]
    fn fuel_exhaustion_detected() {
        let src = r#"
def spin(n) := spin(n)
def main() := spin(0)
"#;
        let p = parse_program(src).unwrap();
        let e = run_program(&p, "main", false, 10_000).unwrap_err();
        assert!(e.message.contains(lssa_rt::STEP_BUDGET_MSG));
    }

    #[test]
    fn missing_entry_reported() {
        let p = parse_program("def f() := 1").unwrap();
        assert!(run_program(&p, "main", false, 100).is_err());
    }

    #[test]
    fn steps_counted() {
        let p = parse_program("def main() := 1 + 2").unwrap();
        let out = run_program(&p, "main", false, FUEL).unwrap();
        assert!(out.steps > 3);
    }
}
