//! Lowering λrc to the `lp` dialect (§III of the paper).
//!
//! Each λrc function becomes an SSA function over `!lp.t` values whose body
//! is *structured*: blocks end in `lp.ret`, `lp.jump`, or the region-carrying
//! terminators `lp.switch` / `lp.joinpoint`. No `cf` dialect appears at this
//! level — all control flow is expressed through nested regions, which is
//! precisely what makes the `rgn` lowering (Figure 8) and its optimizations
//! applicable.

use lssa_ir::prelude::*;
use lssa_lambda::ast::{Expr, FnDef, Program, Value};
use std::collections::HashMap;

/// Lowers a λrc program to an lp-dialect module.
///
/// # Panics
///
/// Panics on malformed input (run [`lssa_lambda::wellformed::check_program`]
/// first); the result verifies by construction.
pub fn lower_program(program: &Program) -> Module {
    let mut module = Module::new();
    super::declare_externs(&mut module);
    // Pre-declare every function so calls can reference any order.
    for f in &program.fns {
        module.intern(&f.name);
    }
    // First create all signatures (needed for callee checks), then bodies.
    let sigs: Vec<Signature> = program
        .fns
        .iter()
        .map(|f| Signature::obj(f.arity()))
        .collect();
    for (f, sig) in program.fns.iter().zip(&sigs) {
        let body = lower_fn(&mut module, program, f);
        module.add_function(&f.name, sig.clone(), body);
    }
    module
}

fn lower_fn(module: &mut Module, program: &Program, f: &FnDef) -> Body {
    let (mut body, params) = Body::new(&vec![Type::Obj; f.arity()]);
    let mut env: HashMap<u32, ValueId> = HashMap::new();
    for (&p, &v) in f.params.iter().zip(&params) {
        env.insert(p, v);
    }
    let entry = body.entry_block();
    let mut ctx = LowerCtx {
        module,
        program,
        fname: &f.name,
    };
    ctx.lower_expr(&mut body, entry, &f.body, &mut env);
    body
}

struct LowerCtx<'a> {
    module: &'a mut Module,
    program: &'a Program,
    fname: &'a str,
}

impl LowerCtx<'_> {
    /// Unique label symbol for a join point of this function.
    fn label_sym(&mut self, label: u32) -> Symbol {
        self.module.intern(&format!("{}.jp{label}", self.fname))
    }

    fn get(&self, env: &HashMap<u32, ValueId>, v: u32) -> ValueId {
        *env.get(&v)
            .unwrap_or_else(|| panic!("@{}: unbound λ variable x{v}", self.fname))
    }

    /// Lowers `e` into `block` (which must be unterminated); always leaves
    /// the block terminated.
    fn lower_expr(
        &mut self,
        body: &mut Body,
        block: BlockId,
        e: &Expr,
        env: &mut HashMap<u32, ValueId>,
    ) {
        match e {
            Expr::Let {
                var,
                val,
                body: rest,
            } => {
                let v = self.lower_value(body, block, val, env);
                env.insert(*var, v);
                self.lower_expr(body, block, rest, env);
            }
            Expr::LetJoin {
                label,
                params,
                jp_body,
                body: rest,
            } => {
                let sym = self.label_sym(*label);
                let (op, jp_entry, body_entry);
                {
                    let mut b = Builder::at_end(body, block);
                    (op, jp_entry, body_entry) =
                        b.lp_joinpoint(sym, &vec![Type::Obj; params.len()]);
                }
                let _ = op;
                // Join-point body: parameters map to the region's block args.
                let mut jp_env = HashMap::new();
                for (i, &p) in params.iter().enumerate() {
                    jp_env.insert(p, body.blocks[jp_entry.index()].args[i]);
                }
                self.lower_expr(body, jp_entry, jp_body, &mut jp_env);
                // Pre-jump code: same environment as the outer scope.
                self.lower_expr(body, body_entry, rest, env);
            }
            Expr::Case {
                scrutinee,
                alts,
                default,
            } => {
                let s = self.get(env, *scrutinee);
                let tag = {
                    let mut b = Builder::at_end(body, block);
                    b.lp_getlabel(s)
                };
                // lp.switch needs a default region: if the source case is
                // exhaustive without one, the last alternative serves as the
                // default (LEAN does the same).
                let (cases, arms, def): (Vec<i64>, Vec<&Expr>, &Expr) = match default {
                    Some(d) => (
                        alts.iter().map(|a| a.tag as i64).collect(),
                        alts.iter().map(|a| &a.body).collect(),
                        d,
                    ),
                    None => {
                        let (last, init) = alts.split_last().expect("case with no arms");
                        (
                            init.iter().map(|a| a.tag as i64).collect(),
                            init.iter().map(|a| &a.body).collect(),
                            &last.body,
                        )
                    }
                };
                let blocks = {
                    let mut b = Builder::at_end(body, block);
                    let (_op, blocks) = b.lp_switch(tag, cases);
                    blocks
                };
                for (arm, &arm_block) in arms.iter().zip(&blocks) {
                    let mut arm_env = env.clone();
                    self.lower_expr(body, arm_block, arm, &mut arm_env);
                }
                let mut def_env = env.clone();
                self.lower_expr(body, *blocks.last().unwrap(), def, &mut def_env);
            }
            Expr::Jump { label, args } => {
                let sym = self.label_sym(*label);
                let vals: Vec<ValueId> = args.iter().map(|&a| self.get(env, a)).collect();
                let mut b = Builder::at_end(body, block);
                b.lp_jump(sym, vals);
            }
            Expr::Ret(v) => {
                let v = self.get(env, *v);
                let mut b = Builder::at_end(body, block);
                b.lp_ret(v);
            }
            Expr::Inc { var, n, body: rest } => {
                let v = self.get(env, *var);
                {
                    let mut b = Builder::at_end(body, block);
                    for _ in 0..*n {
                        b.lp_inc(v);
                    }
                }
                self.lower_expr(body, block, rest, env);
            }
            Expr::Dec { var, body: rest } => {
                let v = self.get(env, *var);
                {
                    let mut b = Builder::at_end(body, block);
                    b.lp_dec(v);
                }
                self.lower_expr(body, block, rest, env);
            }
        }
    }

    fn lower_value(
        &mut self,
        body: &mut Body,
        block: BlockId,
        val: &Value,
        env: &HashMap<u32, ValueId>,
    ) -> ValueId {
        let mut b = Builder::at_end(body, block);
        match val {
            Value::Var(v) => *env.get(v).expect("unbound alias"),
            Value::LitInt(n) => b.lp_int(*n),
            Value::LitBig(s) => b.lp_bigint(s),
            Value::LitStr(s) => b.lp_str(s),
            Value::Ctor { tag, args } => {
                let fields = args.iter().map(|&a| self.get(env, a)).collect();
                b.lp_construct(*tag as i64, fields)
            }
            Value::Proj { var, idx } => {
                let s = self.get(env, *var);
                b.lp_project(s, *idx as i64)
            }
            Value::Call { func, args } => {
                let callee = self.module.intern(func);
                let vals = args.iter().map(|&a| self.get(env, a)).collect();
                let mut b = Builder::at_end(body, block);
                b.call(callee, vals, Type::Obj)
            }
            Value::Pap { func, args } => {
                let callee = self.module.intern(func);
                let arity = self
                    .program
                    .arity_of(func)
                    .unwrap_or_else(|| panic!("pap of unknown @{func}"))
                    as i64;
                let vals = args.iter().map(|&a| self.get(env, a)).collect();
                let mut b = Builder::at_end(body, block);
                b.lp_pap(callee, arity, vals)
            }
            Value::App { closure, args } => {
                let c = self.get(env, *closure);
                let vals = args.iter().map(|&a| self.get(env, a)).collect();
                b.lp_papextend(c, vals)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lssa_ir::printer::print_module;
    use lssa_ir::verifier::verify_module;
    use lssa_lambda::{insert_rc, parse_program};

    fn lower(src: &str) -> Module {
        let p = parse_program(src).unwrap();
        lssa_lambda::check_program(&p).unwrap();
        let rc = insert_rc(&p);
        let m = lower_program(&rc);
        if let Err(errs) = verify_module(&m) {
            let msgs: Vec<String> = errs.iter().map(|e| e.to_string()).collect();
            panic!(
                "lowered module does not verify:\n{}\n{}",
                msgs.join("\n"),
                print_module(&m)
            );
        }
        m
    }

    #[test]
    fn figure6_singleton_and_length() {
        let m = lower(
            r#"
inductive List := Nil | Cons(i, l)
def singleton(n) := Cons(n, Nil)
def length(xs) :=
  case xs of
  | Nil => 0
  | Cons(n, l) => 1 + length(l)
  end
"#,
        );
        let text = print_module(&m);
        assert!(text.contains("lp.construct"), "{text}");
        assert!(text.contains("{tag = 1}"), "{text}");
        assert!(text.contains("lp.getlabel"), "{text}");
        assert!(text.contains("lp.switch"), "{text}");
        assert!(text.contains("lp.project"), "{text}");
        assert!(text.contains("@lean_nat_add"), "{text}");
    }

    #[test]
    fn figure4_int_usage_stages_dec_eq() {
        let m = lower(
            r#"
def intUsage(n) :=
  case n of
  | 42 => 43
  | _ => 99999999
  end
"#,
        );
        let text = print_module(&m);
        assert!(text.contains("@lean_nat_dec_eq"), "{text}");
        assert!(text.contains("lp.switch"), "{text}");
    }

    #[test]
    fn figure7_closures() {
        let m = lower(
            r#"
def k(x, y) := x
def k10() := k(10)
def ap42(f) := f(42)
"#,
        );
        let text = print_module(&m);
        assert!(text.contains("lp.pap"), "{text}");
        assert!(text.contains("{callee = @k, arity = 2}"), "{text}");
        assert!(text.contains("lp.papextend"), "{text}");
    }

    #[test]
    fn join_points_lowered_with_args() {
        let m = lower(
            r#"
def f(b, y) :=
  let x := case b of | true => 1 | false => 2 end;
  x + y
"#,
        );
        let text = print_module(&m);
        assert!(text.contains("lp.joinpoint"), "{text}");
        assert!(text.contains("lp.jump"), "{text}");
        assert!(text.contains("{label = @f.jp0}"), "{text}");
    }

    #[test]
    fn rc_ops_lowered() {
        let m = lower(
            r#"
inductive Pair := MkPair(a, b)
def dup(x) := MkPair(x, x)
"#,
        );
        let text = print_module(&m);
        assert!(text.contains("lp.inc"), "{text}");
    }

    #[test]
    fn exhaustive_case_uses_last_alt_as_default() {
        let m = lower(
            r#"
inductive AB := A | B
def f(x) := case x of | A => 1 | B => 2 end
"#,
        );
        let text = print_module(&m);
        // Two arms, no explicit default → one case value + default region.
        assert!(text.contains("{cases = [0]}"), "{text}");
    }

    #[test]
    fn structured_bodies_have_no_cfg_ops() {
        let m = lower(
            r#"
inductive List := Nil | Cons(h, t)
def sum(xs) :=
  case xs of
  | Nil => 0
  | Cons(h, t) => h + sum(t)
  end
"#,
        );
        for f in &m.funcs {
            let Some(body) = &f.body else { continue };
            for op in body.walk_ops() {
                let d = body.ops[op.index()].opcode.dialect();
                assert!(d != "cf" && d != "rgn", "unexpected {d} op at lp level");
            }
        }
    }
}
