//! IR verification: structural rules, type rules, dominance, and the `rgn`
//! dialect's use restrictions.
//!
//! The `rgn` restriction (§IV of the paper) is the load-bearing invariant:
//! a `!rgn.region` value may only be consumed by `arith.select`,
//! `arith.switch_val`, or `rgn.run`, and may not be a block argument, call
//! argument, or return value. This guarantees every use of a region value is
//! statically analyzable, which is what lets the region optimizations of
//! `lssa-core` reason about regions like ordinary SSA values.

use crate::attr::AttrKey;
use crate::body::Body;
use crate::dom::DomInfo;
use crate::ids::{BlockId, OpId, RegionId, Symbol};
use crate::module::Module;
use crate::opcode::Opcode;
use crate::types::Type;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function in which the error occurred.
    pub func: String,
    /// Description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "@{}: {}", self.func, self.message)
    }
}

impl std::error::Error for VerifyError {}

/// Verifies a whole module.
///
/// # Errors
///
/// Returns every violation found (the check does not stop at the first).
pub fn verify_module(m: &Module) -> Result<(), Vec<VerifyError>> {
    let mut errors = Vec::new();
    for f in &m.funcs {
        let Some(body) = &f.body else { continue };
        let fname = m.name_of(f.name).to_string();
        let mut v = Verifier {
            module: m,
            body,
            func: &fname,
            ret_ty: f.sig.ret,
            errors: &mut errors,
        };
        v.verify_body();
    }
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// Verifies a single function body against a module context.
///
/// # Errors
///
/// Returns every violation found.
pub fn verify_function(m: &Module, name: &str) -> Result<(), Vec<VerifyError>> {
    let f = m
        .func_by_name(name)
        .unwrap_or_else(|| panic!("no function @{name}"));
    let body = f.body.as_ref().expect("verify_function on extern");
    let mut errors = Vec::new();
    let mut v = Verifier {
        module: m,
        body,
        func: name,
        ret_ty: f.sig.ret,
        errors: &mut errors,
    };
    v.verify_body();
    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

struct Verifier<'a> {
    module: &'a Module,
    body: &'a Body,
    func: &'a str,
    ret_ty: Type,
    errors: &'a mut Vec<VerifyError>,
}

impl Verifier<'_> {
    fn error(&mut self, op: Option<OpId>, message: impl Into<String>) {
        let message = match op {
            Some(op) => format!(
                "{} (in `{}`)",
                message.into(),
                self.body.ops[op.index()].opcode
            ),
            None => message.into(),
        };
        self.errors.push(VerifyError {
            func: self.func.to_string(),
            message,
        });
    }

    fn verify_body(&mut self) {
        self.verify_region_structure(crate::body::ROOT_REGION);
        for op in self.body.walk_ops() {
            self.verify_op(op);
        }
        // Dominance.
        let dom = DomInfo::compute(self.body);
        for op in self.body.walk_ops() {
            let data = &self.body.ops[op.index()];
            for &v in &data.operands {
                if !dom.value_dominates_op(self.body, v, op) {
                    self.error(Some(op), format!("operand {v} does not dominate its use"));
                }
            }
            for s in &data.successors {
                for &a in &s.args {
                    if !dom.value_dominates_op(self.body, a, op) {
                        self.error(
                            Some(op),
                            format!("successor argument {a} does not dominate its use"),
                        );
                    }
                }
            }
        }
        self.verify_rgn_restrictions();
    }

    fn verify_region_structure(&mut self, region: RegionId) {
        let blocks = self.body.regions[region.index()].blocks.clone();
        if blocks.is_empty() {
            self.error(None, format!("region {region} has no blocks"));
            return;
        }
        for &b in &blocks {
            let data = &self.body.blocks[b.index()];
            if data.ops.is_empty() {
                self.error(None, format!("block {b} is empty"));
                continue;
            }
            let ops = data.ops.clone();
            let last = *ops.last().unwrap();
            if !self.body.ops[last.index()].opcode.is_terminator() {
                self.error(
                    Some(last),
                    format!("block {b} does not end with a terminator"),
                );
            }
            for &op in &ops[..ops.len() - 1] {
                if self.body.ops[op.index()].opcode.is_terminator() {
                    self.error(Some(op), format!("terminator in the middle of block {b}"));
                }
            }
            for &op in &ops {
                if self.body.ops[op.index()].dead {
                    self.error(Some(op), "dead op still attached".to_string());
                }
                for &r in &self.body.ops[op.index()].regions.clone() {
                    self.verify_region_structure(r);
                }
            }
        }
    }

    fn operand_tys(&self, op: OpId) -> Vec<Type> {
        self.body.ops[op.index()]
            .operands
            .iter()
            .map(|&v| self.body.value_type(v))
            .collect()
    }

    fn result_ty(&self, op: OpId) -> Option<Type> {
        self.body.ops[op.index()]
            .result()
            .map(|r| self.body.value_type(r))
    }

    fn check(&mut self, op: OpId, cond: bool, msg: &str) {
        if !cond {
            self.error(Some(op), msg.to_string());
        }
    }

    fn check_succ_count(&mut self, op: OpId, expected: usize) {
        let n = self.body.ops[op.index()].successors.len();
        if n != expected {
            self.error(
                Some(op),
                format!("expected {expected} successors, found {n}"),
            );
        }
    }

    fn check_succ_args(&mut self, op: OpId) {
        for s in self.body.ops[op.index()].successors.clone() {
            let dest_args = self.body.blocks[s.block.index()].args.clone();
            if s.args.len() != dest_args.len() {
                self.error(
                    Some(op),
                    format!(
                        "successor {} expects {} arguments, got {}",
                        s.block,
                        dest_args.len(),
                        s.args.len()
                    ),
                );
                continue;
            }
            for (&a, &p) in s.args.iter().zip(&dest_args) {
                let at = self.body.value_type(a);
                let pt = self.body.value_type(p);
                if at != pt {
                    self.error(
                        Some(op),
                        format!("successor argument type mismatch: {at} vs {pt}"),
                    );
                }
            }
            // Successor must be in the same region.
            let op_block = self.body.ops[op.index()].parent.unwrap();
            if self.body.block_region(s.block) != self.body.block_region(op_block) {
                self.error(Some(op), "successor in a different region".to_string());
            }
        }
    }

    fn callee_sig(&mut self, op: OpId) -> Option<(Symbol, crate::types::Signature)> {
        let data = &self.body.ops[op.index()];
        let Some(sym) = data.attr(AttrKey::Callee).and_then(|a| a.as_sym()) else {
            self.error(Some(op), "missing `callee` attribute".to_string());
            return None;
        };
        match self.module.func(sym) {
            Some(f) => Some((sym, f.sig.clone())),
            None => {
                let name = self.module.name_of(sym).to_string();
                self.error(Some(op), format!("unknown callee @{name}"));
                None
            }
        }
    }

    fn verify_op(&mut self, op: OpId) {
        use Opcode::*;
        let opcode = self.body.ops[op.index()].opcode;
        let tys = self.operand_tys(op);
        let res = self.result_ty(op);
        // Region arity.
        if let Some(expected) = opcode.region_arity() {
            let n = self.body.ops[op.index()].regions.len();
            if n != expected {
                self.error(Some(op), format!("expected {expected} regions, found {n}"));
            }
        }
        if !opcode.has_successors() && !self.body.ops[op.index()].successors.is_empty() {
            self.error(Some(op), "op cannot have successors".to_string());
        }
        match opcode {
            ConstI => {
                self.check(op, tys.is_empty(), "constant takes no operands");
                let ok = matches!(res, Some(t) if t.is_int());
                self.check(op, ok, "constant result must be an integer type");
                let has_val = self.body.ops[op.index()]
                    .attr(AttrKey::Value)
                    .and_then(|a| a.as_int())
                    .is_some();
                self.check(op, has_val, "constant needs an integer `value` attribute");
            }
            AddI | SubI | MulI | DivI | RemI | AndI | OrI | XorI => {
                let ok =
                    tys.len() == 2 && tys[0] == tys[1] && tys[0].is_int() && res == Some(tys[0]);
                self.check(op, ok, "binary arith op needs two equal integer operands");
            }
            CmpI => {
                let ok = tys.len() == 2 && tys[0] == tys[1] && tys[0].is_int();
                self.check(op, ok, "cmpi needs two equal integer operands");
                self.check(op, res == Some(Type::I1), "cmpi yields i1");
                let has_pred = self.body.ops[op.index()]
                    .attr(AttrKey::Pred)
                    .and_then(|a| a.as_pred())
                    .is_some();
                self.check(op, has_pred, "cmpi needs a `pred` attribute");
            }
            Select => {
                let ok = tys.len() == 3 && tys[0] == Type::I1 && tys[1] == tys[2];
                self.check(op, ok, "select needs (i1, T, T) operands");
                self.check(
                    op,
                    res == tys.get(1).copied(),
                    "select result type mismatch",
                );
            }
            SwitchVal => {
                let cases = self.body.ops[op.index()]
                    .attr(AttrKey::Cases)
                    .and_then(|a| a.as_int_list())
                    .map(|c| c.len());
                match cases {
                    None => {
                        self.error(Some(op), "switch_val needs a `cases` attribute".to_string())
                    }
                    Some(n) => {
                        let ok = tys.len() == n + 2 && tys[0].is_int();
                        self.check(
                            op,
                            ok,
                            "switch_val needs (int, v_0..v_{n-1}, default) operands",
                        );
                        if ok {
                            let vt = tys[1];
                            self.check(
                                op,
                                tys[1..].iter().all(|&t| t == vt),
                                "switch_val branches must share one type",
                            );
                            self.check(op, res == Some(vt), "switch_val result type mismatch");
                        }
                    }
                }
            }
            ExtUI | TruncI => {
                let ok = tys.len() == 1 && tys[0].is_int() && matches!(res, Some(t) if t.is_int());
                self.check(op, ok, "integer cast needs one integer operand");
                if ok {
                    let (from, to) = (
                        tys[0].bit_width().unwrap(),
                        res.unwrap().bit_width().unwrap(),
                    );
                    match opcode {
                        ExtUI => self.check(op, to > from, "extui must widen"),
                        TruncI => self.check(op, to < from, "trunci must narrow"),
                        _ => unreachable!(),
                    }
                }
            }
            Br => {
                self.check_succ_count(op, 1);
                self.check_succ_args(op);
            }
            CondBr => {
                self.check(op, tys == [Type::I1], "cond_br condition must be i1");
                self.check_succ_count(op, 2);
                self.check_succ_args(op);
            }
            SwitchBr => {
                let ok = tys.len() == 1 && tys[0].is_int();
                self.check(op, ok, "switch condition must be an integer");
                let cases = self.body.ops[op.index()]
                    .attr(AttrKey::Cases)
                    .and_then(|a| a.as_int_list())
                    .map(|c| c.len());
                match cases {
                    None => self.error(Some(op), "switch needs a `cases` attribute".to_string()),
                    Some(n) => self.check_succ_count(op, n + 1),
                }
                self.check_succ_args(op);
            }
            Unreachable => {}
            Call => {
                if let Some((_, sig)) = self.callee_sig(op) {
                    self.check_call_shape(op, &tys, &sig, res);
                }
            }
            TailCall => {
                if let Some((_, sig)) = self.callee_sig(op) {
                    self.check_call_shape(op, &tys, &sig, Some(sig.ret));
                    self.check(
                        op,
                        sig.ret == self.ret_ty,
                        "tail callee return type must match the caller's",
                    );
                }
            }
            Return => {
                let ok = tys.len() == 1 && tys[0] == self.ret_ty;
                self.check(op, ok, "return operand must match the function result type");
            }
            LpInt => {
                self.check(op, res == Some(Type::Obj), "lp.int yields !lp.t");
                let has = self.body.ops[op.index()]
                    .attr(AttrKey::Value)
                    .and_then(|a| a.as_int())
                    .is_some();
                self.check(op, has, "lp.int needs an integer `value` attribute");
            }
            LpStr => {
                self.check(op, res == Some(Type::Obj), "lp.str yields !lp.t");
                let has = self.body.ops[op.index()]
                    .attr(AttrKey::Value)
                    .and_then(|a| a.as_str())
                    .is_some();
                self.check(op, has, "lp.str needs a string `value` attribute");
            }
            LpBigInt => {
                self.check(op, res == Some(Type::Obj), "lp.bigint yields !lp.t");
                let valid = self.body.ops[op.index()]
                    .attr(AttrKey::Value)
                    .and_then(|a| a.as_str())
                    .map(|s| {
                        let t = s.strip_prefix('-').unwrap_or(s);
                        !t.is_empty() && t.bytes().all(|b| b.is_ascii_digit())
                    })
                    .unwrap_or(false);
                self.check(op, valid, "lp.bigint needs a decimal string `value`");
            }
            LpConstruct => {
                self.check(
                    op,
                    tys.iter().all(|&t| t == Type::Obj),
                    "lp.construct fields must be !lp.t",
                );
                self.check(op, res == Some(Type::Obj), "lp.construct yields !lp.t");
                let tag_ok = self.body.ops[op.index()]
                    .attr(AttrKey::Tag)
                    .and_then(|a| a.as_int())
                    .map(|t| t >= 0)
                    .unwrap_or(false);
                self.check(op, tag_ok, "lp.construct needs a non-negative `tag`");
            }
            LpGetLabel => {
                self.check(op, tys == [Type::Obj], "lp.getlabel takes one !lp.t");
                self.check(op, res == Some(Type::I8), "lp.getlabel yields i8");
            }
            LpProject => {
                self.check(op, tys == [Type::Obj], "lp.project takes one !lp.t");
                self.check(op, res == Some(Type::Obj), "lp.project yields !lp.t");
                let idx_ok = self.body.ops[op.index()]
                    .attr(AttrKey::Index)
                    .and_then(|a| a.as_int())
                    .map(|i| i >= 0)
                    .unwrap_or(false);
                self.check(op, idx_ok, "lp.project needs a non-negative `index`");
            }
            LpPap => {
                self.check(
                    op,
                    tys.iter().all(|&t| t == Type::Obj),
                    "lp.pap arguments must be !lp.t",
                );
                self.check(op, res == Some(Type::Obj), "lp.pap yields !lp.t");
                if let Some((_, sig)) = self.callee_sig(op) {
                    self.check(
                        op,
                        tys.len() <= sig.params.len(),
                        "lp.pap cannot over-apply its callee",
                    );
                    let arity = self.body.ops[op.index()]
                        .attr(AttrKey::Arity)
                        .and_then(|a| a.as_int());
                    self.check(
                        op,
                        arity == Some(sig.params.len() as i64),
                        "lp.pap `arity` must equal the callee's parameter count",
                    );
                }
            }
            LpPapExtend => {
                let ok = tys.len() >= 2 && tys.iter().all(|&t| t == Type::Obj);
                self.check(op, ok, "lp.papextend needs a closure plus ≥1 !lp.t args");
                self.check(op, res == Some(Type::Obj), "lp.papextend yields !lp.t");
            }
            LpJoinPoint => {
                self.check(op, tys.is_empty(), "lp.joinpoint takes no operands");
                let has_label = self.body.ops[op.index()]
                    .attr(AttrKey::Label)
                    .and_then(|a| a.as_sym())
                    .is_some();
                self.check(op, has_label, "lp.joinpoint needs a `label`");
                let regions = self.body.ops[op.index()].regions.clone();
                if regions.len() == 2 {
                    // Body ("pre-jump") region entry takes no args.
                    let body_entry = self.body.regions[regions[1].index()].blocks[0];
                    self.check(
                        op,
                        self.body.blocks[body_entry.index()].args.is_empty(),
                        "lp.joinpoint body region entry takes no arguments",
                    );
                }
            }
            LpJump => match self.enclosing_joinpoint(op) {
                Some(jp) => {
                    let jp_region = self.body.ops[jp.index()].regions[0];
                    let jp_entry = self.body.regions[jp_region.index()].blocks[0];
                    let expected = self.body.blocks[jp_entry.index()].args.len();
                    self.check(
                        op,
                        tys.len() == expected,
                        "lp.jump argument count must match the join point",
                    );
                }
                None => self.error(
                    Some(op),
                    "lp.jump label does not name an enclosing join point".to_string(),
                ),
            },
            LpSwitch => {
                let ok = tys.len() == 1 && tys[0].is_int();
                self.check(op, ok, "lp.switch scrutinee must be an integer");
                let cases = self.body.ops[op.index()]
                    .attr(AttrKey::Cases)
                    .and_then(|a| a.as_int_list())
                    .map(|c| c.len());
                match cases {
                    None => self.error(Some(op), "lp.switch needs a `cases` attribute".to_string()),
                    Some(n) => {
                        let regions = self.body.ops[op.index()].regions.len();
                        self.check(
                            op,
                            regions == n + 1,
                            "lp.switch needs one region per case plus a default",
                        );
                    }
                }
                for &r in &self.body.ops[op.index()].regions.clone() {
                    let entry = self.body.regions[r.index()].blocks[0];
                    self.check(
                        op,
                        self.body.blocks[entry.index()].args.is_empty(),
                        "lp.switch case regions take no arguments",
                    );
                }
            }
            LpInc | LpDec => {
                self.check(op, tys == [Type::Obj], "refcount ops take one !lp.t");
            }
            LpReturn => {
                self.check(op, tys == [Type::Obj], "lp.ret takes one !lp.t");
            }
            LpGlobalLoad | LpGlobalStore => {
                let g = self.body.ops[op.index()]
                    .attr(AttrKey::Global)
                    .and_then(|a| a.as_sym());
                match g {
                    Some(sym) if self.module.global(sym).is_some() => {}
                    Some(sym) => {
                        let name = self.module.name_of(sym).to_string();
                        self.error(Some(op), format!("unknown global @{name}"));
                    }
                    None => self.error(Some(op), "missing `global` attribute".to_string()),
                }
                if opcode == LpGlobalLoad {
                    self.check(op, res == Some(Type::Obj), "global load yields !lp.t");
                } else {
                    self.check(op, tys == [Type::Obj], "global store takes one !lp.t");
                }
            }
            RgnVal => {
                self.check(op, tys.is_empty(), "rgn.val takes no operands");
                self.check(op, res == Some(Type::Rgn), "rgn.val yields !rgn.region");
            }
            RgnRun => {
                let ok = !tys.is_empty() && tys[0] == Type::Rgn;
                self.check(op, ok, "rgn.run's first operand must be !rgn.region");
                self.check(
                    op,
                    tys[1..].iter().all(|&t| t != Type::Rgn),
                    "rgn.run arguments may not be region values",
                );
                // When the region is statically known, arg counts must match.
                if let Some(&r) = self.body.ops[op.index()].operands.first() {
                    if let Some(def) = self.body.defining_op(r) {
                        if self.body.ops[def.index()].opcode == Opcode::RgnVal
                            && !self.body.ops[def.index()].regions.is_empty()
                        {
                            let region = self.body.ops[def.index()].regions[0];
                            let entry = self.body.regions[region.index()].blocks[0];
                            let expected = self.body.blocks[entry.index()].args.len();
                            self.check(
                                op,
                                tys.len() - 1 == expected,
                                "rgn.run argument count must match the region's parameters",
                            );
                        }
                    }
                }
            }
        }
    }

    fn check_call_shape(
        &mut self,
        op: OpId,
        tys: &[Type],
        sig: &crate::types::Signature,
        res: Option<Type>,
    ) {
        if tys != sig.params.as_slice() {
            self.error(
                Some(op),
                format!(
                    "call argument types {:?} do not match callee signature {sig}",
                    tys
                ),
            );
        }
        if self.body.ops[op.index()].opcode == Opcode::Call && res != Some(sig.ret) {
            self.error(
                Some(op),
                "call result type must match the callee".to_string(),
            );
        }
    }

    /// Finds the join point named by an `lp.jump`'s label among enclosing ops.
    fn enclosing_joinpoint(&self, jump: OpId) -> Option<OpId> {
        let label = self.body.ops[jump.index()]
            .attr(AttrKey::Label)
            .and_then(|a| a.as_sym())?;
        let mut block = self.body.ops[jump.index()].parent?;
        loop {
            let region = self.body.block_region(block);
            let parent_op = self.body.regions[region.index()].parent?;
            let pdata = &self.body.ops[parent_op.index()];
            if pdata.opcode == Opcode::LpJoinPoint
                && pdata.attr(AttrKey::Label).and_then(|a| a.as_sym()) == Some(label)
            {
                return Some(parent_op);
            }
            block = pdata.parent?;
        }
    }

    /// Enforces the paper's restriction on region-value uses.
    fn verify_rgn_restrictions(&mut self) {
        for op in self.body.walk_ops() {
            let data = &self.body.ops[op.index()];
            let opcode = data.opcode;
            for (i, &v) in data.operands.clone().iter().enumerate() {
                if self.body.value_type(v) != Type::Rgn {
                    continue;
                }
                let allowed = match opcode {
                    Opcode::Select => i == 1 || i == 2,
                    Opcode::SwitchVal => i >= 1,
                    Opcode::RgnRun => i == 0,
                    _ => false,
                };
                if !allowed {
                    self.error(
                        Some(op),
                        format!("region value {v} may only be used by select/switch_val/rgn.run"),
                    );
                }
            }
            for s in &data.successors {
                for &a in &s.args {
                    if self.body.value_type(a) == Type::Rgn {
                        self.error(
                            Some(op),
                            "region values may not be passed as block arguments".to_string(),
                        );
                    }
                }
            }
        }
        // No rgn-typed block arguments.
        for (bi, b) in self.body.blocks.iter().enumerate() {
            if b.parent.is_none() {
                continue;
            }
            for &a in &b.args {
                if self.body.value_type(a) == Type::Rgn {
                    self.error(
                        None,
                        format!("block {} has a region-typed argument", BlockId(bi as u32)),
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::Builder;
    use crate::types::Signature;

    fn module_with(f: impl FnOnce(&mut Module)) -> Module {
        let mut m = Module::new();
        f(&mut m);
        m
    }

    #[test]
    fn valid_simple_function() {
        let m = module_with(|m| {
            let (mut body, params) = Body::new(&[Type::I64]);
            let entry = body.entry_block();
            let mut b = Builder::at_end(&mut body, entry);
            let c = b.const_i(1, Type::I64);
            let s = b.addi(params[0], c);
            b.ret(s);
            m.add_function("f", Signature::new(vec![Type::I64], Type::I64), body);
        });
        verify_module(&m).unwrap();
    }

    #[test]
    fn missing_terminator_rejected() {
        let m = module_with(|m| {
            let (mut body, _) = Body::new(&[]);
            let entry = body.entry_block();
            let mut b = Builder::at_end(&mut body, entry);
            b.const_i(1, Type::I64);
            m.add_function("f", Signature::new(vec![], Type::I64), body);
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("terminator")),
            "{errs:?}"
        );
    }

    #[test]
    fn return_type_mismatch_rejected() {
        let m = module_with(|m| {
            let (mut body, _) = Body::new(&[]);
            let entry = body.entry_block();
            let mut b = Builder::at_end(&mut body, entry);
            let c = b.const_i(1, Type::I8);
            b.ret(c);
            m.add_function("f", Signature::new(vec![], Type::I64), body);
        });
        assert!(verify_module(&m).is_err());
    }

    #[test]
    fn dominance_violation_rejected() {
        let m = module_with(|m| {
            let (mut body, _) = Body::new(&[]);
            let entry = body.entry_block();
            // Use before def: create the add first, then the const after it.
            let c_op = body.create_op(
                Opcode::ConstI,
                vec![],
                &[Type::I64],
                vec![(AttrKey::Value, crate::attr::Attr::Int(3))],
            );
            let c = body.ops[c_op.index()].result().unwrap();
            let add = body.create_op(Opcode::AddI, vec![c, c], &[Type::I64], vec![]);
            body.push_op(entry, add);
            body.push_op(entry, c_op);
            let s = body.ops[add.index()].result().unwrap();
            let mut b = Builder::at_end(&mut body, entry);
            b.ret(s);
            m.add_function("f", Signature::new(vec![], Type::I64), body);
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter().any(|e| e.message.contains("dominate")),
            "{errs:?}"
        );
    }

    #[test]
    fn unknown_callee_rejected() {
        let m = module_with(|m| {
            let callee = m.intern("nosuch");
            let (mut body, _) = Body::new(&[]);
            let entry = body.entry_block();
            let mut b = Builder::at_end(&mut body, entry);
            let v = b.call(callee, vec![], Type::Obj);
            b.lp_ret(v);
            m.add_function("f", Signature::new(vec![], Type::Obj), body);
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("unknown callee")));
    }

    #[test]
    fn rgn_value_as_call_arg_rejected() {
        let m = module_with(|m| {
            m.declare_extern("sink", Signature::new(vec![Type::Rgn], Type::Obj));
            let sink = m.interner.get("sink").unwrap();
            let (mut body, _) = Body::new(&[]);
            let entry = body.entry_block();
            let mut b = Builder::at_end(&mut body, entry);
            let (rv, inner) = b.rgn_val(&[]);
            {
                let mut ib = Builder::at_end(b.body, inner);
                let v = ib.lp_int(0);
                ib.lp_ret(v);
            }
            let mut b = Builder::at_end(&mut body, entry);
            let v = b.call(sink, vec![rv], Type::Obj);
            b.lp_ret(v);
            m.add_function("f", Signature::new(vec![], Type::Obj), body);
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(
            errs.iter()
                .any(|e| e.message.contains("select/switch_val/rgn.run")),
            "{errs:?}"
        );
    }

    #[test]
    fn rgn_select_and_run_accepted() {
        let m = module_with(|m| {
            let (mut body, params) = Body::new(&[Type::I1]);
            let entry = body.entry_block();
            let mut b = Builder::at_end(&mut body, entry);
            let (r1, bl1) = b.rgn_val(&[]);
            {
                let mut ib = Builder::at_end(b.body, bl1);
                let v = ib.lp_int(3);
                ib.lp_ret(v);
            }
            let mut b = Builder::at_end(&mut body, entry);
            let (r2, bl2) = b.rgn_val(&[]);
            {
                let mut ib = Builder::at_end(b.body, bl2);
                let v = ib.lp_int(5);
                ib.lp_ret(v);
            }
            let mut b = Builder::at_end(&mut body, entry);
            let sel = b.select(params[0], r1, r2);
            b.rgn_run(sel, vec![]);
            m.add_function("f", Signature::new(vec![Type::I1], Type::Obj), body);
        });
        verify_module(&m).unwrap();
    }

    #[test]
    fn rgn_run_arity_mismatch_rejected() {
        let m = module_with(|m| {
            let (mut body, _) = Body::new(&[]);
            let entry = body.entry_block();
            let mut b = Builder::at_end(&mut body, entry);
            let (rv, inner) = b.rgn_val(&[Type::Obj]);
            {
                let arg = b.body.blocks[inner.index()].args[0];
                let mut ib = Builder::at_end(b.body, inner);
                ib.lp_ret(arg);
            }
            let mut b = Builder::at_end(&mut body, entry);
            b.rgn_run(rv, vec![]); // missing the argument
            m.add_function("f", Signature::new(vec![], Type::Obj), body);
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("argument count")));
    }

    #[test]
    fn jump_without_joinpoint_rejected() {
        let m = module_with(|m| {
            let lbl = m.intern("nowhere");
            let (mut body, _) = Body::new(&[]);
            let entry = body.entry_block();
            let mut b = Builder::at_end(&mut body, entry);
            b.lp_jump(lbl, vec![]);
            m.add_function("f", Signature::new(vec![], Type::Obj), body);
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs.iter().any(|e| e.message.contains("join point")));
    }

    #[test]
    fn jump_inside_joinpoint_accepted() {
        let m = module_with(|m| {
            let lbl = m.intern("jp");
            let (mut body, _) = Body::new(&[]);
            let entry = body.entry_block();
            let mut b = Builder::at_end(&mut body, entry);
            let (_op, jp_entry, body_entry) = b.lp_joinpoint(lbl, &[]);
            {
                let mut jb = Builder::at_end(b.body, jp_entry);
                let v = jb.lp_int(60);
                jb.lp_ret(v);
            }
            {
                let mut bb = Builder::at_end(b.body, body_entry);
                bb.lp_jump(lbl, vec![]);
            }
            m.add_function("f", Signature::new(vec![], Type::Obj), body);
        });
        verify_module(&m).unwrap();
    }

    #[test]
    fn switch_region_count_must_match_cases() {
        let m = module_with(|m| {
            let (mut body, params) = Body::new(&[Type::I8]);
            let entry = body.entry_block();
            let mut b = Builder::at_end(&mut body, entry);
            let (op, blocks) = b.lp_switch(params[0], vec![0, 1]);
            for &bl in &blocks {
                let mut cb = Builder::at_end(b.body, bl);
                let v = cb.lp_int(0);
                cb.lp_ret(v);
            }
            // Remove one region to break the invariant.
            let last_region = b.body.ops[op.index()].regions.pop().unwrap();
            b.body.regions[last_region.index()].parent = None;
            m.add_function("f", Signature::new(vec![Type::I8], Type::Obj), body);
        });
        let errs = verify_module(&m).unwrap_err();
        assert!(errs
            .iter()
            .any(|e| e.message.contains("one region per case")));
    }
}
